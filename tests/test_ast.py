"""Unit tests for the Boolean expression AST (repro.subscriptions.ast)."""

from __future__ import annotations

import pytest
from hypothesis import given

from helpers import P1, P2, P3, random_events, random_expressions
from repro.events import Event
from repro.subscriptions import (
    And,
    Not,
    Or,
    PredicateLeaf,
    conjunction,
    disjunction,
    leaf,
)


class TestConstruction:
    def test_leaf_wraps_predicate(self):
        node = PredicateLeaf(P1)
        assert node.predicate == P1
        assert node.children() == ()

    def test_leaf_rejects_non_predicate(self):
        with pytest.raises(TypeError):
            PredicateLeaf("a > 10")

    def test_nary_requires_two_operands(self):
        with pytest.raises(ValueError):
            And((leaf(P1),))
        with pytest.raises(ValueError):
            Or(())

    def test_nary_rejects_non_expressions(self):
        with pytest.raises(TypeError):
            And((leaf(P1), P2))

    def test_not_single_child(self):
        node = Not(leaf(P1))
        assert node.children() == (leaf(P1),)

    def test_operator_overloads(self):
        expression = leaf(P1) & leaf(P2) | ~leaf(P3)
        assert isinstance(expression, Or)
        assert isinstance(expression.operands[0], And)
        assert isinstance(expression.operands[1], Not)

    def test_conjunction_helper_single_passthrough(self):
        assert conjunction([leaf(P1)]) == leaf(P1)
        assert isinstance(conjunction([leaf(P1), leaf(P2)]), And)

    def test_disjunction_helper_single_passthrough(self):
        assert disjunction([leaf(P1)]) == leaf(P1)
        assert isinstance(disjunction([leaf(P1), leaf(P2)]), Or)

    def test_helpers_reject_empty(self):
        with pytest.raises(ValueError):
            conjunction([])
        with pytest.raises(ValueError):
            disjunction([])


class TestEvaluation:
    def test_and_requires_all(self):
        expression = And((leaf(P1), leaf(P2)))
        assert expression.matches(Event({"a": 11, "b": 1}))
        assert not expression.matches(Event({"a": 11, "b": 2}))

    def test_or_requires_any(self):
        expression = Or((leaf(P1), leaf(P2)))
        assert expression.matches(Event({"a": 0, "b": 1}))
        assert not expression.matches(Event({"a": 0, "b": 0}))

    def test_not_inverts(self):
        expression = Not(leaf(P1))
        assert expression.matches(Event({"a": 5}))
        assert not expression.matches(Event({"a": 11}))

    def test_not_true_for_absent_attribute(self):
        # a predicate over an absent attribute is unfulfilled, so its
        # negation holds — the semantics DNF operator-flipping breaks
        assert Not(leaf(P1)).matches(Event({"z": 1}))

    def test_nested_evaluation(self):
        expression = And((Or((leaf(P1), leaf(P2))), Not(leaf(P3))))
        assert expression.matches(Event({"a": 11, "c": 5}))
        assert not expression.matches(Event({"a": 11, "c": -1}))

    def test_evaluate_with_ids(self):
        expression = And((leaf(P1), leaf(P2)))
        ids = {P1: 1, P2: 2}
        assert expression.evaluate_with_ids({1, 2}, ids.__getitem__)
        assert not expression.evaluate_with_ids({1}, ids.__getitem__)


class TestStructure:
    def test_predicates_yields_occurrences(self):
        expression = And((leaf(P1), Or((leaf(P1), leaf(P2)))))
        assert sorted(str(p) for p in expression.predicates()) == sorted(
            [str(P1), str(P1), str(P2)]
        )

    def test_unique_predicates(self):
        expression = And((leaf(P1), Or((leaf(P1), leaf(P2)))))
        assert expression.unique_predicates() == {P1, P2}

    def test_size_counts_all_nodes(self):
        expression = And((leaf(P1), Or((leaf(P2), leaf(P3)))))
        assert expression.size() == 5

    def test_depth(self):
        assert leaf(P1).depth() == 1
        assert And((leaf(P1), leaf(P2))).depth() == 2
        assert And((leaf(P1), Or((leaf(P2), leaf(P3))))).depth() == 3

    def test_equality_is_structural(self):
        assert And((leaf(P1), leaf(P2))) == And((leaf(P1), leaf(P2)))
        assert And((leaf(P1), leaf(P2))) != And((leaf(P2), leaf(P1)))
        assert And((leaf(P1), leaf(P2))) != Or((leaf(P1), leaf(P2)))

    def test_hash_consistency(self):
        assert hash(And((leaf(P1), leaf(P2)))) == hash(And((leaf(P1), leaf(P2))))

    def test_str_rendering(self):
        text = str(And((leaf(P1), Or((leaf(P2), leaf(P3))))))
        assert "and" in text and "or" in text


class TestFlattening:
    def test_nested_same_operator_collapses(self):
        expression = And((leaf(P1), And((leaf(P2), leaf(P3)))))
        flat = expression.flattened()
        assert isinstance(flat, And)
        assert len(flat.operands) == 3

    def test_mixed_operators_preserved(self):
        expression = And((leaf(P1), Or((leaf(P2), leaf(P3)))))
        flat = expression.flattened()
        assert isinstance(flat, And)
        assert isinstance(flat.operands[1], Or)

    def test_double_negation_collapses(self):
        expression = Not(Not(leaf(P1)))
        assert expression.flattened() == leaf(P1)

    def test_deeply_nested_chain(self):
        expression = And((leaf(P1), And((leaf(P2), And((leaf(P3), leaf(P1)))))))
        flat = expression.flattened()
        assert len(flat.operands) == 4

    def test_leaf_flatten_is_identity(self):
        assert leaf(P1).flattened() == leaf(P1)


class TestFlatteningProperties:
    @given(random_expressions(), random_events())
    def test_flattening_preserves_semantics(self, expression, event):
        assert expression.matches(event) == expression.flattened().matches(event)

    @given(random_expressions())
    def test_flattening_preserves_predicate_multiset(self, expression):
        before = sorted(str(p) for p in expression.predicates())
        after = sorted(str(p) for p in expression.flattened().predicates())
        assert before == after

    @given(random_expressions())
    def test_flattening_never_grows(self, expression):
        assert expression.flattened().size() <= expression.size()

    @given(random_expressions())
    def test_flattening_is_idempotent(self, expression):
        once = expression.flattened()
        assert once.flattened() == once
