"""Unit tests for the memory subsystem: cost model, simulated machine,
and the closed-form analysis cross-checked against measured engines."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import CountingEngine, NonCanonicalEngine
from repro.memory import (
    MIB,
    PAPER_MACHINE,
    CostModel,
    PaperWorkloadShape,
    SimulatedMachine,
    capacity,
    capacity_ratio,
    counting_bytes,
    noncanonical_bytes,
    noncanonical_tree_bytes,
)
from repro.workloads import PaperSubscriptionGenerator


class TestCostModel:
    def test_paper_field_costs(self):
        model = CostModel()
        assert model.operator_bytes == 1
        assert model.child_count_bytes == 1
        assert model.child_width_bytes == 2
        assert model.predicate_id_bytes == 4

    def test_vector_costs(self):
        model = CostModel()
        assert model.vector_bytes(100) == 100
        assert model.bit_vector_bytes(8) == 1
        assert model.bit_vector_bytes(9) == 2
        assert model.bit_vector_bytes(0) == 0

    def test_association_table_cost(self):
        model = CostModel()
        # 2 predicates, 3 references
        expected = 2 * (4 + 4) + 3 * 4
        assert model.association_table_bytes(2, 3) == expected

    def test_location_table_cost(self):
        model = CostModel()
        assert model.location_table_bytes(10) == 10 * (4 + 4 + 4)


class TestSimulatedMachine:
    def test_paper_defaults(self):
        assert PAPER_MACHINE.total_memory_bytes == 512 * MIB
        assert PAPER_MACHINE.available_bytes < 512 * MIB

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedMachine(total_memory_bytes=0)
        with pytest.raises(ValueError):
            SimulatedMachine(total_memory_bytes=100, os_reserved_bytes=100)
        with pytest.raises(ValueError):
            SimulatedMachine(swap_penalty=-1)

    def test_no_slowdown_below_budget(self):
        machine = SimulatedMachine(
            total_memory_bytes=1000, os_reserved_bytes=0, swap_penalty=40
        )
        assert machine.slowdown_factor(999) == 1.0
        assert machine.slowdown_factor(1000) == 1.0
        assert not machine.is_thrashing(1000)

    def test_slowdown_above_budget(self):
        machine = SimulatedMachine(
            total_memory_bytes=1000, os_reserved_bytes=0, swap_penalty=40
        )
        assert machine.is_thrashing(2000)
        assert machine.swapped_fraction(2000) == 0.5
        assert machine.slowdown_factor(2000) == 1.0 + 0.5 * 39.0

    def test_slowdown_monotone_in_working_set(self):
        machine = SimulatedMachine(
            total_memory_bytes=1000, os_reserved_bytes=100, swap_penalty=10
        )
        factors = [machine.slowdown_factor(n) for n in range(0, 5000, 250)]
        assert factors == sorted(factors)

    def test_adjusted_time(self):
        machine = SimulatedMachine(
            total_memory_bytes=1000, os_reserved_bytes=0, swap_penalty=3
        )
        assert machine.adjusted_time(2.0, 500) == 2.0
        assert machine.adjusted_time(2.0, 2000) == pytest.approx(4.0)

    @given(st.integers(0, 10**9))
    def test_slowdown_never_below_one(self, working_set):
        assert PAPER_MACHINE.slowdown_factor(working_set) >= 1.0


class TestWorkloadShape:
    def test_clause_arithmetic(self):
        shape = PaperWorkloadShape(10)
        assert shape.k == 5
        assert shape.dnf_clauses_per_subscription == 32
        assert shape.predicates_per_clause == 5

    def test_table1_transformation_range(self):
        # Table 1: "8 to 32" transformed subscriptions per subscription
        assert PaperWorkloadShape(6).dnf_clauses_per_subscription == 8
        assert PaperWorkloadShape(10).dnf_clauses_per_subscription == 32

    def test_odd_predicate_count_rejected(self):
        with pytest.raises(ValueError):
            PaperWorkloadShape(7)
        with pytest.raises(ValueError):
            PaperWorkloadShape(0)


class TestAnalysisAgainstMeasurement:
    """The §5 'theoretical memory analysis', cross-checked: closed forms
    must equal what the engines actually report, byte for byte."""

    @pytest.mark.parametrize("predicates", [6, 8, 10])
    @pytest.mark.parametrize("count", [1, 17])
    def test_noncanonical_formula_exact(self, predicates, count):
        engine = NonCanonicalEngine()
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=predicates, seed=count
        )
        for subscription in generator.subscriptions(count):
            engine.register(subscription)
        shape = PaperWorkloadShape(predicates)
        assert engine.memory_bytes() == noncanonical_bytes(count, shape)

    @pytest.mark.parametrize("predicates", [6, 8, 10])
    @pytest.mark.parametrize("support_unsubscription", [False, True])
    def test_counting_formula_exact(self, predicates, support_unsubscription):
        count = 9
        engine = CountingEngine(support_unsubscription=support_unsubscription)
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=predicates, seed=count
        )
        for subscription in generator.subscriptions(count):
            engine.register(subscription)
        shape = PaperWorkloadShape(predicates)
        assert engine.memory_bytes() == counting_bytes(
            count, shape, support_unsubscription=support_unsubscription
        )

    def test_tree_bytes_formula(self):
        shape = PaperWorkloadShape(6)
        # root 2 + 3*2 widths + 3 ORs of (2 + 2*2 + 2*4)
        assert noncanonical_tree_bytes(shape) == 8 + 3 * 14


class TestCapacityClaims:
    def test_capacity_ratio_exceeds_four_at_ten_predicates(self):
        """Paper §4.1: 'it easily handles more than 4 times as many
        subscriptions' at |p| = 10."""
        assert capacity_ratio(PaperWorkloadShape(10)) > 4.0

    def test_capacity_ratio_grows_with_predicates(self):
        ratios = [capacity_ratio(PaperWorkloadShape(p)) for p in (6, 8, 10, 12)]
        assert ratios == sorted(ratios)

    def test_capacity_consistency(self):
        shape = PaperWorkloadShape(10)
        budget = PAPER_MACHINE.available_bytes
        non_canonical = capacity(budget, shape, "non-canonical")
        counting = capacity(budget, shape, "counting")
        assert non_canonical > 4 * counting
        # paper's observed exhaustion point: hundreds of thousands of
        # original subscriptions on the 512 MB machine
        assert 300_000 < counting < 900_000

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            capacity(1000, PaperWorkloadShape(6), "mystery")
