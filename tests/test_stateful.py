"""Stateful property test: engine lifecycle against a reference model.

A hypothesis rule-based state machine drives a random interleaving of
subscribe / unsubscribe / publish operations against the non-canonical
engine (both codecs) and the counting engine, checking every matching
answer against a trivially-correct model (a dict of expressions
evaluated directly) and auditing the registry/index bookkeeping
invariants after every step.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro import CountingEngine, NonCanonicalEngine
from repro.events import Event
from repro.indexes import IndexManager
from repro.predicates import PredicateRegistry
from repro.subscriptions import Subscription, parse

# a small, fully enumerable expression pool over three attributes so
# publishes regularly hit matches; NOT-free so the counting engine can
# participate
EXPRESSION_POOL = [
    "a = 1",
    "a = 1 and b = 2",
    "a = 1 or b = 2",
    "(a = 1 or a = 2) and (b = 2 or c < 0)",
    "b >= 2 and c between [0, 5]",
    "a in {1, 2, 3} or c > 4",
    "b != 5 and a <= 2",
    "(a > 0 and b > 0) or (a < 0 and b < 0)",
]

EVENT_VALUES = st.fixed_dictionaries(
    {},
    optional={
        "a": st.integers(-2, 4),
        "b": st.integers(0, 5),
        "c": st.integers(-2, 6),
    },
)


class EngineLifecycle(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        registry = PredicateRegistry()
        indexes = IndexManager()
        self.engines = [
            NonCanonicalEngine(registry=registry, indexes=indexes),
            NonCanonicalEngine(
                codec="varint", evaluation="encoded",
                registry=registry, indexes=indexes,
            ),
            CountingEngine(
                support_unsubscription=True,
                registry=registry, indexes=indexes,
            ),
        ]
        self.registry = registry
        self.model: dict[int, object] = {}  # sid -> expression

    subscriptions = Bundle("subscriptions")

    @rule(target=subscriptions, text=st.sampled_from(EXPRESSION_POOL))
    def subscribe(self, text):
        subscription = Subscription(expression=parse(text))
        for engine in self.engines:
            engine.register(subscription)
        self.model[subscription.subscription_id] = subscription.expression
        return subscription.subscription_id

    @rule(sid=subscriptions)
    def unsubscribe(self, sid):
        if sid not in self.model:
            return  # already removed through another bundle reference
        for engine in self.engines:
            engine.unregister(sid)
        del self.model[sid]

    @rule(values=EVENT_VALUES)
    def publish(self, values):
        event = Event(values)
        expected = {
            sid for sid, expression in self.model.items()
            if expression.matches(event)
        }
        for engine in self.engines:
            assert engine.match(event) == expected, engine.name

    @invariant()
    def engines_agree_on_population(self):
        for engine in self.engines:
            assert engine.subscription_count == len(self.model), engine.name

    @invariant()
    def registry_empty_iff_no_subscriptions(self):
        if not self.model:
            assert len(self.registry) == 0
            assert len(self.engines[0].indexes) == 0


EngineLifecycle.TestCase.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
TestEngineLifecycle = EngineLifecycle.TestCase
