"""Routed shard partitioner: region digest, pruning soundness, parity.

The contract under test, layer by layer:

* the :class:`~repro.core.sharded.RoutedPartitioner` region digest is
  maintained incrementally — add, remove, and migrate keep the point
  index, scan groups, and loads consistent;
* routing is **sound**: for every event, the shard of every matching
  subscription is in ``candidate_shards(event)`` (pruning may only skip
  shards that cannot contain a match);
* the routed configuration returns exactly the unsharded match sets —
  for all six registry engines, per event and per batch, under
  batch-flushed churn that forces a rebalance round, across the serial,
  thread, and process executors (a migration must reach fork workers
  through the notify protocol);
* bookkeeping: pruning counters, spec round-trips, and the routing
  digest's memory charge.
"""

from __future__ import annotations

import multiprocessing

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    EngineSpec,
    RoutedPartitioner,
    ShardedEngine,
    Subscription,
    build_engine,
    make_partitioner,
    partitioner_names,
    spec_of,
)
from repro.core.sharded import HashPartitioner
from repro.events import Event
from repro.workloads import ChurnScenario, SkewedHotKeyScenario

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

#: Canonical engine name -> inner-spec options making it churn-capable.
ENGINE_OPTIONS = {
    "noncanonical": {},
    "counting": {"support_unsubscription": True},
    "counting-variant": {},
    "matching-tree": {},
    "bruteforce": {},
    "paged": {},
}

ALL_ENGINES = tuple(ENGINE_OPTIONS)
EXECUTORS = ("serial", "thread", "process")
PARTITIONERS = ("hash", "routed")


def inner_spec(engine_name: str) -> EngineSpec:
    return EngineSpec(engine_name, ENGINE_OPTIONS[engine_name])


def subscription(sid: int, text: str) -> Subscription:
    from repro.subscriptions.parser import parse

    return Subscription(expression=parse(text), subscription_id=sid)


def bound_partitioner(shards: int = 4, **options) -> RoutedPartitioner:
    partitioner = RoutedPartitioner(**options)
    partitioner.bind(shards)
    return partitioner


# ----------------------------------------------------------------------
# region digest: incremental add / remove / migrate
# ----------------------------------------------------------------------
def test_same_key_subscriptions_share_a_home_shard():
    partitioner = bound_partitioner()
    shards = {
        partitioner.assign(subscription(sid, f"key = 'hot' and value > {sid}"))
        for sid in range(1, 9)
    }
    assert len(shards) == 1
    home = shards.pop()
    assert partitioner.candidate_shards(Event({"key": "hot", "value": 5})) == {
        home
    }
    # an event for a key nobody anchors on is fully pruned
    assert partitioner.candidate_shards(Event({"key": "cold"})) == set()


def test_value_home_is_sticky_under_load_shift():
    """New groups touching an existing key follow it, not the load."""
    partitioner = bound_partitioner(2)
    first = partitioner.assign(subscription(1, "key = 'a' and value > 1"))
    # pile enough other regions onto both shards to move the load
    # minimum around, then anchor on 'a' again
    for sid in range(2, 12):
        partitioner.assign(subscription(sid, f"key = 'k{sid}'"))
    assert partitioner.assign(subscription(99, "key = 'a' and value < 0")) == first


def test_forget_unwinds_the_digest():
    partitioner = bound_partitioner()
    for sid in range(1, 5):
        partitioner.assign(subscription(sid, f"key = 'k{sid}'"))
    partitioner.assign(subscription(10, "value > 3 and value < 9"))
    for sid in (1, 2, 3, 4, 10):
        partitioner.forget(sid)
    assert partitioner._assignments == {}
    assert partitioner._groups == {}
    assert partitioner._point_index == {}
    assert partitioner._scan_groups == set()
    assert partitioner._loads == [0, 0, 0, 0]
    for event in (Event({"key": "k1"}), Event({"value": 5})):
        assert partitioner.candidate_shards(event) == set()


def test_hull_groups_route_by_merged_interval():
    partitioner = bound_partitioner()
    a = partitioner.assign(subscription(1, "value > 10 and value < 20"))
    assert partitioner.assign(subscription(2, "value > 12 and value < 30")) == a
    # inside the merged hull (10, 30) -> probed; outside -> pruned;
    # missing the hull attribute entirely -> pruned
    assert partitioner.candidate_shards(Event({"value": 15})) == {a}
    assert partitioner.candidate_shards(Event({"value": 40})) == set()
    assert partitioner.candidate_shards(Event({"other": 1})) == set()


def test_universal_subscriptions_are_never_pruned():
    partitioner = bound_partitioner()
    shard = partitioner.assign(subscription(1, "a > 1 or b < 2"))  # no anchors,
    # and the OR of two single-attribute clauses has no common tight hull
    assert shard in partitioner.candidate_shards(Event({"unrelated": 0}))


def test_plan_rebalance_migrates_whole_groups():
    partitioner = bound_partitioner(2, imbalance_factor=1.0)
    # both regions share the value home of their smallest anchor ('a'),
    # so placement stacks all 8 members on one shard: an 8-vs-0 split
    # made of two movable 4-member groups
    for sid in range(1, 5):
        partitioner.assign(subscription(sid, "key = 'a'"))
    for sid in range(20, 24):
        partitioner.assign(subscription(sid, "key = 'a' or key = 'b'"))
    source = partitioner.shard_of(1)
    assert partitioner.shard_of(20) == source
    moves = partitioner.plan_rebalance()
    assert moves, "8-vs-0 split above factor 1.0 must trigger a move"
    assert partitioner.migrations == 1
    moved_sids = {sid for sid, _, _ in moves}
    # whole-group migration: exactly one of the two regions moved
    assert moved_sids in ({1, 2, 3, 4}, {20, 21, 22, 23})
    (destination,) = {dst for _, _, dst in moves}
    assert destination != source
    for sid in moved_sids:
        assert partitioner.shard_of(sid) == destination
    assert sorted(partitioner._loads) == [4, 4]
    # the digest routes to both groups' shards immediately: an event for
    # the shared key now needs both, the 'b'-only key exactly one
    assert partitioner.candidate_shards(Event({"key": "a"})) == {
        source,
        destination,
    }
    assert partitioner.candidate_shards(Event({"key": "b"})) == {
        partitioner.shard_of(20)
    }


@given(seed=st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_candidate_shards_is_sound(seed):
    """Every matching subscription's shard survives the pruning."""
    scenario = SkewedHotKeyScenario(seed=seed)
    subscriptions = scenario.subscriptions(32)
    events = scenario.events(32)
    oracle = build_engine("bruteforce")
    partitioner = bound_partitioner()
    for entry in subscriptions:
        oracle.register(entry)
        partitioner.assign(entry)
    for event in events:
        candidates = partitioner.candidate_shards(event)
        for sid in oracle.match(event):
            assert partitioner.shard_of(sid) in candidates


# ----------------------------------------------------------------------
# parity: routed vs hash vs unsharded, all engines
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine_name", ALL_ENGINES)
@given(seed=st.integers(0, 10_000))
@settings(max_examples=5, deadline=None)
def test_routed_parity_on_random_corpora(engine_name, seed):
    scenario = SkewedHotKeyScenario(seed=seed)
    subscriptions = scenario.subscriptions(24)
    events = scenario.events(48)
    plain = inner_spec(engine_name).build()
    try:
        for entry in subscriptions:
            plain.register(entry)
        expected_batch = plain.match_batch(events)
        expected_events = [plain.match(event) for event in events[:8]]
        for partitioner in PARTITIONERS:
            with ShardedEngine(
                inner_spec(engine_name), shards=3, partitioner=partitioner
            ) as engine:
                for entry in subscriptions:
                    engine.register(entry)
                assert engine.match_batch(events) == expected_batch
                for event, expected in zip(events, expected_events):
                    assert engine.match(event) == expected
    finally:
        plain.close()


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("engine_name", ALL_ENGINES)
def test_routed_parity_under_churn_with_rebalance(engine_name, executor):
    """Batch-flushed churn through a rebalance-happy routed engine.

    ``imbalance_factor=1.0`` makes every post-churn imbalance actionable,
    so the run includes real migrations — whose register/unregister pairs
    must reach live executor workers (the process leg forks them mid-run)
    without perturbing a single match set.
    """
    if executor == "process" and not HAS_FORK:
        pytest.skip("process executor needs the fork start method")
    ops = list(ChurnScenario(seed=13, warmup_subscriptions=12).ops(90))
    plain = inner_spec(engine_name).build()
    with ShardedEngine(
        inner_spec(engine_name),
        shards=3,
        executor=executor,
        partitioner=RoutedPartitioner(imbalance_factor=1.0),
    ) as engine:

        def drive(target) -> list[list[set[int]]]:
            trace, pending = [], []
            for kind, payload in ops:
                if kind == "subscribe":
                    target.register(payload)
                elif kind == "unsubscribe":
                    target.unregister(payload)
                else:
                    pending.append(payload)
                    if len(pending) == 8:
                        trace.append(target.match_batch(pending))
                        pending = []
            if pending:
                trace.append(target.match_batch(pending))
            return trace

        try:
            assert drive(engine) == drive(plain)
            assert engine.subscription_ids() == plain.subscription_ids()
            assert engine.partitioner.migrations > 0
        finally:
            plain.close()


# ----------------------------------------------------------------------
# counters, specs, registry, memory
# ----------------------------------------------------------------------
def test_pruning_counters_and_stats():
    scenario = SkewedHotKeyScenario(seed=11)
    subscriptions = scenario.subscriptions(48)
    events = scenario.events(64)
    with ShardedEngine("noncanonical", shards=4, partitioner="routed") as engine:
        for entry in subscriptions:
            engine.register(entry)
        engine.reset_counters()
        for event in events[:16]:
            engine.match(event)
        engine.match_batch(events[16:])
        counters = engine.counters
        assert counters.shards_probed + counters.shards_pruned == 4 * len(events)
        assert counters.shards_pruned > 0
        stats = engine.stats()
        assert stats["partitioner"] == "routed"
        assert stats["shards_probed"] == counters.shards_probed
        assert stats["shards_pruned"] == counters.shards_pruned


def test_hash_partitioner_probes_every_shard():
    scenario = SkewedHotKeyScenario(seed=11)
    with ShardedEngine("noncanonical", shards=4) as engine:
        for entry in scenario.subscriptions(16):
            engine.register(entry)
        engine.reset_counters()
        engine.match_batch(scenario.events(8))
        assert engine.counters.shards_probed == 32
        assert engine.counters.shards_pruned == 0


def test_broker_surfaces_pruning_counters():
    from repro import Broker

    broker = Broker(
        "hub",
        engine=EngineSpec(
            "noncanonical", {"shards": 4, "partitioner": "routed"}
        ),
    )
    scenario = SkewedHotKeyScenario(seed=5)
    for entry in scenario.subscriptions(24):
        broker.subscribe(entry)
    broker.publish(scenario.events(16))
    stats = broker.engine_stats()
    assert stats["shards_probed"] + stats["shards_pruned"] == 4 * 16
    assert stats["shards_pruned"] > 0


def test_partitioner_registry_and_spec_roundtrip():
    assert set(partitioner_names()) >= {"hash", "routed"}
    assert isinstance(make_partitioner("hash"), HashPartitioner)
    instance = RoutedPartitioner()
    assert make_partitioner(instance) is instance
    with pytest.raises(ValueError):
        make_partitioner("warp-drive")
    engine = build_engine("noncanonical", shards=4, partitioner="routed")
    spec = spec_of(engine)
    assert spec.options["partitioner"] == "routed"
    rebuilt = spec.build()
    assert isinstance(rebuilt.partitioner, RoutedPartitioner)
    # the hash default stays implicit, keeping pre-routing specs stable
    assert "partitioner" not in spec_of(build_engine("noncanonical", shards=4)).options
    with pytest.raises(ValueError):
        build_engine("noncanonical", partitioner="routed")  # needs shards=


def test_routing_digest_is_charged_to_memory():
    scenario = SkewedHotKeyScenario(seed=3)
    subscriptions = scenario.subscriptions(32)
    routed = ShardedEngine("noncanonical", shards=4, partitioner="routed")
    hashed = ShardedEngine("noncanonical", shards=4)
    for entry in subscriptions:
        routed.register(entry)
        hashed.register(entry)
    assert routed.memory_breakdown()["shard_router"] > 0
    assert "shard_router" not in hashed.memory_breakdown()
    assert routed.memory_bytes() > hashed.memory_bytes()
    assert (
        routed.stats()["memory_bytes"]
        == sum(routed.memory_breakdown().values())
    )


def test_rebalance_validation():
    with pytest.raises(ValueError):
        RoutedPartitioner(imbalance_factor=0.5)
