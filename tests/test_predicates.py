"""Unit tests for predicates and the registry (repro.predicates)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.events import Event
from repro.predicates import (
    InvalidPredicateError,
    Operator,
    Predicate,
    PredicateRegistry,
    UnknownPredicateError,
)


class TestPredicateValidation:
    def test_simple_comparison_predicate(self):
        p = Predicate("price", Operator.GT, 10)
        assert p.attribute == "price"
        assert p.value == 10

    def test_empty_attribute_rejected(self):
        with pytest.raises(InvalidPredicateError):
            Predicate("", Operator.EQ, 1)

    def test_non_string_attribute_rejected(self):
        with pytest.raises(InvalidPredicateError):
            Predicate(5, Operator.EQ, 1)

    def test_none_operand_rejected_for_comparisons(self):
        with pytest.raises(InvalidPredicateError):
            Predicate("a", Operator.EQ, None)

    def test_between_normalizes_to_tuple(self):
        p = Predicate("a", Operator.BETWEEN, [1, 5])
        assert p.value == (1, 5)

    def test_between_rejects_reversed_bounds(self):
        with pytest.raises(InvalidPredicateError, match="out of order"):
            Predicate("a", Operator.BETWEEN, (5, 1))

    def test_between_rejects_mixed_domains(self):
        with pytest.raises(InvalidPredicateError):
            Predicate("a", Operator.BETWEEN, (1, "z"))

    def test_between_rejects_non_pair(self):
        with pytest.raises(InvalidPredicateError):
            Predicate("a", Operator.BETWEEN, (1, 2, 3))
        with pytest.raises(InvalidPredicateError):
            Predicate("a", Operator.BETWEEN, 5)

    def test_between_rejects_bool_bounds(self):
        with pytest.raises(InvalidPredicateError):
            Predicate("a", Operator.BETWEEN, (True, False))

    def test_in_normalizes_to_frozenset(self):
        p = Predicate("a", Operator.IN, [1, 2, 2])
        assert p.value == frozenset({1, 2})

    def test_in_rejects_empty(self):
        with pytest.raises(InvalidPredicateError):
            Predicate("a", Operator.IN, [])

    def test_in_rejects_bare_string(self):
        with pytest.raises(InvalidPredicateError):
            Predicate("a", Operator.IN, "abc")

    def test_string_operator_requires_string_operand(self):
        with pytest.raises(InvalidPredicateError):
            Predicate("a", Operator.PREFIX, 5)

    def test_range_operator_rejects_bool_operand(self):
        with pytest.raises(InvalidPredicateError):
            Predicate("a", Operator.GT, True)

    def test_exists_takes_no_operand(self):
        p = Predicate("a", Operator.EXISTS)
        assert p.value is None
        with pytest.raises(InvalidPredicateError):
            Predicate("a", Operator.EXISTS, 5)


class TestPredicateMatching:
    def test_matches_fulfilling_event(self):
        assert Predicate("price", Operator.GT, 10).matches(Event({"price": 11}))

    def test_does_not_match_unfulfilling_event(self):
        assert not Predicate("price", Operator.GT, 10).matches(
            Event({"price": 10})
        )

    def test_absent_attribute_never_matches(self):
        p = Predicate("price", Operator.NE, 10)
        assert not p.matches(Event({"volume": 5}))

    def test_exists_matches_any_present_value(self):
        p = Predicate("price", Operator.EXISTS)
        assert p.matches(Event({"price": 0}))
        assert not p.matches(Event({"volume": 1}))

    def test_between_matching(self):
        p = Predicate("x", Operator.BETWEEN, (1, 5))
        assert p.matches(Event({"x": 3}))
        assert not p.matches(Event({"x": 6}))

    def test_string_operator_matching(self):
        p = Predicate("sym", Operator.PREFIX, "AC")
        assert p.matches(Event({"sym": "ACME"}))
        assert not p.matches(Event({"sym": "ME"}))


class TestPredicateStructuralEquality:
    def test_equal_triples_are_equal(self):
        assert Predicate("a", Operator.EQ, 1) == Predicate("a", Operator.EQ, 1)

    def test_different_operand_differs(self):
        assert Predicate("a", Operator.EQ, 1) != Predicate("a", Operator.EQ, 2)

    def test_hashable_and_deduplicable(self):
        s = {Predicate("a", Operator.EQ, 1), Predicate("a", Operator.EQ, 1)}
        assert len(s) == 1

    def test_str_rendering(self):
        assert str(Predicate("a", Operator.LE, 5)) == "a <= 5"
        assert "between" in str(Predicate("a", Operator.BETWEEN, (1, 2)))
        assert "in" in str(Predicate("a", Operator.IN, [1]))
        assert "exists" in str(Predicate("a", Operator.EXISTS))


class TestPredicateNegation:
    @pytest.mark.parametrize(
        "operator, flipped",
        [
            (Operator.EQ, Operator.NE),
            (Operator.NE, Operator.EQ),
            (Operator.LT, Operator.GE),
            (Operator.GE, Operator.LT),
            (Operator.GT, Operator.LE),
            (Operator.LE, Operator.GT),
        ],
    )
    def test_negation_flips_operator(self, operator, flipped):
        p = Predicate("a", operator, 5)
        assert p.negated().operator is flipped

    def test_double_negation_is_identity(self):
        p = Predicate("a", Operator.LT, 5)
        assert p.negated().negated() == p

    @pytest.mark.parametrize(
        "operator, operand",
        [
            (Operator.BETWEEN, (1, 2)),
            (Operator.IN, [1, 2]),
            (Operator.PREFIX, "a"),
            (Operator.EXISTS, None),
        ],
    )
    def test_non_complementable_operators_raise(self, operator, operand):
        with pytest.raises(ValueError, match="no single-predicate complement"):
            Predicate("a", operator, operand).negated()

    @given(st.integers(-50, 50), st.integers(-50, 50))
    def test_negation_is_complement_when_attribute_present(self, value, operand):
        event = Event({"a": value})
        for operator in (Operator.EQ, Operator.LT, Operator.LE, Operator.GT):
            p = Predicate("a", operator, operand)
            assert p.matches(event) != p.negated().matches(event)


class TestPredicateRegistry:
    def test_register_assigns_positive_ids(self):
        registry = PredicateRegistry()
        pid = registry.register(Predicate("a", Operator.EQ, 1))
        assert pid >= 1

    def test_structural_dedup(self):
        registry = PredicateRegistry()
        first = registry.register(Predicate("a", Operator.EQ, 1))
        second = registry.register(Predicate("a", Operator.EQ, 1))
        assert first == second
        assert len(registry) == 1
        assert registry.refcount(first) == 2

    def test_distinct_predicates_get_distinct_ids(self):
        registry = PredicateRegistry()
        a = registry.register(Predicate("a", Operator.EQ, 1))
        b = registry.register(Predicate("a", Operator.EQ, 2))
        assert a != b

    def test_lookup_both_directions(self):
        registry = PredicateRegistry()
        p = Predicate("a", Operator.EQ, 1)
        pid = registry.register(p)
        assert registry.predicate(pid) == p
        assert registry.identifier(p) == pid

    def test_release_decrements_then_retires(self):
        registry = PredicateRegistry()
        p = Predicate("a", Operator.EQ, 1)
        pid = registry.register(p)
        registry.register(p)
        assert registry.release(pid) is False
        assert registry.release(pid) is True
        assert p not in registry
        assert len(registry) == 0

    def test_release_unknown_raises(self):
        registry = PredicateRegistry()
        with pytest.raises(UnknownPredicateError):
            registry.release(99)

    def test_lookup_unknown_raises(self):
        registry = PredicateRegistry()
        with pytest.raises(UnknownPredicateError):
            registry.predicate(99)
        with pytest.raises(UnknownPredicateError):
            registry.identifier(Predicate("a", Operator.EQ, 1))

    def test_retired_ids_are_recycled(self):
        registry = PredicateRegistry()
        pid = registry.register(Predicate("a", Operator.EQ, 1))
        registry.release(pid)
        fresh = registry.register(Predicate("b", Operator.EQ, 2))
        assert fresh == pid

    def test_iteration_yields_pairs(self):
        registry = PredicateRegistry()
        p = Predicate("a", Operator.EQ, 1)
        pid = registry.register(p)
        assert list(registry) == [(pid, p)]

    def test_contains_protocol(self):
        registry = PredicateRegistry()
        p = Predicate("a", Operator.EQ, 1)
        assert p not in registry
        registry.register(p)
        assert p in registry

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=50))
    def test_refcounts_track_register_release_sequences(self, values):
        registry = PredicateRegistry()
        counts: dict[int, int] = {}
        for value in values:
            p = Predicate("a", Operator.EQ, value)
            pid = registry.register(p)
            counts[pid] = counts.get(pid, 0) + 1
        assert len(registry) == len(counts)
        for pid, count in counts.items():
            assert registry.refcount(pid) == count
        for pid, count in counts.items():
            for remaining in range(count - 1, -1, -1):
                retired = registry.release(pid)
                assert retired == (remaining == 0)
        assert len(registry) == 0
