"""End-to-end integration tests across the whole stack."""

from __future__ import annotations

import random

import pytest

from repro.broker import Broker, BrokerNetwork, Publisher, Subscriber
from repro import (
    BruteForceEngine,
    CountingEngine,
    NonCanonicalEngine,
)
from repro.memory import PaperWorkloadShape, noncanonical_bytes
from repro.subscriptions import Subscription
from repro.workloads import (
    AuctionScenario,
    NewsScenario,
    PaperSubscriptionGenerator,
    StockScenario,
)


class TestScenarioPipelines:
    """Each example scenario runs end to end through a broker, and the
    non-canonical engine agrees with the brute-force oracle throughout."""

    @pytest.mark.parametrize(
        "scenario_class",
        [StockScenario, AuctionScenario, NewsScenario],
    )
    def test_scenario_through_broker_with_oracle(self, scenario_class):
        scenario = scenario_class(seed=42)
        broker = Broker("main", engine=NonCanonicalEngine())
        oracle = BruteForceEngine()
        subscribers = [Subscriber(f"user{i}", broker) for i in range(8)]
        subscriptions = []
        for subscriber in subscribers:
            subscription = scenario.subscription(subscriber.name)
            subscriber.subscribe(subscription)
            oracle.register(subscription)
            subscriptions.append(subscription)
        publisher = Publisher("feed", broker)
        total = 0
        for _ in range(150):
            event = scenario.event()
            notifications = publisher.publish(event)
            expected = oracle.match(event)
            assert {n.subscription_id for n in notifications} == expected
            total += len(notifications)
        assert total > 0
        assert sum(len(s.notifications) for s in subscribers) == total

    def test_scenario_over_network(self):
        scenario = StockScenario(seed=7)
        network = BrokerNetwork()
        for name in ("nyc", "lon", "hkg"):
            network.add_broker(Broker(name))
        network.connect("nyc", "lon")
        network.connect("lon", "hkg")
        received: dict[str, list] = {"nyc": [], "hkg": []}
        for site in received:
            for index in range(4):
                network.subscribe(
                    site,
                    scenario.subscription(f"{site}-trader{index}"),
                    sink=received[site].append,
                )
        deliveries = 0
        for _ in range(100):
            deliveries += len(network.publish("lon", scenario.event()))
        assert deliveries == sum(len(v) for v in received.values())
        assert deliveries > 0


class TestChurnLifecycle:
    def test_subscribe_publish_unsubscribe_cycles(self):
        rng = random.Random(3)
        broker = Broker("edge")
        oracle = BruteForceEngine()
        scenario = AuctionScenario(seed=9)
        live: dict[int, Subscription] = {}
        for cycle in range(30):
            if live and rng.random() < 0.4:
                doomed = rng.choice(list(live))
                broker.unsubscribe(doomed)
                oracle.unregister(doomed)
                del live[doomed]
            else:
                subscription = scenario.subscription(f"u{cycle}")
                broker.subscribe(subscription)
                oracle.register(subscription)
                live[subscription.subscription_id] = subscription
            event = scenario.event()
            got = {n.subscription_id for n in broker.publish(event)}
            assert got == oracle.match(event)
        assert broker.subscription_count == len(live)


class TestPaperStoryEndToEnd:
    """The paper's argument, reproduced in one test: same workload, the
    canonical engine stores a multiple of the subscriptions and burns a
    multiple of the memory, while matching answers stay identical."""

    def test_blowup_and_agreement(self):
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=10, seed=1
        )
        subscriptions = generator.subscriptions(25)
        from repro.indexes import IndexManager
        from repro.predicates import PredicateRegistry

        registry = PredicateRegistry()
        indexes = IndexManager()
        non_canonical = NonCanonicalEngine(registry=registry, indexes=indexes)
        counting = CountingEngine(registry=registry, indexes=indexes)
        for subscription in subscriptions:
            non_canonical.register(subscription)
            counting.register(
                Subscription(
                    expression=subscription.expression,
                    subscription_id=subscription.subscription_id,
                )
            )
        # storage blow-up: 32 clauses per original
        assert counting.stored_subscription_count == 25 * 32
        assert non_canonical.stored_subscription_count == 25
        # memory blow-up exceeds 4x (the paper's scalability claim)
        assert counting.memory_bytes() > 4 * non_canonical.memory_bytes()
        # matching answers identical
        rng = random.Random(11)
        universe = list(range(1, len(non_canonical.registry) + 1))
        for _ in range(40):
            fulfilled = set(rng.sample(universe, 40))
            assert non_canonical.match_fulfilled(fulfilled) == (
                counting.match_fulfilled(fulfilled)
            )

    def test_measured_memory_matches_closed_form_at_scale(self):
        engine = NonCanonicalEngine()
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=8, seed=2
        )
        for subscription in generator.subscriptions(200):
            engine.register(subscription)
        assert engine.memory_bytes() == noncanonical_bytes(
            200, PaperWorkloadShape(8)
        )
