"""Unit and property tests for the evaluation compiler."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.predicates import PredicateRegistry
from repro.subscriptions import (
    MODE_ANY,
    MODE_CLOSURE,
    MODE_DNF,
    MODE_GROUPS,
    SubscriptionTree,
    compile_tree,
    evaluate_compiled,
    parse,
)
from repro.workloads import PaperSubscriptionGenerator

from helpers import random_expressions


def compiled_of(text):
    registry = PredicateRegistry()
    tree = SubscriptionTree.from_expression(parse(text), registry.register)
    return compile_tree(tree.root), tree


class TestModeSelection:
    def test_single_leaf_is_any(self):
        compiled, _ = compiled_of("a = 1")
        assert compiled[0] == MODE_ANY

    def test_flat_or_is_any(self):
        compiled, _ = compiled_of("a = 1 or b = 2 or c = 3")
        assert compiled[0] == MODE_ANY
        assert len(compiled[1]) == 3

    def test_flat_and_is_groups_of_singletons(self):
        compiled, _ = compiled_of("a = 1 and b = 2")
        assert compiled[0] == MODE_GROUPS
        assert all(len(group) == 1 for group in compiled[1])

    def test_paper_shape_is_groups(self):
        compiled, _ = compiled_of("(a = 1 or b = 2) and (c = 3 or d = 4)")
        assert compiled[0] == MODE_GROUPS
        assert len(compiled[1]) == 2
        assert all(len(group) == 2 for group in compiled[1])

    def test_mixed_and_children_still_groups(self):
        compiled, _ = compiled_of("e = 5 and (a = 1 or b = 2)")
        assert compiled[0] == MODE_GROUPS

    def test_not_forces_closure(self):
        compiled, _ = compiled_of("not a = 1")
        assert compiled[0] == MODE_CLOSURE

    def test_dnf_shape_gets_dnf_mode(self):
        compiled, _ = compiled_of("(a = 1 and b = 2) or c = 3")
        assert compiled[0] == MODE_DNF
        assert sorted(len(group) for group in compiled[1]) == [1, 2]

    def test_dnf_mode_semantics(self):
        compiled, tree = compiled_of("(a = 1 and b = 2) or c = 3")
        ids = sorted(tree.predicate_ids())
        assert evaluate_compiled(compiled, {ids[0], ids[1]})
        assert evaluate_compiled(compiled, {ids[2]})
        assert not evaluate_compiled(compiled, {ids[0]})

    def test_deep_nesting_forces_closure(self):
        compiled, _ = compiled_of("(a = 1 or (b = 2 and c = 3)) and d = 4")
        assert compiled[0] == MODE_CLOSURE


class TestSemantics:
    def test_groups_semantics(self):
        compiled, tree = compiled_of("(a = 1 or b = 2) and (c = 3 or d = 4)")
        ids = sorted(tree.predicate_ids())
        assert evaluate_compiled(compiled, {ids[0], ids[2]})
        assert not evaluate_compiled(compiled, {ids[0], ids[1]})

    def test_any_semantics(self):
        compiled, tree = compiled_of("a = 1 or b = 2")
        ids = sorted(tree.predicate_ids())
        assert evaluate_compiled(compiled, {ids[1]})
        assert not evaluate_compiled(compiled, {99})

    def test_closure_semantics(self):
        compiled, tree = compiled_of("not (a = 1 or b = 2)")
        ids = sorted(tree.predicate_ids())
        assert evaluate_compiled(compiled, set())
        assert not evaluate_compiled(compiled, {ids[0]})

    @given(random_expressions(), st.sets(st.integers(1, 6)))
    def test_compiled_matches_tree_evaluation(self, expression, fulfilled):
        registry = PredicateRegistry()
        tree = SubscriptionTree.from_expression(expression, registry.register)
        compiled = compile_tree(tree.root)
        assert evaluate_compiled(compiled, fulfilled) == tree.evaluate(fulfilled)

    def test_paper_workload_compiles_to_groups(self):
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=10, seed=3
        )
        registry = PredicateRegistry()
        for subscription in generator.subscriptions(20):
            tree = SubscriptionTree.from_expression(
                subscription.expression, registry.register
            )
            mode, payload = compile_tree(tree.root)
            assert mode == MODE_GROUPS
            assert len(payload) == 5
