"""Unit tests for the experiment harness, reporting, and the Fig. 3 driver."""

from __future__ import annotations

import io

import pytest

from repro.experiments import (
    FULL_SCALE,
    PAPER_PARAMETERS,
    QUICK_SCALE,
    ascii_plot,
    crossover_subscriptions,
    format_bytes,
    format_seconds,
    format_table,
    growth_ratio,
    least_squares_slope,
    normalized_slope,
    run_sweep,
    time_subscription_matching,
)
from repro.experiments.figure3 import (
    PANELS,
    machine_for,
    main,
    render_table1,
    run_panel,
    sweep_positions,
)
from repro.experiments.parameters import ScaleConfig
from repro.memory import SimulatedMachine


class TestShapeAnalysis:
    def test_slope_of_exact_line(self):
        slope, r_squared = least_squares_slope([(0, 1), (1, 3), (2, 5)])
        assert slope == pytest.approx(2.0)
        assert r_squared == pytest.approx(1.0)

    def test_slope_of_flat_series(self):
        slope, r_squared = least_squares_slope([(0, 4), (1, 4), (2, 4)])
        assert slope == pytest.approx(0.0)
        assert r_squared == pytest.approx(0.0)

    def test_slope_validation(self):
        with pytest.raises(ValueError):
            least_squares_slope([(1, 1)])
        with pytest.raises(ValueError):
            least_squares_slope([(1, 1), (1, 2)])

    def test_growth_ratio(self):
        assert growth_ratio([(1, 2.0), (10, 8.0)]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            growth_ratio([(1, 2.0)])

    def test_normalized_slope_classification(self):
        linear = [(n, 0.001 * n) for n in (100, 200, 400, 800)]
        flat = [(n, 5.0) for n in (100, 200, 400, 800)]
        assert normalized_slope(linear) > 0.8
        assert abs(normalized_slope(flat)) < 0.05

    def test_crossover_detection(self):
        slow = [(1, 1.0), (2, 2.0), (3, 3.0)]
        fast = [(1, 1.6), (2, 1.6), (3, 1.6)]
        crossing = crossover_subscriptions(slow, fast)
        assert 1.0 < crossing < 2.0

    def test_crossover_none_when_fast_never_wins(self):
        slow = [(1, 1.0), (2, 1.1)]
        fast = [(1, 5.0), (2, 5.0)]
        assert crossover_subscriptions(slow, fast) is None

    def test_crossover_at_start(self):
        slow = [(1, 9.0), (2, 9.0)]
        fast = [(1, 1.0), (2, 1.0)]
        assert crossover_subscriptions(slow, fast) == 1

    def test_crossover_requires_aligned_x(self):
        with pytest.raises(ValueError):
            crossover_subscriptions([(1, 1.0), (2, 1.0)], [(1, 1.0), (3, 1.0)])


class TestReportRendering:
    def test_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = table.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular
        assert "long-name" in table

    def test_ascii_plot_contains_markers_and_legend(self):
        plot = ascii_plot(
            {"one": [(0, 0.0), (10, 1.0)], "two": [(0, 1.0), (10, 0.0)]},
            x_label="n",
            y_label="s",
        )
        assert "*" in plot and "o" in plot
        assert "one" in plot and "two" in plot

    def test_ascii_plot_empty(self):
        assert ascii_plot({}) == "(no data)"

    def test_format_seconds_ranges(self):
        assert "us" in format_seconds(5e-6)
        assert "ms" in format_seconds(5e-3)
        assert "s" in format_seconds(5.0)

    def test_format_bytes_ranges(self):
        assert "B" in format_bytes(100)
        assert "KiB" in format_bytes(10_000)
        assert "MiB" in format_bytes(10_000_000)


TINY_SCALE = ScaleConfig(
    name="tiny",
    subscription_divisor=25_000,
    fulfilled_divisor=500,
    events_per_point=2,
    points_per_curve=3,
)


class TestHarness:
    def test_time_subscription_matching_positive(self):
        from repro import NonCanonicalEngine
        from repro.subscriptions import Subscription

        engine = NonCanonicalEngine()
        engine.register(Subscription.from_text("a = 1"))
        seconds = time_subscription_matching(engine, [{1}, {2}], repeats=2)
        assert seconds > 0

    def test_time_requires_samples(self):
        from repro import NonCanonicalEngine

        with pytest.raises(ValueError):
            time_subscription_matching(NonCanonicalEngine(), [])

    def test_run_sweep_requires_ascending_counts(self):
        with pytest.raises(ValueError):
            run_sweep(
                predicates_per_subscription=6,
                subscription_counts=[100, 50],
                fulfilled_per_event=10,
                machine=SimulatedMachine(),
            )

    def test_run_sweep_structure(self):
        machine = machine_for(TINY_SCALE)
        result = run_sweep(
            predicates_per_subscription=6,
            subscription_counts=[50, 100, 150],
            fulfilled_per_event=10,
            machine=machine,
            events_per_point=2,
            repeats=1,
        )
        assert set(result.sweeps) == {
            "non-canonical", "counting-variant", "counting",
        }
        for sweep in result.sweeps.values():
            assert [p.subscriptions for p in sweep.points] == [50, 100, 150]
            assert all(p.raw_seconds > 0 for p in sweep.points)
            assert all(p.seconds >= p.raw_seconds for p in sweep.points)
            assert all(p.slowdown >= 1.0 for p in sweep.points)
        counting = result.sweeps["counting"].points
        assert all(p.stored_subscriptions == 8 * p.subscriptions for p in counting)

    def test_memory_monotone_in_subscriptions(self):
        result = run_sweep(
            predicates_per_subscription=6,
            subscription_counts=[50, 100],
            fulfilled_per_event=10,
            machine=SimulatedMachine(),
            events_per_point=1,
            repeats=1,
        )
        for sweep in result.sweeps.values():
            memory = [p.memory_bytes for p in sweep.points]
            assert memory == sorted(memory)
            assert memory[0] < memory[1]


class TestFigure3Driver:
    def test_panel_definitions_match_paper(self):
        assert set(PANELS) == set("abcdef")
        assert PANELS["a"].predicates_per_subscription == 6
        assert PANELS["c"].predicates_per_subscription == 10
        assert PANELS["d"].fulfilled_paper == 10_000
        assert PANELS["c"].paper_max_subscriptions == 2_500_000

    def test_sweep_positions_ascending_with_small_point(self):
        positions = sweep_positions(PANELS["a"], QUICK_SCALE)
        assert positions == sorted(positions)
        assert positions[0] <= QUICK_SCALE.subscriptions(2_000)

    def test_machine_scaled_budget(self):
        quick = machine_for(QUICK_SCALE)
        full = machine_for(FULL_SCALE)
        assert quick.available_bytes < full.available_bytes

    def test_run_panel_tiny(self):
        result = run_panel(PANELS["a"], TINY_SCALE, repeats=1)
        assert result.fulfilled_per_event == 10
        assert all(len(s.points) >= 2 for s in result.sweeps.values())

    def test_table1_rendering(self):
        text = render_table1()
        assert "1.8 GHz" in text
        assert "512 MB" in text
        assert "5,000,000" in text
        assert "AND, OR" in text

    def test_paper_parameter_rows_complete(self):
        rows = PAPER_PARAMETERS.rows()
        assert len(rows) == 7

    def test_cli_table1(self):
        out = io.StringIO()
        assert main(["--table1"], out=out) == 0
        assert "Table 1" in out.getvalue()

    def test_cli_rejects_unknown_panel(self):
        with pytest.raises(SystemExit):
            main(["--panel", "z"], out=io.StringIO())
