"""Tests for the incremental covering poset and the canonical-DNF cache."""

from __future__ import annotations

import random

import pytest

from repro.subscriptions import (
    CoveringIndex,
    canonical_dnf,
    clear_dnf_cache,
    covers,
    dnf_cache_stats,
    parse,
    prune_covered,
)
from repro.subscriptions.normal_forms import DnfExplosionError
from repro.workloads import NetworkChurnScenario, StockScenario


class TestAddOutcomes:
    def test_first_member_is_maximal(self):
        index = CoveringIndex()
        outcome = index.add(1, parse("a > 0"))
        assert outcome.covered_by is None
        assert outcome.newly_covered == ()
        assert index.maximal_ids() == {1}

    def test_narrow_after_wide_arrives_covered(self):
        index = CoveringIndex()
        index.add(1, parse("a > 0"))
        outcome = index.add(2, parse("a > 5"))
        assert outcome.covered_by == 1
        assert index.is_covered(2)
        assert index.coverer_of(2) == 1
        assert index.maximal_ids() == {1}

    def test_wide_after_narrow_absorbs(self):
        index = CoveringIndex()
        index.add(1, parse("a > 5 and b = 1"))
        index.add(2, parse("a > 5 and c = 2"))   # sibling maximal of 1
        outcome = index.add(3, parse("a > 0"))
        assert outcome.covered_by is None
        assert set(outcome.newly_covered) == {1, 2}
        assert index.maximal_ids() == {3}
        assert index.covered_mapping() == {1: 3, 2: 3}

    def test_absorption_reroots_subtrees(self):
        index = CoveringIndex()
        index.add(1, parse("a > 5"))
        index.add(2, parse("a > 7"))       # covered by 1
        outcome = index.add(3, parse("a > 0"))
        # 1 is absorbed directly; its child 2 re-roots to 3 as well
        assert outcome.newly_covered == (1,)
        assert index.covered_mapping() == {1: 3, 2: 3}

    def test_covered_member_does_not_absorb(self):
        index = CoveringIndex()
        index.add(1, parse("a > 0"))
        index.add(2, parse("b = 1"))
        # arrives covered by 1; must not steal 2 even if it covered it
        outcome = index.add(3, parse("a > 5"))
        assert outcome.covered_by == 1
        assert outcome.newly_covered == ()
        assert index.maximal_ids() == {1, 2}

    def test_duplicate_id_rejected(self):
        index = CoveringIndex()
        index.add(1, parse("a > 0"))
        with pytest.raises(ValueError, match="already present"):
            index.add(1, parse("a > 1"))


class TestRemoveOutcomes:
    def test_removing_covered_member_exposes_nothing(self):
        index = CoveringIndex()
        index.add(1, parse("a > 0"))
        index.add(2, parse("a > 5"))
        outcome = index.remove(2)
        assert outcome.was_covered and outcome.coverer == 1
        assert outcome.newly_exposed == ()
        assert index.maximal_ids() == {1}

    def test_removing_coverer_exposes_orphans(self):
        index = CoveringIndex()
        index.add(1, parse("a > 0"))
        index.add(2, parse("a > 5"))
        index.add(3, parse("a > 5 and b = 1"))
        outcome = index.remove(1)
        assert not outcome.was_covered
        # 2 has no surviving coverer; 3 re-absorbs under the freshly
        # promoted 2 (a > 5 covers a > 5 and b = 1)
        assert outcome.newly_exposed == (2,)
        assert outcome.reabsorbed == {3: 2}
        assert index.maximal_ids() == {2}
        assert index.covered_mapping() == {3: 2}

    def test_orphan_reabsorbed_under_freshly_exposed_sibling(self):
        index = CoveringIndex()
        index.add(1, parse("a > 0"))      # absorbed by 2 on its arrival
        index.add(2, parse("a >= 0"))
        index.add(3, parse("a > 5"))      # covered by 2
        assert index.covered_mapping() == {1: 2, 3: 2}
        outcome = index.remove(2)
        # orphan 1 promotes to maximal, orphan 3 re-absorbs under it —
        # the coverer's withdrawal does not flood 3 back out
        assert outcome.newly_exposed == (1,)
        assert outcome.reabsorbed == {3: 1}
        assert index.maximal_ids() == {1}
        assert index.covered_mapping() == {3: 1}

    def test_promoted_orphan_absorbs_promoted_sibling(self):
        """Regression: orphan promotion runs the same absorb step as
        add(), so a wide orphan re-covers a narrow sibling promoted
        earlier in the same removal instead of both going maximal."""
        index = CoveringIndex()
        index.add(1, parse("x >= 0"))
        index.add(2, parse("x > 5"))      # covered by 1
        index.add(3, parse("x > 0"))      # covered by 1, covers 2
        outcome = index.remove(1)
        assert outcome.newly_exposed == (3,)
        assert outcome.reabsorbed == {2: 3}
        assert outcome.absorbed == ()
        assert index.maximal_ids() == {3}
        assert index.covered_mapping() == {2: 3}

    def test_later_orphan_reabsorbs_under_earlier_promoted_one(self):
        index = CoveringIndex()
        index.add(1, parse("x >= 0"))
        index.add(2, parse("x > 0"))              # covered by 1
        index.add(4, parse("x > 4 and y = 1"))    # covered by 1
        outcome = index.remove(1)
        # 2 promotes first (smaller id); 4 then finds it as a coverer
        assert outcome.newly_exposed == (2,)
        assert outcome.reabsorbed == {4: 2}
        assert index.maximal_ids() == {2}

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            CoveringIndex().remove(42)


class TestExplodingExpressions:
    def test_exploding_expression_is_isolated_maximal(self):
        from repro.workloads import PaperSubscriptionGenerator

        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=10, seed=1
        )
        big = generator.subscription().expression
        index = CoveringIndex(max_clauses=4)
        index.add(1, big)
        index.add(2, big)
        # neither can cover the other (conservative False on explosion)
        assert index.maximal_ids() == {1, 2}
        assert index.covers_calls == 0


class TestPosetInvariantsUnderChurn:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_partition_and_mapping_stay_consistent(self, seed):
        rng = random.Random(seed)
        scenario = (
            StockScenario(seed=seed)
            if seed % 2
            else NetworkChurnScenario(seed=seed)
        )
        index = CoveringIndex()
        expressions: dict[int, object] = {}
        live: list[int] = []
        for step in range(90):
            if live and rng.random() < 0.35:
                victim = live.pop(rng.randrange(len(live)))
                index.remove(victim)
                del expressions[victim]
            else:
                subscription = scenario.subscription(f"user{step}")
                sid = subscription.subscription_id
                expressions[sid] = subscription.expression
                index.add(sid, subscription.expression)
                live.append(sid)
            maximal = index.maximal_ids()
            covered = index.covered_mapping()
            # maximal/covered partition the live set
            assert maximal | set(covered) == set(expressions)
            assert not (maximal & set(covered))
            # every coverer is itself maximal
            assert all(coverer in maximal for coverer in covered.values())
            if step % 15 == 14:
                # absorption completeness survives removals too: no
                # maximal member covers another (exact-oracle check,
                # sparse because it is quadratic)
                for first in maximal:
                    for second in maximal:
                        assert first == second or not covers(
                            expressions[first], expressions[second]
                        ), (step, first, second)

    def test_no_maximal_pair_covers_each_other(self):
        # absorption completeness: after arbitrary arrival order, no
        # maximal member covers another (checked with the exact oracle)
        scenario = NetworkChurnScenario(seed=5)
        index = CoveringIndex()
        expressions = {}
        for subscription in scenario.subscriptions(60):
            expressions[subscription.subscription_id] = subscription.expression
            index.add(subscription.subscription_id, subscription.expression)
        maximal = sorted(index.maximal_ids())
        for first in maximal:
            for second in maximal:
                if first != second:
                    assert not covers(
                        expressions[first], expressions[second]
                    ), (first, second)

    def test_recorded_coverers_actually_cover(self):
        scenario = NetworkChurnScenario(seed=9)
        index = CoveringIndex()
        expressions = {}
        for subscription in scenario.subscriptions(60):
            expressions[subscription.subscription_id] = subscription.expression
            index.add(subscription.subscription_id, subscription.expression)
        for covered, coverer in index.covered_mapping().items():
            # re-rooted chains rest on semantic transitivity; verify on
            # sampled events rather than the (incomplete) layered test
            for _ in range(150):
                event = scenario.event()
                if expressions[covered].matches(event):
                    assert expressions[coverer].matches(event)


class TestPrefilters:
    def test_prefilters_prune_band_corpus(self):
        index = CoveringIndex()
        for i in range(40):
            index.add(i, parse(f"price between [{i * 10}, {i * 10 + 4}]"))
        # disjoint bands: the interval prefilter resolves every pair
        assert index.covers_calls == 0
        assert index.interval_pruned > 0

    def test_signature_prefilter_prunes_disjoint_attributes(self):
        index = CoveringIndex()
        index.add(1, parse("a > 0 and b > 0"))
        index.add(2, parse("c > 0"))
        assert index.maximal_ids() == {1, 2}
        assert index.covers_calls == 0
        assert index.signature_pruned > 0

    def test_prefiltered_poset_matches_pairwise_oracle(self):
        # the prefilters are necessary conditions: the maximal set must
        # equal the one a full pairwise scan (prune_covered contract)
        # would produce
        scenario = NetworkChurnScenario(seed=3)
        expressions = {
            s.subscription_id: s.expression
            for s in scenario.subscriptions(50)
        }
        maximal, covered_by = prune_covered(expressions)
        # oracle: a member is coverable iff some *other* member covers it
        for identifier, expression in expressions.items():
            coverable = any(
                covers(expressions[other], expression)
                for other in expressions
                if other != identifier
                and not covers(expression, expressions[other])
            )
            if identifier in maximal:
                # maximal members may only be covered by equivalents
                # (mutual covering keeps exactly one representative)
                equivalents = any(
                    covers(expressions[other], expression)
                    and covers(expression, expressions[other])
                    for other in expressions
                    if other != identifier
                )
                assert not coverable or equivalents, identifier
            else:
                assert identifier in covered_by


class TestDnfCache:
    def test_one_derivation_per_expression(self):
        clear_dnf_cache()
        expression = parse("(a = 1 or b = 2) and (c > 3 or d < 4)")
        baseline = dnf_cache_stats()["derivations"]
        first = canonical_dnf(expression)
        for _ in range(5):
            assert canonical_dnf(expression) is first
        # an equal-but-distinct AST object hits the same entry
        assert canonical_dnf(
            parse("(a = 1 or b = 2) and (c > 3 or d < 4)")
        ) is first
        assert dnf_cache_stats()["derivations"] == baseline + 1
        assert dnf_cache_stats()["hits"] >= 6

    def test_engines_and_covering_share_one_derivation(self):
        from repro import CountingEngine, MatchingTreeEngine
        from repro.subscriptions import Subscription

        clear_dnf_cache()
        subscription = Subscription.from_text(
            "(x = 1 or y = 2) and (z > 3 or w < 4)"
        )
        baseline = dnf_cache_stats()["derivations"]
        counting = CountingEngine()
        tree = MatchingTreeEngine()
        counting.register(subscription)
        tree.register(subscription)
        assert covers(subscription.expression, subscription.expression)
        index = CoveringIndex()
        index.add(subscription.subscription_id, subscription.expression)
        assert dnf_cache_stats()["derivations"] == baseline + 1
        counting.close()
        tree.close()

    def test_cap_violation_still_raises(self):
        clear_dnf_cache()
        expression = parse(
            "(a = 1 or b = 2) and (c = 3 or d = 4) and (e = 5 or f = 6)"
        )
        dnf = canonical_dnf(expression)  # 8 clauses, cached
        assert len(dnf) == 8
        with pytest.raises(DnfExplosionError):
            canonical_dnf(expression, max_clauses=4)

    def test_explosion_then_larger_cap_retries(self):
        clear_dnf_cache()
        expression = parse(
            "(a = 1 or b = 2) and (c = 3 or d = 4) and (e = 5 or f = 6)"
        )
        with pytest.raises(DnfExplosionError):
            canonical_dnf(expression, max_clauses=4)
        assert len(canonical_dnf(expression, max_clauses=100)) == 8
