"""Unit and property tests for the from-scratch B+ tree."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexes import BPlusTree


class TestBasics:
    def test_empty_tree(self):
        tree = BPlusTree(order=4)
        assert len(tree) == 0
        assert tree.entry_count == 0
        assert tree.get(5) == frozenset()
        assert 5 not in tree

    def test_order_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_insert_and_get(self):
        tree = BPlusTree(order=4)
        tree.insert(10, 1)
        tree.insert(10, 2)
        assert tree.get(10) == {1, 2}
        assert len(tree) == 1
        assert tree.entry_count == 2

    def test_duplicate_pair_not_double_counted(self):
        tree = BPlusTree(order=4)
        tree.insert(10, 1)
        tree.insert(10, 1)
        assert tree.entry_count == 1

    def test_items_sorted(self):
        tree = BPlusTree(order=4)
        for key in (5, 1, 9, 3, 7):
            tree.insert(key, key)
        assert [k for k, _ in tree.items()] == [1, 3, 5, 7, 9]
        assert list(tree.keys()) == [1, 3, 5, 7, 9]

    def test_height_grows_with_splits(self):
        tree = BPlusTree(order=4)
        assert tree.height() == 1
        for key in range(50):
            tree.insert(key, key)
        assert tree.height() >= 3
        tree.check_invariants()

    def test_string_keys(self):
        tree = BPlusTree(order=4)
        for word in ("pear", "apple", "fig"):
            tree.insert(word, 1)
        assert list(tree.keys()) == ["apple", "fig", "pear"]


class TestRangeQueries:
    @pytest.fixture
    def tree(self):
        tree = BPlusTree(order=4)
        for key in range(0, 100, 10):
            tree.insert(key, key)
        return tree

    def test_closed_range(self, tree):
        assert list(tree.range_search(20, 50)) == [20, 30, 40, 50]

    def test_open_low(self, tree):
        assert list(tree.range_search(20, 50, include_low=False)) == [30, 40, 50]

    def test_open_high(self, tree):
        assert list(tree.range_search(20, 50, include_high=False)) == [20, 30, 40]

    def test_unbounded_low(self, tree):
        assert list(tree.range_search(high=20)) == [0, 10, 20]

    def test_unbounded_high(self, tree):
        assert list(tree.range_search(low=70)) == [70, 80, 90]

    def test_fully_unbounded(self, tree):
        assert list(tree.range_search()) == list(range(0, 100, 10))

    def test_empty_range(self, tree):
        assert list(tree.range_search(41, 49)) == []

    def test_range_between_keys(self, tree):
        assert list(tree.range_search(15, 35)) == [20, 30]

    def test_range_ids_streams_bucket_members(self, tree):
        tree.insert(20, 999)
        assert sorted(tree.range_ids(20, 30)) == [20, 30, 999]


class TestDeletion:
    def test_remove_id_keeps_key_until_empty(self):
        tree = BPlusTree(order=4)
        tree.insert(5, 1)
        tree.insert(5, 2)
        assert tree.remove(5, 1)
        assert 5 in tree
        assert tree.remove(5, 2)
        assert 5 not in tree
        assert len(tree) == 0

    def test_remove_missing_returns_false(self):
        tree = BPlusTree(order=4)
        tree.insert(5, 1)
        assert not tree.remove(5, 9)
        assert not tree.remove(6, 1)

    def test_discard_key_drops_whole_bucket(self):
        tree = BPlusTree(order=4)
        tree.insert(5, 1)
        tree.insert(5, 2)
        assert tree.discard_key(5)
        assert tree.entry_count == 0
        assert not tree.discard_key(5)

    def test_mass_delete_rebalances(self):
        tree = BPlusTree(order=4)
        for key in range(200):
            tree.insert(key, key)
        for key in range(0, 200, 2):
            assert tree.remove(key, key)
        tree.check_invariants()
        assert list(tree.keys()) == list(range(1, 200, 2))

    def test_delete_everything_returns_to_empty(self):
        tree = BPlusTree(order=5)
        for key in range(100):
            tree.insert(key, key)
        for key in range(100):
            assert tree.remove(key, key)
        assert len(tree) == 0
        assert tree.height() == 1
        tree.check_invariants()

    def test_descending_deletion(self):
        tree = BPlusTree(order=4)
        for key in range(64):
            tree.insert(key, key)
        for key in reversed(range(64)):
            tree.remove(key, key)
            tree.check_invariants()
        assert len(tree) == 0


@st.composite
def operations(draw):
    """A sequence of (op, key, id) actions."""
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "remove", "discard"]),
                st.integers(0, 40),
                st.integers(0, 5),
            ),
            max_size=200,
        )
    )


class TestAgainstReferenceModel:
    @given(operations(), st.integers(3, 8))
    @settings(max_examples=120, deadline=None)
    def test_matches_dict_of_sets(self, ops, order):
        tree = BPlusTree(order=order)
        reference: dict[int, set[int]] = {}
        for op, key, identifier in ops:
            if op == "insert":
                tree.insert(key, identifier)
                reference.setdefault(key, set()).add(identifier)
            elif op == "remove":
                expected = key in reference and identifier in reference[key]
                assert tree.remove(key, identifier) == expected
                if expected:
                    reference[key].discard(identifier)
                    if not reference[key]:
                        del reference[key]
            else:
                expected = key in reference
                assert tree.discard_key(key) == expected
                reference.pop(key, None)
        tree.check_invariants()
        assert {k: set(b) for k, b in tree.items()} == reference
        assert len(tree) == len(reference)
        assert tree.entry_count == sum(len(b) for b in reference.values())

    @given(operations(), st.integers(3, 8),
           st.integers(0, 40), st.integers(0, 40))
    @settings(max_examples=60, deadline=None)
    def test_range_queries_match_reference(self, ops, order, low, high):
        if low > high:
            low, high = high, low
        tree = BPlusTree(order=order)
        reference: dict[int, set[int]] = {}
        for op, key, identifier in ops:
            if op == "insert":
                tree.insert(key, identifier)
                reference.setdefault(key, set()).add(identifier)
            elif op == "remove" and key in reference and identifier in reference[key]:
                tree.remove(key, identifier)
                reference[key].discard(identifier)
                if not reference[key]:
                    del reference[key]
        got = list(tree.range_search(low, high))
        expected = sorted(k for k in reference if low <= k <= high)
        assert got == expected
