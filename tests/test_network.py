"""Unit tests for the broker overlay network and its routing."""

from __future__ import annotations

import pytest

from repro.broker import Broker, BrokerNetwork, TopologyError
from repro import CountingEngine, NonCanonicalEngine
from repro.events import Event


def linear_network(*names):
    """brokers connected in a chain: names[0] - names[1] - ..."""
    network = BrokerNetwork()
    for name in names:
        network.add_broker(Broker(name))
    for left, right in zip(names, names[1:]):
        network.connect(left, right)
    return network


class TestTopology:
    def test_add_and_lookup(self):
        network = BrokerNetwork()
        broker = network.add_broker(Broker("a"))
        assert network.broker("a") is broker
        assert len(network) == 1

    def test_duplicate_broker_rejected(self):
        network = BrokerNetwork()
        network.add_broker(Broker("a"))
        with pytest.raises(TopologyError):
            network.add_broker(Broker("a"))

    def test_unknown_broker_rejected(self):
        network = BrokerNetwork()
        network.add_broker(Broker("a"))
        with pytest.raises(TopologyError):
            network.connect("a", "ghost")
        with pytest.raises(TopologyError):
            network.broker("ghost")

    def test_self_link_rejected(self):
        network = BrokerNetwork()
        network.add_broker(Broker("a"))
        with pytest.raises(TopologyError):
            network.connect("a", "a")

    def test_cycle_rejected(self):
        network = linear_network("a", "b", "c")
        with pytest.raises(TopologyError, match="cycle"):
            network.connect("a", "c")

    def test_neighbors(self):
        network = linear_network("a", "b", "c")
        assert network.neighbors("b") == {"a", "c"}
        assert network.neighbors("a") == {"b"}

    def test_brokers_listing(self):
        network = linear_network("a", "b")
        assert {b.name for b in network.brokers()} == {"a", "b"}


class TestSubscriptionFlooding:
    def test_subscription_reaches_every_broker(self):
        network = linear_network("a", "b", "c", "d")
        network.subscribe("a", "x = 1", subscriber="alice")
        for name in "abcd":
            assert network.broker(name).subscription_count == 1
        assert network.stats.hops_visited == 3
        assert network.stats.registrations_forwarded == 3

    def test_subscription_floods_is_a_deprecated_alias(self):
        network = linear_network("a", "b", "c")
        network.subscribe("a", "x = 1")
        with pytest.warns(DeprecationWarning, match="hops_visited"):
            assert network.stats.subscription_floods == 2
        assert network.stats.subscription_floods == network.stats.hops_visited

    def test_unsubscribe_cleans_everywhere(self):
        network = linear_network("a", "b", "c")
        s = network.subscribe("a", "x = 1")
        network.unsubscribe(s.subscription_id)
        for name in "abc":
            assert network.broker(name).subscription_count == 0
        with pytest.raises(TopologyError):
            network.unsubscribe(s.subscription_id)


class TestEventRouting:
    def test_delivery_at_remote_home_broker(self):
        network = linear_network("a", "b", "c")
        received = []
        network.subscribe("c", "x = 1", subscriber="carol",
                          sink=received.append)
        deliveries = network.publish("a", Event({"x": 1}))
        assert len(deliveries) == 1
        assert deliveries[0].broker == "c"
        assert deliveries[0].subscriber == "carol"
        assert received[0].subscription_id == deliveries[0].subscription_id

    def test_local_delivery_without_forwarding(self):
        network = linear_network("a", "b")
        network.subscribe("a", "x = 1")
        hops_before = network.stats.broker_hops
        deliveries = network.publish("a", Event({"x": 1}))
        assert len(deliveries) == 1
        assert network.stats.broker_hops == hops_before

    def test_no_match_no_hops(self):
        network = linear_network("a", "b", "c")
        network.subscribe("c", "x = 1")
        hops_before = network.stats.broker_hops
        assert network.publish("a", Event({"x": 2})) == []
        assert network.stats.broker_hops == hops_before

    def test_forwarding_pruned_to_matching_branch(self):
        # star: hub with three leaves; event should travel only toward
        # the leaf whose subscription matches
        network = BrokerNetwork()
        for name in ("hub", "l1", "l2", "l3"):
            network.add_broker(Broker(name))
        for leaf in ("l1", "l2", "l3"):
            network.connect("hub", leaf)
        network.subscribe("l1", "x = 1")
        network.subscribe("l2", "x = 2")
        network.subscribe("l3", "x = 3")
        hops_before = network.stats.broker_hops
        deliveries = network.publish("hub", Event({"x": 2}))
        assert [d.broker for d in deliveries] == ["l2"]
        assert network.stats.broker_hops == hops_before + 1

    def test_multiple_matches_across_branches(self):
        network = BrokerNetwork()
        for name in ("hub", "l1", "l2"):
            network.add_broker(Broker(name))
        network.connect("hub", "l1")
        network.connect("hub", "l2")
        network.subscribe("l1", "x >= 1", subscriber="one")
        network.subscribe("l2", "x >= 2", subscriber="two")
        deliveries = network.publish("hub", Event({"x": 5}))
        assert {d.subscriber for d in deliveries} == {"one", "two"}

    def test_publish_at_leaf_travels_upward(self):
        network = linear_network("a", "b", "c")
        network.subscribe("a", "x = 1", subscriber="alice")
        deliveries = network.publish("c", Event({"x": 1}))
        assert [d.subscriber for d in deliveries] == ["alice"]
        assert network.stats.broker_hops >= 2

    def test_mixed_engines_across_brokers(self):
        network = BrokerNetwork()
        network.add_broker(Broker("nc", engine=NonCanonicalEngine()))
        network.add_broker(Broker("cnt", engine=CountingEngine()))
        network.connect("nc", "cnt")
        network.subscribe("cnt", "x = 1 or y = 2", subscriber="c-client")
        deliveries = network.publish("nc", Event({"y": 2}))
        assert [d.subscriber for d in deliveries] == ["c-client"]

    def test_arbitrary_boolean_subscription_over_network(self):
        network = linear_network("a", "b", "c")
        network.subscribe(
            "c",
            "(price > 10 or urgent = true) and not halted = true",
            subscriber="carol",
        )
        assert network.publish("a", Event({"price": 12}))
        assert not network.publish("a", Event({"price": 12, "halted": True}))
        assert network.publish("b", Event({"urgent": True}))


class TestNetworkAccounting:
    def test_memory_report_covers_all_brokers(self):
        network = linear_network("a", "b")
        network.subscribe("a", "x = 1")
        report = network.memory_report()
        assert set(report) == {"a", "b"}
        # flooding registers everywhere: both brokers hold the tree
        assert report["a"]["subscription_trees"] > 0
        assert report["b"]["subscription_trees"] > 0

    def test_stats_aggregation(self):
        network = linear_network("a", "b")
        network.subscribe("b", "x = 1")
        network.publish("a", Event({"x": 1}))
        stats = network.stats
        assert stats.events_published == 1
        assert stats.matches_computed == 2
        assert stats.notifications_delivered == 1
        assert stats.hops_visited == 1
        assert stats.registrations_forwarded == 1
