"""Tests for subscription persistence (save/restore broker state)."""

from __future__ import annotations

import random

import pytest

from repro.broker import Broker
from repro.broker.persistence import (
    PersistenceError,
    deserialize_subscription,
    dump_subscriptions,
    load_subscriptions,
    restore_broker,
    save_broker,
    serialize_subscription,
)
from repro.subscriptions import Subscription
from repro.workloads import GeneralSubscriptionGenerator, StockScenario


class TestRoundtrip:
    def test_single_subscription(self):
        original = Subscription.from_text(
            "(price > 10 or urgent = true) and sym prefix 'AC'",
            subscriber="alice",
        )
        restored = deserialize_subscription(serialize_subscription(original))
        assert restored.expression == original.expression
        assert restored.subscriber == "alice"
        assert restored.subscription_id == original.subscription_id

    def test_all_operator_shapes_roundtrip(self):
        texts = [
            "a = 1", "a != 1", "a < 1.5", "a <= -2", "a > 3", "a >= 4",
            "a between [1, 5]", "a in {1, 2}", "s prefix 'x'",
            "s suffix 'y'", "s contains 'z'", "exists(a)",
            "b = true and not c = false",
        ]
        for text in texts:
            original = Subscription.from_text(text)
            restored = deserialize_subscription(serialize_subscription(original))
            assert restored.expression == original.expression, text

    def test_file_roundtrip(self, tmp_path):
        generator = GeneralSubscriptionGenerator(seed=6)
        originals = generator.subscriptions(40)
        path = tmp_path / "subs.jsonl"
        assert dump_subscriptions(originals, path) == 40
        restored = load_subscriptions(path)
        assert len(restored) == 40
        for original, loaded in zip(originals, restored):
            assert loaded.expression == original.expression
            assert loaded.subscription_id == original.subscription_id

    def test_none_subscriber_roundtrip(self):
        original = Subscription.from_text("a = 1")
        assert deserialize_subscription(
            serialize_subscription(original)
        ).subscriber is None


class TestBrokerSaveRestore:
    def test_restored_broker_matches_identically(self, tmp_path):
        scenario = StockScenario(seed=8)
        source = Broker("source")
        for index in range(25):
            source.subscribe(scenario.subscription(f"user{index}"))
        path = tmp_path / "state.jsonl"
        assert save_broker(source, path) == 25
        target = Broker("target")
        assert restore_broker(target, path) == 25
        rng = random.Random(1)
        for _ in range(60):
            event = scenario.event()
            source_ids = {n.subscription_id for n in source.publish(event)}
            target_ids = {n.subscription_id for n in target.publish(event)}
            assert source_ids == target_ids

    def test_save_skips_nothing(self, tmp_path):
        broker = Broker("b")
        broker.subscribe("a = 1", subscriber="x")
        sub = broker.subscribe("b = 2", subscriber="y")
        broker.unsubscribe(sub.subscription_id)
        path = tmp_path / "state.jsonl"
        assert save_broker(broker, path) == 1


class TestMalformedInput:
    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            "[1, 2]",
            '{"v": 99, "id": 1, "expression": "a = 1"}',
            '{"v": 1, "expression": "a = 1"}',
            '{"v": 1, "id": 1}',
            '{"v": 1, "id": 0, "expression": "a = 1"}',
            '{"v": 1, "id": "x", "expression": "a = 1"}',
            '{"v": 1, "id": 1, "expression": "a >"}',
        ],
    )
    def test_bad_lines_rejected(self, line):
        with pytest.raises(PersistenceError):
            deserialize_subscription(line)

    def test_load_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            serialize_subscription(Subscription.from_text("a = 1"))
            + "\nbroken\n"
        )
        with pytest.raises(PersistenceError, match="line 2"):
            load_subscriptions(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text(
            "\n" + serialize_subscription(Subscription.from_text("a = 1")) + "\n\n"
        )
        assert len(load_subscriptions(path)) == 1
