"""Unit and property tests for expression simplification."""

from __future__ import annotations

from hypothesis import given

from repro.predicates import Operator, Predicate
from repro.subscriptions import (
    And,
    Not,
    Or,
    is_conjunctive,
    is_dnf_shaped,
    leaf,
    parse,
    simplify,
)

from helpers import random_events, random_expressions

P1 = Predicate("a", Operator.GT, 10)
P2 = Predicate("b", Operator.EQ, 1)
P3 = Predicate("c", Operator.LT, 0)


class TestRules:
    def test_double_negation(self):
        assert simplify(Not(Not(leaf(P1)))) == leaf(P1)

    def test_quadruple_negation(self):
        assert simplify(Not(Not(Not(Not(leaf(P1)))))) == leaf(P1)

    def test_idempotence_and(self):
        assert simplify(And((leaf(P1), leaf(P1)))) == leaf(P1)

    def test_idempotence_or(self):
        assert simplify(Or((leaf(P1), leaf(P1)))) == leaf(P1)

    def test_idempotence_keeps_distinct(self):
        result = simplify(And((leaf(P1), leaf(P2), leaf(P1))))
        assert isinstance(result, And)
        assert len(result.operands) == 2

    def test_absorption_and_over_or(self):
        # a AND (a OR b) == a
        assert simplify(And((leaf(P1), Or((leaf(P1), leaf(P2)))))) == leaf(P1)

    def test_absorption_or_over_and(self):
        # a OR (a AND b) == a
        assert simplify(Or((leaf(P1), And((leaf(P1), leaf(P2)))))) == leaf(P1)

    def test_absorption_nested_in_larger_expression(self):
        expression = And((
            leaf(P3),
            Or((leaf(P1), And((leaf(P1), leaf(P2))))),
        ))
        result = simplify(expression)
        assert result == And((leaf(P3), leaf(P1)))

    def test_flattening_applied(self):
        result = simplify(And((leaf(P1), And((leaf(P2), leaf(P3))))))
        assert isinstance(result, And)
        assert len(result.operands) == 3

    def test_already_simple_unchanged(self):
        expression = parse("a > 10 and b = 1")
        assert simplify(expression) == expression


class TestProperties:
    @given(random_expressions(), random_events())
    def test_simplify_preserves_semantics(self, expression, event):
        assert simplify(expression).matches(event) == expression.matches(event)

    @given(random_expressions())
    def test_simplify_never_grows(self, expression):
        assert simplify(expression).size() <= expression.size()

    @given(random_expressions())
    def test_simplify_is_idempotent(self, expression):
        once = simplify(expression)
        assert simplify(once) == once

    @given(random_expressions())
    def test_simplify_keeps_predicate_subset(self, expression):
        assert simplify(expression).unique_predicates() <= (
            expression.unique_predicates()
        )


class TestShapePredicates:
    def test_single_leaf_is_conjunctive(self):
        assert is_conjunctive(leaf(P1))

    def test_and_of_leaves_is_conjunctive(self):
        assert is_conjunctive(parse("a = 1 and b = 2"))

    def test_or_is_not_conjunctive(self):
        assert not is_conjunctive(parse("a = 1 or b = 2"))

    def test_negation_is_not_conjunctive(self):
        assert not is_conjunctive(Not(leaf(P1)))

    def test_nested_and_is_conjunctive_after_flatten(self):
        assert is_conjunctive(And((leaf(P1), And((leaf(P2), leaf(P3))))))

    def test_dnf_shape_detection(self):
        assert is_dnf_shaped(parse("(a = 1 and b = 2) or c = 3"))
        assert is_dnf_shaped(parse("a = 1 and b = 2"))
        assert not is_dnf_shaped(parse("(a = 1 or b = 2) and c = 3"))
