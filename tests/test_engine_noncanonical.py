"""Unit tests for the non-canonical engine (the paper's contribution)."""

from __future__ import annotations

import pytest

from repro import NonCanonicalEngine, UnknownSubscriptionError
from repro.events import Event
from repro.subscriptions import Subscription, parse
from repro.workloads import PaperSubscriptionGenerator


def sub(text, subscriber=None):
    return Subscription.from_text(text, subscriber=subscriber)


class TestRegistration:
    def test_register_and_match(self):
        engine = NonCanonicalEngine()
        s = sub("a > 10 and b = 1")
        engine.register(s)
        assert engine.match(Event({"a": 11, "b": 1})) == {s.subscription_id}
        assert engine.match(Event({"a": 11, "b": 2})) == set()

    def test_subscription_count(self):
        engine = NonCanonicalEngine()
        engine.register(sub("a = 1"))
        engine.register(sub("b = 2"))
        assert engine.subscription_count == 2
        assert engine.stored_subscription_count == 2  # no transformation

    def test_duplicate_id_rejected(self):
        engine = NonCanonicalEngine()
        s = sub("a = 1")
        engine.register(s)
        with pytest.raises(ValueError, match="already registered"):
            engine.register(s)

    def test_arbitrary_boolean_accepted(self):
        engine = NonCanonicalEngine()
        s = sub("not (a = 1 or (b = 2 and not c = 3))")
        engine.register(s)
        assert engine.match(Event({"c": 3})) == {s.subscription_id}
        assert engine.match(Event({"a": 1})) == set()

    def test_shared_predicates_across_subscriptions(self):
        engine = NonCanonicalEngine()
        first = sub("a = 1 and b = 2")
        second = sub("a = 1 or c = 3")
        engine.register(first)
        engine.register(second)
        assert len(engine.registry) == 3  # a=1 deduplicated
        matched = engine.match(Event({"a": 1, "b": 2}))
        assert matched == {first.subscription_id, second.subscription_id}

    def test_subscriber_lookup(self):
        engine = NonCanonicalEngine()
        s = sub("a = 1", subscriber="alice")
        engine.register(s)
        assert engine.subscriber_of(s.subscription_id) == "alice"
        with pytest.raises(UnknownSubscriptionError):
            engine.subscriber_of(99999)

    def test_invalid_codec_and_evaluation_rejected(self):
        with pytest.raises(ValueError):
            NonCanonicalEngine(codec="gzip")
        with pytest.raises(ValueError):
            NonCanonicalEngine(evaluation="jit")


class TestMatchFulfilled:
    def test_candidates_limited_to_referenced_subscriptions(self):
        engine = NonCanonicalEngine()
        first = sub("a = 1 and b = 2")
        second = sub("c = 3")
        engine.register(first)
        engine.register(second)
        pid_a = engine.registry.identifier(
            next(iter(parse("a = 1").unique_predicates()))
        )
        assert engine.candidates_for({pid_a}) == {first.subscription_id}

    def test_match_fulfilled_empty(self):
        engine = NonCanonicalEngine()
        engine.register(sub("a = 1"))
        assert engine.match_fulfilled(set()) == set()

    def test_unknown_predicate_ids_ignored(self):
        engine = NonCanonicalEngine()
        s = sub("a = 1")
        engine.register(s)
        assert engine.match_fulfilled({9999}) == set()


class TestUnsubscription:
    def test_unregister_removes_matches(self):
        engine = NonCanonicalEngine()
        s = sub("a = 1")
        engine.register(s)
        engine.unregister(s.subscription_id)
        assert engine.subscription_count == 0
        assert engine.match(Event({"a": 1})) == set()

    def test_unregister_unknown_raises(self):
        with pytest.raises(UnknownSubscriptionError):
            NonCanonicalEngine().unregister(12345)

    def test_unregister_retires_exclusive_predicates(self):
        engine = NonCanonicalEngine()
        s = sub("a = 1 and b = 2")
        engine.register(s)
        engine.unregister(s.subscription_id)
        assert len(engine.registry) == 0
        assert len(engine.indexes) == 0

    def test_unregister_keeps_shared_predicates(self):
        engine = NonCanonicalEngine()
        first = sub("a = 1 and b = 2")
        second = sub("a = 1")
        engine.register(first)
        engine.register(second)
        engine.unregister(first.subscription_id)
        assert len(engine.registry) == 1
        assert engine.match(Event({"a": 1})) == {second.subscription_id}

    def test_repeated_predicate_in_one_subscription(self):
        engine = NonCanonicalEngine()
        s = sub("a = 1 or (a = 1 and b = 2)")
        engine.register(s)
        engine.unregister(s.subscription_id)
        assert len(engine.registry) == 0

    def test_arena_compaction_after_heavy_churn(self):
        engine = NonCanonicalEngine()
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=6, seed=3
        )
        subscriptions = generator.subscriptions(60)
        for s in subscriptions:
            engine.register(s)
        for s in subscriptions[:50]:
            engine.unregister(s.subscription_id)
        survivor_ids = {s.subscription_id for s in subscriptions[50:]}
        # compaction must have relocated without breaking matching
        for s in subscriptions[50:]:
            fulfilled = {
                engine.registry.identifier(p)
                for p in s.expression.unique_predicates()
            }
            assert s.subscription_id in engine.match_fulfilled(fulfilled)
        assert engine.subscription_count == len(survivor_ids)


class TestVariants:
    @pytest.mark.parametrize("codec", ["basic", "varint"])
    @pytest.mark.parametrize("evaluation", ["compiled", "encoded"])
    def test_all_modes_agree(self, codec, evaluation):
        engine = NonCanonicalEngine(codec=codec, evaluation=evaluation)
        s = sub("(a > 10 or a <= 5 or b = 1) and (c <= 20 or c = 30 or d = 5)")
        engine.register(s)
        assert engine.match(Event({"a": 11, "c": 15})) == {s.subscription_id}
        assert engine.match(Event({"a": 7, "c": 15})) == set()

    def test_selectivity_reordering_preserves_matching(self):
        plain = NonCanonicalEngine()
        s = sub("(a = 1 or b = 2) and (c = 3 or d = 4)")
        plain.register(s)
        pids = {
            str(p): plain.registry.identifier(p)
            for p in s.expression.unique_predicates()
        }
        selectivity = {pid: 0.01 * pid for pid in pids.values()}
        reordering = NonCanonicalEngine(selectivity=selectivity)
        reordering.register(
            Subscription(expression=s.expression, subscription_id=s.subscription_id + 10**6)
        )
        for event in (
            Event({"a": 1, "c": 3}),
            Event({"b": 2, "d": 4}),
            Event({"a": 1, "b": 2}),
        ):
            assert (plain.match(event) == {s.subscription_id}) == bool(
                reordering.match(event)
            )


class TestMemoryAccounting:
    def test_breakdown_structure(self):
        engine = NonCanonicalEngine()
        engine.register(sub("a = 1 and b = 2"))
        breakdown = engine.memory_breakdown()
        assert set(breakdown) == {
            "subscription_trees",
            "association_table",
            "location_table",
        }
        assert all(value >= 0 for value in breakdown.values())
        assert engine.memory_bytes() == sum(breakdown.values())

    def test_tree_bytes_match_paper_encoding(self):
        engine = NonCanonicalEngine()
        engine.register(
            sub("(a > 10 or a <= 5 or b = 1) and (c <= 20 or c = 30 or d = 5)")
        )
        # root (2 + 2*2) + two ORs (2 + 3*2 each) + 6 leaves * 4
        assert engine.memory_breakdown()["subscription_trees"] == 46

    def test_memory_shrinks_on_unsubscription(self):
        engine = NonCanonicalEngine()
        s1, s2 = sub("a = 1 and b = 2"), sub("c = 3 and d = 4")
        engine.register(s1)
        engine.register(s2)
        before = engine.memory_bytes()
        engine.unregister(s1.subscription_id)
        assert engine.memory_bytes() < before
