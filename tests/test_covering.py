"""Unit and soundness-property tests for subscription covering."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predicates import Operator, Predicate
from repro.subscriptions import parse
from repro.subscriptions.covering import (
    clause_covers,
    covers,
    predicate_covers,
    prune_covered,
)
from repro.subscriptions.normal_forms import to_dnf

from helpers import random_events, random_expressions
from helpers import event_strategy, predicate_strategy


def P(attribute, operator, value=None):
    return Predicate(attribute, operator, value)


class TestPredicateCovers:
    @pytest.mark.parametrize(
        "coverer, covered",
        [
            (P("a", Operator.GE, 5), P("a", Operator.GT, 7)),
            (P("a", Operator.GE, 5), P("a", Operator.GE, 5)),
            (P("a", Operator.GT, 5), P("a", Operator.GT, 5)),
            (P("a", Operator.GT, 5), P("a", Operator.GE, 6)),
            (P("a", Operator.LE, 10), P("a", Operator.LT, 10)),
            (P("a", Operator.LT, 10), P("a", Operator.EQ, 3)),
            (P("a", Operator.GE, 0), P("a", Operator.BETWEEN, (1, 5))),
            (P("a", Operator.BETWEEN, (0, 10)), P("a", Operator.BETWEEN, (2, 8))),
            (P("a", Operator.BETWEEN, (0, 10)), P("a", Operator.EQ, 10)),
            (P("a", Operator.IN, [1, 2, 3]), P("a", Operator.EQ, 2)),
            (P("a", Operator.IN, [1, 2, 3]), P("a", Operator.IN, [1, 3])),
            (P("a", Operator.NE, 9), P("a", Operator.LT, 9)),
            (P("a", Operator.NE, 9), P("a", Operator.EQ, 8)),
            (P("a", Operator.NE, 9), P("a", Operator.IN, [1, 2])),
            (P("a", Operator.EXISTS), P("a", Operator.EQ, 1)),
            (P("a", Operator.EXISTS), P("a", Operator.PREFIX, "x")),
            (P("s", Operator.PREFIX, "ab"), P("s", Operator.PREFIX, "abc")),
            (P("s", Operator.PREFIX, "ab"), P("s", Operator.EQ, "abz")),
            (P("s", Operator.SUFFIX, "yz"), P("s", Operator.SUFFIX, "xyz")),
            (P("s", Operator.CONTAINS, "b"), P("s", Operator.CONTAINS, "abc")),
            (P("s", Operator.CONTAINS, "b"), P("s", Operator.PREFIX, "ab")),
            (P("s", Operator.CONTAINS, "b"), P("s", Operator.EQ, "abc")),
        ],
    )
    def test_positive_cases(self, coverer, covered):
        assert predicate_covers(coverer, covered)

    @pytest.mark.parametrize(
        "coverer, covered",
        [
            (P("a", Operator.GT, 7), P("a", Operator.GE, 5)),
            (P("a", Operator.GE, 5), P("a", Operator.LT, 7)),
            (P("b", Operator.GE, 5), P("a", Operator.GE, 7)),
            (P("a", Operator.BETWEEN, (2, 8)), P("a", Operator.BETWEEN, (0, 10))),
            (P("a", Operator.EQ, 2), P("a", Operator.IN, [1, 2])),
            (P("a", Operator.NE, 5), P("a", Operator.LT, 7)),
            (P("a", Operator.NE, 1), P("a", Operator.EQ, True)),
            (P("s", Operator.PREFIX, "abc"), P("s", Operator.PREFIX, "ab")),
            (P("a", Operator.EQ, 1), P("a", Operator.EXISTS)),
        ],
    )
    def test_negative_cases(self, coverer, covered):
        assert not predicate_covers(coverer, covered)

    @given(predicate_strategy(), predicate_strategy(), event_strategy())
    @settings(max_examples=300, deadline=None)
    def test_soundness_against_evaluation(self, coverer, covered, event):
        """If predicate_covers says yes, implication must hold on every
        event — the core property the routing optimization relies on."""
        if predicate_covers(coverer, covered) and covered.matches(event):
            assert coverer.matches(event), (coverer, covered, dict(event))


class TestClauseAndExpressionCovers:
    def test_conjunction_weakening(self):
        wide = parse("a > 0")
        narrow = parse("a > 5 and b = 1")
        assert covers(wide, narrow)
        assert not covers(narrow, wide)

    def test_disjunction_widening(self):
        wide = parse("a = 1 or b = 2 or c = 3")
        narrow = parse("a = 1 or b = 2")
        assert covers(wide, narrow)
        assert not covers(narrow, wide)

    def test_mixed_shape(self):
        wide = parse("(price >= 0 or urgent = true) and volume > 10")
        narrow = parse("price between [5, 10] and volume > 20")
        assert covers(wide, narrow)

    def test_identical_expressions_cover(self):
        expression = parse("(a = 1 or b = 2) and c < 5")
        assert covers(expression, expression)

    def test_clause_covers_uses_predicate_implication(self):
        coverer = to_dnf(parse("a >= 5")).clauses[0]
        covered = to_dnf(parse("a > 6 and b = 1")).clauses[0]
        assert clause_covers(coverer, covered)
        assert not clause_covers(covered, coverer)

    def test_negative_literal_covering(self):
        narrow = parse("not a between [1, 5]")
        wide = parse("not a between [1, 6]")
        assert covers(narrow, narrow)
        # NOT[1,6] implies NOT[1,5] (the negated interval shrinks) ...
        assert covers(narrow, wide)
        # ... but not the other way around (a = 6 separates them)
        assert not covers(wide, narrow)

    def test_explosion_returns_false(self):
        from repro.workloads import PaperSubscriptionGenerator

        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=10, seed=1
        )
        big = generator.subscription().expression
        assert not covers(big, big, max_clauses=4)

    @given(
        random_expressions(max_leaves=4),
        random_expressions(max_leaves=4),
        random_events(),
    )
    @settings(max_examples=150, deadline=None)
    def test_soundness_on_random_expressions(self, coverer, covered, event):
        if covers(coverer, covered) and covered.matches(event):
            assert coverer.matches(event)

    @given(
        random_expressions(max_leaves=4),
        random_expressions(max_leaves=4),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=200, deadline=None)
    def test_soundness_on_events_targeting_the_covered_side(
        self, coverer, covered, seed
    ):
        """The routing property, stated positively: when ``covers(a, b)``
        every event *generated to match b* must match ``a``.

        Uniform random events rarely satisfy a conjunction, so the plain
        random-event property exercises the implication's vacuous branch
        most of the time; this variant synthesizes witnesses from the
        covered expression's own DNF clauses.
        """
        if not covers(coverer, covered):
            return
        for clause_index, event in enumerate(
            satisfying_events(covered, seed=seed)
        ):
            if covered.matches(event):
                assert coverer.matches(event), (clause_index, dict(event))


def satisfying_events(expression, *, seed: int, per_clause: int = 3):
    """Candidate witnesses for an expression, one batch per DNF clause.

    Each event assigns every positive literal of one clause a value
    satisfying it (negative literals simply omit extra attributes, which
    satisfies ``NOT p`` under absent-attribute semantics unless the
    positive literals pin the attribute — those events fail the
    ``covered.matches`` guard and are skipped by the caller).
    """
    from repro.events import Event

    rng = random.Random(seed)
    try:
        dnf = to_dnf(expression, max_clauses=64)
    except Exception:
        return
    for clause in dnf:
        for _ in range(per_clause):
            attributes = {}
            feasible = True
            for literal in clause:
                if not literal.positive:
                    continue
                predicate = literal.predicate
                value = _satisfying_value(predicate, rng)
                if value is _INFEASIBLE:
                    feasible = False
                    break
                existing = attributes.get(predicate.attribute, _INFEASIBLE)
                if existing is not _INFEASIBLE and existing != value:
                    # conflicting requirements: try the event anyway with
                    # the first value; the matches() guard filters it
                    continue
                attributes[predicate.attribute] = value
            if feasible and attributes:
                yield Event(attributes)


_INFEASIBLE = object()


def _satisfying_value(predicate, rng):
    operator, value = predicate.operator, predicate.value
    if operator is Operator.EQ:
        return value
    if operator is Operator.NE:
        return (value + 1) if isinstance(value, (int, float)) else f"{value}x"
    if operator is Operator.LT:
        return value - 1 if isinstance(value, (int, float)) else _INFEASIBLE
    if operator is Operator.LE:
        return value
    if operator is Operator.GT:
        return value + 1 if isinstance(value, (int, float)) else _INFEASIBLE
    if operator is Operator.GE:
        return value
    if operator is Operator.BETWEEN:
        low, high = value
        if isinstance(low, (int, float)) and not isinstance(low, bool):
            return low + rng.random() * (high - low) if high > low else low
        return low
    if operator is Operator.IN:
        return rng.choice(sorted(value, key=repr))
    if operator is Operator.PREFIX:
        return value + "tail"
    if operator is Operator.SUFFIX:
        return "head" + value
    if operator is Operator.CONTAINS:
        return f"a{value}b"
    if operator is Operator.EXISTS:
        return 1
    return _INFEASIBLE


class TestPruneCovered:
    def test_basic_pruning(self):
        expressions = {
            1: parse("a > 0"),
            2: parse("a > 5"),
            3: parse("a > 5 and b = 1"),
            4: parse("c = 9"),
        }
        maximal, covered_by = prune_covered(expressions)
        assert maximal == {1, 4}
        assert covered_by[2] == 1
        assert covered_by[3] == 1  # chains re-rooted to a maximal coverer

    def test_no_covering(self):
        expressions = {1: parse("a = 1"), 2: parse("b = 2")}
        maximal, covered_by = prune_covered(expressions)
        assert maximal == {1, 2}
        assert covered_by == {}

    def test_equivalent_expressions_keep_one(self):
        expressions = {1: parse("a > 5"), 2: parse("a > 5")}
        maximal, covered_by = prune_covered(expressions)
        assert len(maximal) == 1
        assert len(covered_by) == 1

    def test_roots_are_maximal(self):
        expressions = {
            1: parse("a >= 0"),
            2: parse("a >= 1"),
            3: parse("a >= 2"),
        }
        maximal, covered_by = prune_covered(expressions)
        assert all(value in maximal for value in covered_by.values())
