"""Unit and property tests for phase-1 predicate matching
(repro.indexes.manager)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import event_strategy, predicate_strategy
from repro.events import Event
from repro.indexes import IndexManager
from repro.predicates import Operator, Predicate


class TestDispatch:
    """One predicate of each operator family lands in the right index and
    matches correctly through the manager."""

    @pytest.mark.parametrize(
        "predicate, matching, non_matching",
        [
            (Predicate("x", Operator.EQ, 5), {"x": 5}, {"x": 6}),
            (Predicate("x", Operator.NE, 5), {"x": 6}, {"x": 5}),
            (Predicate("x", Operator.LT, 5), {"x": 4}, {"x": 5}),
            (Predicate("x", Operator.LE, 5), {"x": 5}, {"x": 6}),
            (Predicate("x", Operator.GT, 5), {"x": 6}, {"x": 5}),
            (Predicate("x", Operator.GE, 5), {"x": 5}, {"x": 4}),
            (Predicate("x", Operator.BETWEEN, (1, 3)), {"x": 2}, {"x": 4}),
            (Predicate("x", Operator.IN, [1, 2]), {"x": 2}, {"x": 3}),
            (Predicate("x", Operator.EXISTS), {"x": 0}, {"y": 0}),
            (Predicate("s", Operator.PREFIX, "ab"), {"s": "abc"}, {"s": "ba"}),
            (Predicate("s", Operator.SUFFIX, "bc"), {"s": "abc"}, {"s": "cb"}),
            (Predicate("s", Operator.CONTAINS, "b"), {"s": "abc"}, {"s": "ac"}),
        ],
        ids=lambda value: str(value),
    )
    def test_operator_families(self, predicate, matching, non_matching):
        manager = IndexManager()
        manager.add(predicate, 1)
        assert manager.match(Event(matching)) == {1}
        assert manager.match(Event(non_matching)) == set()

    def test_add_is_idempotent_per_id(self):
        manager = IndexManager()
        p = Predicate("x", Operator.EQ, 5)
        manager.add(p, 1)
        manager.add(p, 1)
        assert len(manager) == 1

    def test_numeric_and_string_domains_separated(self):
        manager = IndexManager()
        manager.add(Predicate("x", Operator.GT, 5), 1)
        manager.add(Predicate("x", Operator.GT, "m"), 2)
        assert manager.match(Event({"x": 10})) == {1}
        assert manager.match(Event({"x": "z"})) == {2}

    def test_bool_event_value_only_hits_hash_family(self):
        manager = IndexManager()
        manager.add(Predicate("x", Operator.EQ, True), 1)
        manager.add(Predicate("x", Operator.GT, 0), 2)
        assert manager.match(Event({"x": True})) == {1}

    def test_event_with_unknown_attributes(self):
        manager = IndexManager()
        manager.add(Predicate("x", Operator.EQ, 5), 1)
        assert manager.match(Event({"other": 5})) == set()

    def test_btree_order_validation(self):
        with pytest.raises(ValueError):
            IndexManager(btree_order=2)


class TestRemoval:
    def test_remove_each_family(self):
        manager = IndexManager()
        predicates = {
            1: Predicate("x", Operator.EQ, 5),
            2: Predicate("x", Operator.NE, 5),
            3: Predicate("x", Operator.GT, 5),
            4: Predicate("x", Operator.BETWEEN, (1, 3)),
            5: Predicate("x", Operator.IN, [1]),
            6: Predicate("x", Operator.EXISTS),
            7: Predicate("s", Operator.PREFIX, "a"),
            8: Predicate("s", Operator.SUFFIX, "a"),
            9: Predicate("s", Operator.CONTAINS, "a"),
        }
        for pid, p in predicates.items():
            manager.add(p, pid)
        for pid in predicates:
            assert manager.remove(pid)
        assert len(manager) == 0
        assert list(manager.attributes()) == []

    def test_remove_unknown_returns_false(self):
        assert not IndexManager().remove(99)

    def test_predicate_lookup(self):
        manager = IndexManager()
        p = Predicate("x", Operator.EQ, 5)
        manager.add(p, 1)
        assert manager.predicate(1) == p
        assert 1 in manager
        assert 2 not in manager


class TestAgainstDirectEvaluation:
    @given(st.lists(predicate_strategy(), max_size=25), event_strategy())
    @settings(max_examples=120, deadline=None)
    def test_match_equals_per_predicate_evaluation(self, predicates, event):
        manager = IndexManager()
        for pid, predicate in enumerate(predicates, start=1):
            manager.add(predicate, pid)
        expected = {
            pid
            for pid, predicate in enumerate(predicates, start=1)
            if predicate.matches(event)
        }
        assert manager.match(event) == expected

    @given(st.lists(predicate_strategy(), min_size=2, max_size=25),
           event_strategy(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_match_after_partial_removal(self, predicates, event, data):
        manager = IndexManager()
        for pid, predicate in enumerate(predicates, start=1):
            manager.add(predicate, pid)
        removed = data.draw(
            st.sets(st.integers(1, len(predicates)), max_size=len(predicates))
        )
        for pid in removed:
            manager.remove(pid)
        expected = {
            pid
            for pid, predicate in enumerate(predicates, start=1)
            if pid not in removed and predicate.matches(event)
        }
        assert manager.match(event) == expected
