"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import (
    BruteForceEngine,
    CountingEngine,
    CountingVariantEngine,
    NonCanonicalEngine,
)
from repro.indexes import IndexManager
from repro.predicates import PredicateRegistry
from repro.workloads import (
    EventGenerator,
    GeneralSubscriptionGenerator,
    PaperSubscriptionGenerator,
)


@pytest.fixture
def registry():
    return PredicateRegistry()


@pytest.fixture
def indexes():
    return IndexManager()


def make_all_engines(*, shared=True, complement_operators=False):
    """One engine of each kind, optionally sharing registry/indexes."""
    if shared:
        registry = PredicateRegistry()
        indexes = IndexManager()
        kwargs = dict(registry=registry, indexes=indexes)
    else:
        kwargs = {}
    return [
        NonCanonicalEngine(**kwargs),
        NonCanonicalEngine(codec="varint", **kwargs),
        NonCanonicalEngine(evaluation="encoded", **kwargs),
        CountingEngine(
            support_unsubscription=True,
            complement_operators=complement_operators,
            **kwargs,
        ),
        CountingVariantEngine(
            complement_operators=complement_operators, **kwargs
        ),
        BruteForceEngine(**kwargs),
    ]


@pytest.fixture
def all_engines():
    return make_all_engines()


@pytest.fixture
def paper_generator():
    return PaperSubscriptionGenerator(predicates_per_subscription=6, seed=7)


@pytest.fixture
def general_generator():
    return GeneralSubscriptionGenerator(seed=7, allow_not=False)


@pytest.fixture
def event_generator():
    return EventGenerator(seed=7)
