"""Shared fixtures for the test suite.

Non-fixture helpers (engine factories, hypothesis strategies) live in
``helpers.py`` — test modules import them absolutely, which keeps this
conftest importable under its pytest-private module name.
"""

from __future__ import annotations

import pytest

from helpers import make_all_engines
from repro.indexes import IndexManager
from repro.predicates import PredicateRegistry
from repro.workloads import (
    EventGenerator,
    GeneralSubscriptionGenerator,
    PaperSubscriptionGenerator,
)

__all__ = ["make_all_engines"]


@pytest.fixture
def registry():
    return PredicateRegistry()


@pytest.fixture
def indexes():
    return IndexManager()


@pytest.fixture
def all_engines():
    return make_all_engines()


@pytest.fixture
def paper_generator():
    return PaperSubscriptionGenerator(predicates_per_subscription=6, seed=7)


@pytest.fixture
def general_generator():
    return GeneralSubscriptionGenerator(seed=7, allow_not=False)


@pytest.fixture
def event_generator():
    return EventGenerator(seed=7)
