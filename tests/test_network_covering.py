"""Tests for covering-based routing-table compaction in the overlay."""

from __future__ import annotations

import random

import pytest

from repro.broker import Broker, BrokerNetwork
from repro.core.registry import engine_names
from repro.events import Event
from repro.workloads import (
    NetworkChurnScenario,
    StockScenario,
    make_topology,
)

TOPOLOGY_NAMES = ("line", "star", "tree", "random")


def chain(covering=True, names=("a", "b", "c", "d")):
    network = BrokerNetwork(covering_enabled=covering)
    for name in names:
        network.add_broker(Broker(name))
    for left, right in zip(names, names[1:]):
        network.connect(left, right)
    return network


class TestSuppression:
    def test_covered_subscription_not_registered_remotely(self):
        network = chain()
        network.subscribe("a", "x > 0", subscriber="wide")
        network.subscribe("a", "x > 5", subscriber="narrow")
        # home broker 'a' registers both; remote brokers only the coverer
        assert network.broker("a").subscription_count == 2
        for name in "bcd":
            assert network.broker(name).subscription_count == 1
        assert network.stats.suppressed_registrations == 3

    def test_direction_mismatch_prevents_suppression(self):
        network = chain()
        # same expressions but homes at opposite ends: at every broker
        # their next hops differ, so nothing may be suppressed
        network.subscribe("a", "x > 0", subscriber="left")
        network.subscribe("d", "x > 5", subscriber="right")
        assert network.stats.suppressed_registrations == 0

    def test_deliveries_unaffected_by_suppression(self):
        with_covering = chain(covering=True)
        without = chain(covering=False)
        for network in (with_covering, without):
            network.subscribe("a", "x > 0", subscriber="wide")
            network.subscribe("a", "x > 5", subscriber="narrow")
            network.subscribe("c", "x > 5 and y = 1", subscriber="remote")
        for value in (-1, 3, 7):
            for y in (0, 1):
                event = Event({"x": value, "y": y})
                got = {
                    (n.subscriber, n.broker)
                    for n in with_covering.publish("d", event)
                }
                expected = {
                    (n.subscriber, n.broker)
                    for n in without.publish("d", event)
                }
                assert got == expected, (value, y)

    def test_memory_savings_visible(self):
        saving = chain(covering=True)
        plain = chain(covering=False)
        for network in (saving, plain):
            network.subscribe("a", "price >= 0", subscriber="firehose")
            for index in range(10):
                low = index * 5
                network.subscribe(
                    "a", f"price between [{low}, {low + 4}]",
                    subscriber=f"band{index}",
                )
        saved = sum(
            broker.engine.memory_bytes() for broker in saving.brokers()
        )
        unsaved = sum(
            broker.engine.memory_bytes() for broker in plain.brokers()
        )
        assert saved < unsaved


class TestReinstatement:
    def test_coverer_withdrawal_reinstates_covered(self):
        network = chain()
        wide = network.subscribe("a", "x > 0", subscriber="wide")
        network.subscribe("a", "x > 5", subscriber="narrow")
        assert network.broker("d").subscription_count == 1
        network.unsubscribe(wide.subscription_id)
        # the narrow subscription must now be registered everywhere
        for name in "abcd":
            assert network.broker(name).subscription_count == 1
        deliveries = network.publish("d", Event({"x": 9}))
        assert [n.subscriber for n in deliveries] == ["narrow"]
        assert network.publish("d", Event({"x": 3})) == []

    def test_withdrawing_covered_subscription(self):
        network = chain()
        network.subscribe("a", "x > 0", subscriber="wide")
        narrow = network.subscribe("a", "x > 5", subscriber="narrow")
        network.unsubscribe(narrow.subscription_id)
        deliveries = network.publish("d", Event({"x": 9}))
        assert [n.subscriber for n in deliveries] == ["wide"]
        # no dangling state
        for name in "abcd":
            table = network.routing_table(name)
            assert narrow.subscription_id not in table
            assert narrow.subscription_id not in table.suppressed()


class TestAbsorption:
    def test_late_wide_subscription_absorbs_registered_narrow(self):
        network = chain()
        narrow = network.subscribe("a", "x > 5", subscriber="narrow")
        assert network.broker("d").subscription_count == 1
        wide = network.subscribe("a", "x > 0", subscriber="wide")
        # the wide arrival absorbed the narrow one at every remote hop
        for name in "bcd":
            assert network.broker(name).subscription_count == 1
            table = network.routing_table(name)
            assert table.is_suppressed(narrow.subscription_id)
            assert not table.is_suppressed(wide.subscription_id)
            assert table.suppressed() == {
                narrow.subscription_id: wide.subscription_id
            }
        # both still live at home, deliveries unaffected
        assert network.broker("a").subscription_count == 2
        deliveries = network.publish("d", Event({"x": 9}))
        assert {n.subscriber for n in deliveries} == {"narrow", "wide"}

    def test_suppression_ratio_stays_bounded_under_absorb_cycles(self):
        """Regression: the ratio reflects live table state, so repeated
        absorb/reinstate cycles (which re-count suppressions in the
        cumulative counters) cannot push it past 1.0."""
        network = chain(names=("a", "b"))
        for low in (0, 10, 20):
            network.subscribe(
                "a", f"x between [{low}, {low + 5}]", subscriber=f"band{low}"
            )
        for _ in range(5):
            wide = network.subscribe("a", "x >= 0", subscriber="wide")
            assert 0.0 <= network.suppression_ratio() <= 1.0
            network.unsubscribe(wide)
            assert network.suppression_ratio() == 0.0
        assert network.stats.reinstated_registrations == 15

    def test_reabsorption_under_surviving_coverer(self):
        network = chain()
        wide_a = network.subscribe("a", "x >= 0", subscriber="wide-a")
        network.subscribe("a", "x > 0", subscriber="wide-b")
        network.subscribe("a", "x > 5", subscriber="narrow")
        # withdraw the top coverer: the narrow subscription must ride
        # the surviving wide-b instead of flooding back out
        network.unsubscribe(wide_a)
        for name in "bcd":
            assert network.broker(name).subscription_count == 1
            assert len(network.routing_table(name).suppressed()) == 1
        deliveries = network.publish("d", Event({"x": 9}))
        assert {n.subscriber for n in deliveries} == {"wide-b", "narrow"}


def _assert_routing_invariants(network):
    """Suppressed ⇒ a live, engine-registered, same-direction coverer."""
    for broker in network.brokers():
        table = network.routing_table(broker.name)
        registered = {
            handle.subscription_id for handle in broker.handles()
        }
        for covered, coverer in table.suppressed().items():
            assert covered in table and coverer in table
            assert table.next_hop(covered) == table.next_hop(coverer)
            assert table.next_hop(covered) is not None
            assert not table.is_suppressed(coverer)
            assert coverer in registered
            assert covered not in registered
        # every unsuppressed routed subscription is engine-registered
        for sid in table.hops:
            if not table.is_suppressed(sid):
                assert sid in registered


class TestTopologies:
    @pytest.mark.parametrize("topology_name", TOPOLOGY_NAMES)
    def test_churn_parity_and_invariants(self, topology_name):
        """Delivery parity vs flooding plus table invariants, under
        subscribe/unsubscribe churn, on every topology."""
        topology = make_topology(topology_name, 6, seed=1)
        networks = {
            mode: topology.build(BrokerNetwork(covering_enabled=mode))
            for mode in (True, False)
        }
        scenario = NetworkChurnScenario(seed=2)
        ops = list(scenario.ops(60, topology.brokers))
        traces = {}
        for mode, network in networks.items():
            traces[mode] = NetworkChurnScenario.apply(network, ops)
            if mode:
                _assert_routing_invariants(network)
        assert traces[True] == traces[False]
        covering = networks[True]
        assert covering.stats.suppressed_registrations > 0
        assert 0.0 < covering.suppression_ratio() <= 1.0
        # compaction is real: fewer engine registrations than flooding
        assert sum(
            b.subscription_count for b in covering.brokers()
        ) < sum(b.subscription_count for b in networks[False].brokers())

    @pytest.mark.parametrize("engine", engine_names())
    def test_delivery_parity_per_engine(self, engine):
        """Covering on/off deliver identically for every engine, on
        every topology."""
        scenario = NetworkChurnScenario(seed=4)
        subscriptions = scenario.subscriptions(18)
        events = [scenario.event() for _ in range(40)]
        for topology_name in TOPOLOGY_NAMES:
            topology = make_topology(topology_name, 5, seed=3)
            placement = random.Random(11)
            homes = [
                placement.choice(topology.brokers) for _ in subscriptions
            ]
            networks = {}
            for mode in (True, False):
                network = topology.build(
                    BrokerNetwork(covering_enabled=mode), engine=engine
                )
                for home, subscription in zip(homes, subscriptions):
                    network.subscribe(home, subscription)
                networks[mode] = network
            for index, event in enumerate(events):
                origin = topology.brokers[index % len(topology.brokers)]
                got = {
                    (n.subscriber, n.subscription_id, n.broker)
                    for n in networks[True].publish(origin, event)
                }
                expected = {
                    (n.subscriber, n.subscription_id, n.broker)
                    for n in networks[False].publish(origin, event)
                }
                assert got == expected, (topology_name, engine, index)
            for network in networks.values():
                for broker in network.brokers():
                    broker.engine.close()


class TestCoveringToggle:
    def test_toggle_after_construction_applies_to_new_arrivals(self):
        """Regression: covering_enabled is live, not a construction-time
        snapshot captured by each broker's routing table."""
        network = chain(covering=False)
        network.covering_enabled = True
        network.subscribe("a", "x > 0", subscriber="wide")
        network.subscribe("a", "x > 5", subscriber="narrow")
        assert network.stats.suppressed_registrations == 3
        # disabling mid-life floods new arrivals but leaves existing
        # suppressions consistent (withdrawal paths still work)
        network.covering_enabled = False
        tight = network.subscribe("a", "x > 7", subscriber="tight")
        assert network.stats.suppressed_registrations == 3
        for name in "bcd":
            assert not network.routing_table(name).is_suppressed(
                tight.subscription_id
            )
        network.unsubscribe(tight)
        deliveries = network.publish("d", Event({"x": 9}))
        assert {n.subscriber for n in deliveries} == {"wide", "narrow"}


class TestRoutingReports:
    def test_memory_report_includes_routing_tables(self):
        network = chain()
        network.subscribe("a", "x > 0")
        report = network.memory_report()
        for name in "abcd":
            assert report[name]["routing_table"] > 0

    def test_routing_report_shapes(self):
        network = chain()
        network.subscribe("a", "x > 0", subscriber="wide")
        network.subscribe("a", "x > 5", subscriber="narrow")
        report = network.routing_report()
        assert report["a"].local == 2 and report["a"].suppressed == 0
        for name in "bcd":
            assert report[name].entries == 2
            assert report[name].registered == 1
            assert report[name].suppressed == 1


class TestEquivalenceUnderChurn:
    def test_covering_network_equals_plain_network(self):
        rng = random.Random(5)
        scenario = StockScenario(seed=3)
        networks = {
            "covering": chain(covering=True),
            "plain": chain(covering=False),
        }
        live: list[int] = []
        homes = "abcd"
        for step in range(25):
            if live and rng.random() < 0.35:
                sid = live.pop(rng.randrange(len(live)))
                for network in networks.values():
                    network.unsubscribe(sid)
            else:
                home = rng.choice(homes)
                subscription = scenario.subscription(f"user{step}")
                for network in networks.values():
                    network.subscribe(home, subscription)
                live.append(subscription.subscription_id)
            event = scenario.event()
            publish_at = rng.choice(homes)
            got = {
                (n.subscriber, n.subscription_id, n.broker)
                for n in networks["covering"].publish(publish_at, event)
            }
            expected = {
                (n.subscriber, n.subscription_id, n.broker)
                for n in networks["plain"].publish(publish_at, event)
            }
            assert got == expected, step
