"""Tests for covering-based routing-table compaction in the overlay."""

from __future__ import annotations

import random

from repro.broker import Broker, BrokerNetwork
from repro.events import Event
from repro.workloads import StockScenario


def chain(covering=True, names=("a", "b", "c", "d")):
    network = BrokerNetwork(covering_enabled=covering)
    for name in names:
        network.add_broker(Broker(name))
    for left, right in zip(names, names[1:]):
        network.connect(left, right)
    return network


class TestSuppression:
    def test_covered_subscription_not_registered_remotely(self):
        network = chain()
        network.subscribe("a", "x > 0", subscriber="wide")
        network.subscribe("a", "x > 5", subscriber="narrow")
        # home broker 'a' registers both; remote brokers only the coverer
        assert network.broker("a").subscription_count == 2
        for name in "bcd":
            assert network.broker(name).subscription_count == 1
        assert network.stats.suppressed_registrations == 3

    def test_direction_mismatch_prevents_suppression(self):
        network = chain()
        # same expressions but homes at opposite ends: at every broker
        # their next hops differ, so nothing may be suppressed
        network.subscribe("a", "x > 0", subscriber="left")
        network.subscribe("d", "x > 5", subscriber="right")
        assert network.stats.suppressed_registrations == 0

    def test_deliveries_unaffected_by_suppression(self):
        with_covering = chain(covering=True)
        without = chain(covering=False)
        for network in (with_covering, without):
            network.subscribe("a", "x > 0", subscriber="wide")
            network.subscribe("a", "x > 5", subscriber="narrow")
            network.subscribe("c", "x > 5 and y = 1", subscriber="remote")
        for value in (-1, 3, 7):
            for y in (0, 1):
                event = Event({"x": value, "y": y})
                got = {
                    (n.subscriber, n.broker)
                    for n in with_covering.publish("d", event)
                }
                expected = {
                    (n.subscriber, n.broker)
                    for n in without.publish("d", event)
                }
                assert got == expected, (value, y)

    def test_memory_savings_visible(self):
        saving = chain(covering=True)
        plain = chain(covering=False)
        for network in (saving, plain):
            network.subscribe("a", "price >= 0", subscriber="firehose")
            for index in range(10):
                low = index * 5
                network.subscribe(
                    "a", f"price between [{low}, {low + 4}]",
                    subscriber=f"band{index}",
                )
        saved = sum(
            broker.engine.memory_bytes() for broker in saving.brokers()
        )
        unsaved = sum(
            broker.engine.memory_bytes() for broker in plain.brokers()
        )
        assert saved < unsaved


class TestReinstatement:
    def test_coverer_withdrawal_reinstates_covered(self):
        network = chain()
        wide = network.subscribe("a", "x > 0", subscriber="wide")
        network.subscribe("a", "x > 5", subscriber="narrow")
        assert network.broker("d").subscription_count == 1
        network.unsubscribe(wide.subscription_id)
        # the narrow subscription must now be registered everywhere
        for name in "abcd":
            assert network.broker(name).subscription_count == 1
        deliveries = network.publish("d", Event({"x": 9}))
        assert [n.subscriber for n in deliveries] == ["narrow"]
        assert network.publish("d", Event({"x": 3})) == []

    def test_withdrawing_covered_subscription(self):
        network = chain()
        network.subscribe("a", "x > 0", subscriber="wide")
        narrow = network.subscribe("a", "x > 5", subscriber="narrow")
        network.unsubscribe(narrow.subscription_id)
        deliveries = network.publish("d", Event({"x": 9}))
        assert [n.subscriber for n in deliveries] == ["wide"]
        # no dangling state
        for name in "abcd":
            assert narrow.subscription_id not in network._next_hop[name]
            assert narrow.subscription_id not in network._suppressed[name]


class TestEquivalenceUnderChurn:
    def test_covering_network_equals_plain_network(self):
        rng = random.Random(5)
        scenario = StockScenario(seed=3)
        networks = {
            "covering": chain(covering=True),
            "plain": chain(covering=False),
        }
        live: list[int] = []
        homes = "abcd"
        for step in range(25):
            if live and rng.random() < 0.35:
                sid = live.pop(rng.randrange(len(live)))
                for network in networks.values():
                    network.unsubscribe(sid)
            else:
                home = rng.choice(homes)
                subscription = scenario.subscription(f"user{step}")
                for network in networks.values():
                    network.subscribe(home, subscription)
                live.append(subscription.subscription_id)
            event = scenario.event()
            publish_at = rng.choice(homes)
            got = {
                (n.subscriber, n.subscription_id, n.broker)
                for n in networks["covering"].publish(publish_at, event)
            }
            expected = {
                (n.subscriber, n.subscription_id, n.broker)
                for n in networks["plain"].publish(publish_at, event)
            }
            assert got == expected, step
