"""Tests for variance-controlled measurement and matching profiling."""

from __future__ import annotations

import itertools

import pytest

from repro import CountingEngine, NonCanonicalEngine
from repro.experiments.profiling import (
    engine_comparison_summary,
    profile_matching,
)
from repro.experiments.variance import measure_until_stable
from repro.workloads import FulfilledPredicateSampler, PaperSubscriptionGenerator


class _FakeClock:
    """Deterministic clock emitting configurable per-run durations."""

    def __init__(self, durations):
        self._times = itertools.accumulate(
            itertools.chain.from_iterable((0.0, d) for d in durations)
        )
        self._iter = iter(self._times)
        self._durations = durations

    def __call__(self):
        return next(self._iter)


class TestMeasureUntilStable:
    def test_stable_immediately(self):
        clock = _FakeClock([1.0] * 20)
        result = measure_until_stable(
            lambda: None, min_runs=3, max_runs=10,
            discard_warmup=0, clock=clock,
        )
        assert result.stable
        assert result.runs == 3
        assert result.mean_seconds == pytest.approx(1.0)
        assert result.coefficient_of_variation <= 0.01

    def test_unstable_hits_cap(self):
        # alternating fast/slow runs never reach 1% CV
        clock = _FakeClock([1.0, 2.0] * 30)
        result = measure_until_stable(
            lambda: None, min_runs=3, max_runs=8,
            discard_warmup=0, clock=clock,
        )
        assert not result.stable
        assert result.runs == 8

    def test_stabilizes_after_mild_noise(self):
        clock = _FakeClock([1.02] + [1.0] * 30)
        result = measure_until_stable(
            lambda: None, min_runs=3, max_runs=30,
            discard_warmup=0, clock=clock,
        )
        assert result.stable
        assert result.runs > 3  # the noisy first sample delayed stability

    def test_large_outlier_reported_unstable(self):
        # a 5x outlier cannot be averaged below 1% CV within the cap;
        # the result must say so rather than pretend stability
        clock = _FakeClock([5.0] + [1.0] * 30)
        result = measure_until_stable(
            lambda: None, min_runs=3, max_runs=20,
            discard_warmup=0, clock=clock,
        )
        assert not result.stable
        assert result.runs == 20

    def test_warmup_discarded(self):
        calls = []
        clock = _FakeClock([1.0] * 10)
        measure_until_stable(
            lambda: calls.append(1), min_runs=3, max_runs=5,
            discard_warmup=2, clock=clock,
        )
        assert len(calls) >= 5  # 2 warmup + 3 measured

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            measure_until_stable(lambda: None, min_runs=1)
        with pytest.raises(ValueError):
            measure_until_stable(lambda: None, min_runs=5, max_runs=4)
        with pytest.raises(ValueError):
            measure_until_stable(lambda: None, target_cv=0)

    def test_real_timing_smoke(self):
        result = measure_until_stable(
            lambda: sum(range(500)), target_cv=0.8,
            min_runs=3, max_runs=10,
        )
        assert result.mean_seconds > 0
        assert len(result.samples) == result.runs


class TestProfiling:
    @pytest.fixture
    def loaded(self):
        engine = NonCanonicalEngine()
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=6, seed=9
        )
        for subscription in generator.subscriptions(100):
            engine.register(subscription)
        sampler = FulfilledPredicateSampler(
            predicate_ids=range(1, len(engine.registry) + 1),
            fulfilled_per_event=30,
            seed=10,
        )
        return engine, sampler.samples(20)

    def test_profile_shape(self, loaded):
        engine, sets = loaded
        profile = profile_matching(engine, sets)
        assert profile.events == 20
        assert profile.mean_fulfilled == pytest.approx(30.0)
        # unique predicates: at most one candidate per fulfilled predicate
        assert profile.mean_candidates <= profile.mean_fulfilled
        assert 0.0 < profile.candidate_fraction < 1.0
        assert 0.0 <= profile.selectivity <= 1.0
        assert "candidates" in str(profile)

    def test_candidates_bound_phase2_work(self, loaded):
        """The paper's §4.1 mechanism: phase-2 work tracks candidates,
        not the registered population."""
        engine, sets = loaded
        profile = profile_matching(engine, sets)
        assert profile.mean_candidates < engine.subscription_count / 2

    def test_empty_sets_rejected(self, loaded):
        engine, _ = loaded
        with pytest.raises(ValueError):
            profile_matching(engine, [])

    def test_engine_comparison_summary(self):
        from repro.indexes import IndexManager
        from repro.predicates import PredicateRegistry

        registry, indexes = PredicateRegistry(), IndexManager()
        nc = NonCanonicalEngine(registry=registry, indexes=indexes)
        counting = CountingEngine(registry=registry, indexes=indexes)
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=8, seed=4
        )
        for subscription in generator.subscriptions(10):
            nc.register(subscription)
            counting.register(subscription)
        summary = dict(
            (name, (originals, stored, memory))
            for name, originals, stored, memory in (
                engine_comparison_summary([nc, counting])
            )
        )
        assert summary["non-canonical"][0] == summary["counting"][0] == 10
        assert summary["counting"][1] == 160  # 16 clauses each
        assert summary["counting"][2] > summary["non-canonical"][2]
