"""Unit and property tests for the interval index and string tries."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexes import ContainsScanList, IntervalIndex, PrefixTrie, SuffixTrie


class TestIntervalIndex:
    def test_stabbing_basic(self):
        index = IntervalIndex()
        index.insert((10, 20), 1)
        index.insert((15, 30), 2)
        index.insert((40, 50), 3)
        assert set(index.match(17)) == {1, 2}
        assert set(index.match(10)) == {1}
        assert set(index.match(35)) == set()
        assert set(index.match(40)) == {3}

    def test_point_interval(self):
        index = IntervalIndex()
        index.insert((5, 5), 1)
        assert set(index.match(5)) == {1}
        assert set(index.match(4)) == set()

    def test_remove_pending(self):
        index = IntervalIndex()
        index.insert((1, 2), 1)
        assert index.remove((1, 2), 1)
        assert set(index.match(1)) == set()
        assert len(index) == 0

    def test_remove_wrong_bounds_fails(self):
        index = IntervalIndex()
        index.insert((1, 2), 1)
        assert not index.remove((1, 3), 1)

    def test_remove_after_rebuild(self):
        index = IntervalIndex()
        index.insert((1, 10), 1)
        index.rebuild()
        assert index.remove((1, 10), 1)
        assert set(index.match(5)) == set()

    def test_recycled_id_with_new_bounds_after_rebuild(self):
        """Regression: a predicate id freed by the registry and recycled
        for *different* bounds must not resurrect the stale interval.

        Before the fix, insert() discarded the tombstone and dropped the
        new bounds, so the old built interval answered stabbing queries
        under the recycled id (covering-absorption churn exposed this
        through wrong remote deliveries)."""
        index = IntervalIndex()
        index.insert((128, 594), 7)
        index.rebuild()                       # (128, 594) lands in the tree
        assert index.remove((128, 594), 7)    # tombstoned, not rebuilt
        index.insert((200, 247), 7)           # id recycled, new bounds
        assert set(index.match(424)) == set()     # stale interval masked
        assert set(index.match(210)) == {7}       # new bounds live
        assert len(index) == 1
        index.rebuild()                       # integration keeps new bounds
        assert set(index.match(424)) == set()
        assert set(index.match(210)) == {7}

    def test_recycled_id_identical_bounds_resurrects(self):
        index = IntervalIndex()
        index.insert((10, 20), 3)
        index.rebuild()
        assert index.remove((10, 20), 3)
        index.insert((10, 20), 3)
        assert set(index.match(15)) == {3}
        assert len(index) == 1

    def test_rebuild_triggered_by_churn(self):
        index = IntervalIndex(rebuild_fraction=0.25)
        for i in range(100):
            index.insert((i, i + 5), i)
        assert len(index) == 100
        assert set(index.match(3)) == {0, 1, 2, 3}

    def test_string_domain(self):
        index = IntervalIndex()
        index.insert(("a", "m"), 1)
        assert set(index.match("f")) == {1}
        assert set(index.match("z")) == set()

    def test_incomparable_value_matches_nothing(self):
        index = IntervalIndex()
        index.insert((1, 5), 1)
        index.rebuild()
        assert set(index.match("x")) == set()

    def test_invalid_rebuild_fraction(self):
        with pytest.raises(ValueError):
            IntervalIndex(rebuild_fraction=0)

    def test_intervals_iteration(self):
        index = IntervalIndex()
        index.insert((1, 2), 1)
        index.rebuild()
        index.insert((3, 4), 2)
        assert sorted(index.intervals()) == [(1, 2, 1), (3, 4, 2)]

    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 20), st.integers(0, 400)),
            max_size=80,
        ),
        st.integers(0, 60),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_reference_scan(self, raw, probe):
        index = IntervalIndex(rebuild_fraction=0.3)
        reference = {}
        for pid, (low, span, _) in enumerate(raw):
            index.insert((low, low + span), pid)
            reference[pid] = (low, low + span)
        expected = {
            pid for pid, (low, high) in reference.items() if low <= probe <= high
        }
        assert set(index.match(probe)) == expected

    @given(
        st.lists(st.tuples(st.integers(0, 30), st.integers(0, 10)),
                 min_size=1, max_size=60),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_under_churn(self, intervals, data):
        index = IntervalIndex(rebuild_fraction=0.2)
        live = {}
        for pid, (low, span) in enumerate(intervals):
            index.insert((low, low + span), pid)
            live[pid] = (low, low + span)
        doomed = data.draw(
            st.lists(st.sampled_from(sorted(live)), unique=True, max_size=len(live))
        )
        for pid in doomed:
            assert index.remove(live[pid], pid)
            del live[pid]
        probe = data.draw(st.integers(0, 45))
        expected = {
            pid for pid, (low, high) in live.items() if low <= probe <= high
        }
        assert set(index.match(probe)) == expected
        assert len(index) == len(live)


class TestPrefixTrie:
    def test_all_prefixes_of_value_match(self):
        trie = PrefixTrie()
        trie.insert("a", 1)
        trie.insert("ac", 2)
        trie.insert("acme", 3)
        trie.insert("b", 4)
        assert set(trie.match("acme corp")) == {1, 2, 3}
        assert set(trie.match("b")) == {4}
        assert set(trie.match("zzz")) == set()

    def test_empty_prefix_matches_everything(self):
        trie = PrefixTrie()
        trie.insert("", 1)
        assert set(trie.match("anything")) == {1}
        assert set(trie.match("")) == {1}

    def test_exact_boundary(self):
        trie = PrefixTrie()
        trie.insert("acme", 1)
        assert set(trie.match("acme")) == {1}
        assert set(trie.match("acm")) == set()

    def test_non_string_matches_nothing(self):
        trie = PrefixTrie()
        trie.insert("a", 1)
        assert set(trie.match(5)) == set()

    def test_remove_prunes_branches(self):
        trie = PrefixTrie()
        trie.insert("abc", 1)
        trie.insert("ab", 2)
        assert trie.remove("abc", 1)
        assert set(trie.match("abcdef")) == {2}
        assert len(trie) == 1
        assert not trie.remove("abc", 1)

    def test_remove_unknown_path(self):
        trie = PrefixTrie()
        trie.insert("abc", 1)
        assert not trie.remove("xyz", 1)
        assert not trie.remove("abc", 9)

    @given(st.lists(st.text(alphabet="abc", max_size=5), max_size=30),
           st.text(alphabet="abc", max_size=8))
    def test_matches_reference(self, prefixes, value):
        trie = PrefixTrie()
        for pid, prefix in enumerate(prefixes):
            trie.insert(prefix, pid)
        expected = {
            pid for pid, prefix in enumerate(prefixes)
            if value.startswith(prefix)
        }
        assert set(trie.match(value)) == expected


class TestSuffixTrie:
    def test_suffix_matching(self):
        trie = SuffixTrie()
        trie.insert(".pdf", 1)
        trie.insert("report.pdf", 2)
        assert set(trie.match("q3-report.pdf")) == {1, 2}
        assert set(trie.match("report.doc")) == set()

    def test_remove(self):
        trie = SuffixTrie()
        trie.insert(".pdf", 1)
        assert trie.remove(".pdf", 1)
        assert set(trie.match("a.pdf")) == set()

    @given(st.lists(st.text(alphabet="ab.", max_size=5), max_size=20),
           st.text(alphabet="ab.", max_size=8))
    def test_matches_reference(self, suffixes, value):
        trie = SuffixTrie()
        for pid, suffix in enumerate(suffixes):
            trie.insert(suffix, pid)
        expected = {
            pid for pid, suffix in enumerate(suffixes)
            if value.endswith(suffix)
        }
        assert set(trie.match(value)) == expected


class TestContainsScanList:
    def test_substring_matching(self):
        index = ContainsScanList()
        index.insert("urgent", 1)
        index.insert("gen", 2)
        assert set(index.match("urgent news")) == {1, 2}
        assert set(index.match("calm news")) == set()

    def test_remove(self):
        index = ContainsScanList()
        index.insert("x", 1)
        assert index.remove("x", 1)
        assert not index.remove("x", 1)
        assert len(index) == 0

    def test_non_string_matches_nothing(self):
        index = ContainsScanList()
        index.insert("x", 1)
        assert set(index.match(7)) == set()
