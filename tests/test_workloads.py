"""Unit tests for workload generation (repro.workloads)."""

from __future__ import annotations

import pytest

from repro.events import Event
from repro.subscriptions import dnf_clause_count, is_dnf_shaped
from repro.workloads import (
    AUCTION_SCHEMA,
    NEWS_SCHEMA,
    STOCK_SCHEMA,
    AuctionScenario,
    EventGenerator,
    FulfilledPredicateSampler,
    GeneralSubscriptionGenerator,
    NewsScenario,
    PaperSubscriptionGenerator,
    StockScenario,
    make_rng,
    sample_without_replacement,
    zipf_weights,
)


class TestDistributions:
    def test_zipf_weights_normalized(self):
        weights = zipf_weights(10, 1.0)
        assert len(weights) == 10
        assert sum(weights) == pytest.approx(1.0)
        assert weights == sorted(weights, reverse=True)

    def test_zipf_zero_skew_is_uniform(self):
        weights = zipf_weights(4, 0.0)
        assert all(w == pytest.approx(0.25) for w in weights)

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(5, -1)

    def test_sample_without_replacement(self):
        rng = make_rng(1)
        sample = sample_without_replacement(rng, range(10), 5)
        assert len(set(sample)) == 5
        with pytest.raises(ValueError):
            sample_without_replacement(rng, range(3), 5)

    def test_seeded_rng_reproducible(self):
        assert make_rng(7).random() == make_rng(7).random()


class TestPaperGenerator:
    @pytest.mark.parametrize("predicates", [2, 6, 8, 10])
    def test_shape_matches_paper(self, predicates):
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=predicates, seed=1
        )
        subscription = generator.subscription()
        assert subscription.predicate_count() == predicates
        assert dnf_clause_count(subscription.expression) == 2 ** (predicates // 2)
        if predicates >= 4:
            # originals are non-DNF (a lone OR group at |p|=2 is trivially DNF)
            assert not is_dnf_shaped(subscription.expression)

    def test_odd_predicate_count_rejected(self):
        with pytest.raises(ValueError):
            PaperSubscriptionGenerator(predicates_per_subscription=7)

    def test_unique_predicates_by_default(self):
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=6, seed=1
        )
        subscriptions = generator.subscriptions(50)
        all_predicates = [
            p for s in subscriptions for p in s.expression.unique_predicates()
        ]
        assert len(all_predicates) == len(set(all_predicates)) == 300

    def test_shared_predicates_fraction(self):
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=6,
            shared_predicate_fraction=0.5,
            seed=1,
        )
        subscriptions = generator.subscriptions(50)
        all_predicates = [
            p for s in subscriptions for p in s.expression.predicates()
        ]
        assert len(set(all_predicates)) < len(all_predicates)

    def test_invalid_share_fraction(self):
        with pytest.raises(ValueError):
            PaperSubscriptionGenerator(shared_predicate_fraction=1.0)

    def test_reproducible_with_seed(self):
        a = PaperSubscriptionGenerator(seed=3).subscription()
        b = PaperSubscriptionGenerator(seed=3).subscription()
        assert a.expression == b.expression

    def test_subscriber_forwarded(self):
        generator = PaperSubscriptionGenerator(seed=1)
        assert generator.subscription(subscriber="x").subscriber == "x"


class TestGeneralGenerator:
    def test_expressions_vary_and_evaluate(self):
        generator = GeneralSubscriptionGenerator(seed=5)
        subscriptions = generator.subscriptions(30)
        assert len({str(s.expression) for s in subscriptions}) > 20
        event = Event({"price": 10, "symbol": "abc"})
        for s in subscriptions:
            s.matches(event)  # must not raise

    def test_not_suppressed_when_disabled(self):
        generator = GeneralSubscriptionGenerator(seed=5, allow_not=False)
        for s in generator.subscriptions(50):
            assert "not" not in str(s.expression)

    def test_validation(self):
        with pytest.raises(ValueError):
            GeneralSubscriptionGenerator(max_depth=0)
        with pytest.raises(ValueError):
            GeneralSubscriptionGenerator(max_fanout=1)


class TestEventGenerator:
    def test_event_shape(self):
        generator = EventGenerator(
            attribute_pool=10, attributes_per_event=4, seed=1
        )
        event = generator.event()
        assert len(event) == 4
        assert all(name.startswith("attr") for name in event)

    def test_validation(self):
        with pytest.raises(ValueError):
            EventGenerator(attribute_pool=4, attributes_per_event=5)

    def test_skewed_attribute_popularity(self):
        generator = EventGenerator(
            attribute_pool=20, attributes_per_event=3, skew=1.5, seed=2
        )
        counts: dict[str, int] = {}
        for event in generator.events(200):
            for name in event:
                counts[name] = counts.get(name, 0) + 1
        assert counts.get("attr000", 0) > counts.get("attr019", 0)

    def test_batch(self):
        assert len(EventGenerator(seed=1).events(7)) == 7


class TestFulfilledSampler:
    def test_sample_size(self):
        sampler = FulfilledPredicateSampler(range(1, 101), 10, seed=1)
        sample = sampler.sample()
        assert len(sample) == 10
        assert all(1 <= pid <= 100 for pid in sample)

    def test_caps_at_universe(self):
        sampler = FulfilledPredicateSampler(range(1, 6), 10, seed=1)
        assert sampler.sample() == {1, 2, 3, 4, 5}

    def test_validation(self):
        with pytest.raises(ValueError):
            FulfilledPredicateSampler(range(10), 0)

    def test_reproducibility(self):
        a = FulfilledPredicateSampler(range(100), 10, seed=4).samples(3)
        b = FulfilledPredicateSampler(range(100), 10, seed=4).samples(3)
        assert a == b


class TestScenarios:
    @pytest.mark.parametrize(
        "scenario_class, schema",
        [
            (StockScenario, STOCK_SCHEMA),
            (AuctionScenario, AUCTION_SCHEMA),
            (NewsScenario, NEWS_SCHEMA),
        ],
    )
    def test_events_conform_to_schema(self, scenario_class, schema):
        scenario = scenario_class(seed=1)
        for _ in range(20):
            assert schema.conforms(scenario.event())

    @pytest.mark.parametrize(
        "scenario_class", [StockScenario, AuctionScenario, NewsScenario]
    )
    def test_subscriptions_parse_and_eventually_match(self, scenario_class):
        scenario = scenario_class(seed=2)
        subscriptions = [scenario.subscription(f"user{i}") for i in range(10)]
        matches = 0
        for _ in range(400):
            event = scenario.event()
            matches += sum(s.matches(event) for s in subscriptions)
        assert matches > 0  # workload is non-degenerate

    def test_stock_subscriptions_are_non_conjunctive(self):
        from repro.subscriptions import is_conjunctive

        scenario = StockScenario(seed=3)
        assert not is_conjunctive(scenario.subscription("u").expression)
