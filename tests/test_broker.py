"""Unit tests for the single broker and its clients."""

from __future__ import annotations

import pytest

from repro.broker import Broker, Publisher, Subscriber
from repro import CountingEngine
from repro.events import (
    AttributeSpec,
    AttributeType,
    Event,
    EventSchema,
    SchemaViolationError,
)
from repro.memory import SimulatedMachine
from repro.subscriptions import Subscription


class TestBrokerBasics:
    def test_subscribe_from_text_and_publish(self):
        broker = Broker("edge")
        s = broker.subscribe("price > 10")
        notifications = broker.publish(Event({"price": 12}))
        assert len(notifications) == 1
        assert notifications[0].subscription_id == s.subscription_id
        assert notifications[0].broker == "edge"

    def test_subscribe_object(self):
        broker = Broker("edge")
        s = Subscription.from_text("a = 1", subscriber="alice")
        broker.subscribe(s)
        notifications = broker.publish(Event({"a": 1}))
        assert notifications[0].subscriber == "alice"

    def test_subscriber_override(self):
        broker = Broker("edge")
        s = Subscription.from_text("a = 1", subscriber="alice")
        broker.subscribe(s, subscriber="bob")
        assert broker.publish(Event({"a": 1}))[0].subscriber == "bob"

    def test_callback_invoked(self):
        broker = Broker("edge")
        received = []
        broker.subscribe("a = 1", callback=received.append)
        broker.publish(Event({"a": 1}))
        broker.publish(Event({"a": 2}))
        assert len(received) == 1

    def test_non_matching_event_no_notifications(self):
        broker = Broker("edge")
        broker.subscribe("a = 1")
        assert broker.publish(Event({"a": 2})) == []

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Broker("")

    def test_unsubscribe(self):
        broker = Broker("edge")
        s = broker.subscribe("a = 1")
        broker.unsubscribe(s.subscription_id)
        assert broker.publish(Event({"a": 1})) == []
        assert broker.subscription_count == 0

    def test_subscription_lookup(self):
        broker = Broker("edge")
        s = broker.subscribe("a = 1")
        assert broker.subscription(s.subscription_id) is s or (
            broker.subscription(s.subscription_id).subscription_id
            == s.subscription_id
        )

    def test_stats_counters(self):
        broker = Broker("edge")
        broker.subscribe("a = 1")
        broker.publish(Event({"a": 1}))
        broker.publish(Event({"a": 2}))
        stats = broker.stats
        assert stats.events_published == 2
        assert stats.events_matched == 1
        assert stats.notifications_delivered == 1
        assert stats.subscriptions_registered == 1

    def test_pluggable_engine(self):
        broker = Broker("edge", engine=CountingEngine())
        s = broker.subscribe("a = 1 or b = 2")
        assert broker.publish(Event({"b": 2}))[0].subscription_id == (
            s.subscription_id
        )

    def test_repr(self):
        assert "edge" in repr(Broker("edge"))


class TestBrokerSchema:
    @pytest.fixture
    def schema(self):
        return EventSchema(
            "m",
            [AttributeSpec("price", AttributeType.FLOAT, required=True)],
        )

    def test_conforming_event_accepted(self, schema):
        broker = Broker("edge", schema=schema)
        broker.subscribe("price > 1")
        assert len(broker.publish(Event({"price": 2.0}))) == 1

    def test_violating_event_rejected(self, schema):
        broker = Broker("edge", schema=schema)
        with pytest.raises(SchemaViolationError):
            broker.publish(Event({"volume": 5}))


class TestBrokerMachineModel:
    def test_memory_pressure_without_machine(self):
        assert Broker("edge").memory_pressure() == 0.0

    def test_memory_pressure_with_machine(self):
        machine = SimulatedMachine(
            total_memory_bytes=4096, os_reserved_bytes=0
        )
        broker = Broker("edge", machine=machine)
        assert broker.memory_pressure() == 0.0
        for index in range(40):
            broker.subscribe(f"attr{index} = {index}")
        assert broker.memory_pressure() > 0.0


class TestClients:
    def test_subscriber_accumulates_notifications(self):
        broker = Broker("edge")
        alice = Subscriber("alice", broker)
        alice.subscribe("a = 1")
        alice.subscribe("b = 2")
        broker.publish(Event({"a": 1, "b": 2}))
        assert len(alice.notifications) == 2
        assert {n.subscriber for n in alice.notifications} == {"alice"}

    def test_subscriber_unsubscribe_ownership(self):
        broker = Broker("edge")
        alice = Subscriber("alice", broker)
        bob = Subscriber("bob", broker)
        s = alice.subscribe("a = 1")
        with pytest.raises(KeyError):
            bob.unsubscribe(s.subscription_id)
        alice.unsubscribe(s.subscription_id)
        assert alice.subscription_ids == frozenset()

    def test_unsubscribe_all(self):
        broker = Broker("edge")
        alice = Subscriber("alice", broker)
        alice.subscribe("a = 1")
        alice.subscribe("b = 2")
        alice.unsubscribe_all()
        assert broker.subscription_count == 0

    def test_subscriber_clear(self):
        broker = Broker("edge")
        alice = Subscriber("alice", broker)
        alice.subscribe("a = 1")
        broker.publish(Event({"a": 1}))
        alice.clear()
        assert alice.notifications == []

    def test_publisher_accepts_plain_dict(self):
        broker = Broker("edge")
        alice = Subscriber("alice", broker)
        alice.subscribe("a = 1")
        publisher = Publisher("feed", broker)
        publisher.publish({"a": 1})
        assert publisher.published_count == 1
        assert len(alice.notifications) == 1

    def test_client_name_validation(self):
        broker = Broker("edge")
        with pytest.raises(ValueError):
            Subscriber("", broker)
        with pytest.raises(ValueError):
            Publisher("", broker)
