"""Unit and property tests for canonical transformations
(repro.subscriptions.normal_forms)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.events import Event
from repro.predicates import Operator, Predicate
from repro.subscriptions import (
    And,
    Clause,
    DnfExplosionError,
    Literal,
    Not,
    Or,
    PredicateLeaf,
    dnf_clause_count,
    dnf_literal_count,
    leaf,
    parse,
    to_cnf,
    to_dnf,
    to_nnf,
    transformation_blowup,
)
from repro.workloads import PaperSubscriptionGenerator

from helpers import random_events, random_expressions

P1 = Predicate("a", Operator.GT, 10)
P2 = Predicate("b", Operator.EQ, 1)
P3 = Predicate("c", Operator.LT, 0)


class TestLiteralAndClause:
    def test_literal_evaluation(self):
        positive = Literal(P1)
        negative = Literal(P1, positive=False)
        assert positive.evaluate(lambda p: True)
        assert not negative.evaluate(lambda p: True)

    def test_complement(self):
        assert Literal(P1).complement() == Literal(P1, positive=False)

    def test_clause_requires_literals(self):
        with pytest.raises(ValueError):
            Clause([])

    def test_contradictory_clause_detection(self):
        clause = Clause([Literal(P1), Literal(P1, positive=False)])
        assert clause.is_contradictory
        assert not Clause([Literal(P1), Literal(P2)]).is_contradictory

    def test_clause_negative_literal_detection(self):
        assert Clause([Literal(P1, positive=False)]).has_negative_literals()
        assert not Clause([Literal(P1)]).has_negative_literals()

    def test_clause_conjunctive_evaluation(self):
        clause = Clause([Literal(P1), Literal(P2)])
        truth = {P1: True, P2: True}
        assert clause.evaluate_conjunctive(truth.__getitem__)
        truth[P2] = False
        assert not clause.evaluate_conjunctive(truth.__getitem__)


class TestNNF:
    def test_not_over_and_becomes_or(self):
        expression = Not(And((leaf(P1), leaf(P2))))
        nnf = to_nnf(expression)
        assert isinstance(nnf, Or)

    def test_not_over_or_becomes_and(self):
        expression = Not(Or((leaf(P1), leaf(P2))))
        nnf = to_nnf(expression)
        assert isinstance(nnf, And)

    def test_default_keeps_negative_literals(self):
        nnf = to_nnf(Not(leaf(P1)))
        assert isinstance(nnf, Not)
        assert isinstance(nnf.child, PredicateLeaf)

    def test_complement_mode_flips_operator(self):
        nnf = to_nnf(Not(leaf(P1)), complement_operators=True)
        assert isinstance(nnf, PredicateLeaf)
        assert nnf.predicate.operator is Operator.LE

    def test_complement_mode_keeps_not_for_between(self):
        p = Predicate("a", Operator.BETWEEN, (1, 2))
        nnf = to_nnf(Not(PredicateLeaf(p)), complement_operators=True)
        assert isinstance(nnf, Not)

    def test_double_negation_eliminated(self):
        assert to_nnf(Not(Not(leaf(P1)))) == leaf(P1)

    @given(random_expressions(), random_events())
    def test_nnf_preserves_semantics(self, expression, event):
        assert expression.matches(event) == to_nnf(expression).matches(event)

    @given(random_expressions())
    def test_nnf_pushes_not_to_leaves(self, expression):
        def check(node):
            if isinstance(node, Not):
                assert isinstance(node.child, PredicateLeaf)
                return
            for child in node.children():
                check(child)

        check(to_nnf(expression))


class TestDNF:
    def test_conjunction_is_single_clause(self):
        dnf = to_dnf(And((leaf(P1), leaf(P2))))
        assert len(dnf) == 1
        assert len(dnf.clauses[0]) == 2

    def test_disjunction_is_clause_per_operand(self):
        dnf = to_dnf(Or((leaf(P1), leaf(P2), leaf(P3))))
        assert len(dnf) == 3

    def test_paper_example_yields_nine_clauses(self):
        # §3.1: "s results in 9 disjunctions"
        expression = parse(
            "(a > 10 or a <= 5 or b = 1) and (c <= 20 or c = 30 or d = 5)"
        )
        assert dnf_clause_count(expression) == 9
        assert len(to_dnf(expression)) == 9

    def test_paper_workload_blowup(self):
        # §4: |p| predicates -> 2**(|p|/2) clauses of |p|/2 predicates
        for p in (6, 8, 10):
            generator = PaperSubscriptionGenerator(
                predicates_per_subscription=p, seed=1
            )
            expression = generator.subscription().expression
            dnf = to_dnf(expression)
            assert len(dnf) == 2 ** (p // 2)
            assert all(len(clause) == p // 2 for clause in dnf)

    def test_clause_count_matches_materialization(self):
        expression = parse("(a = 1 or b = 2) and (c = 3 or d = 4) and e = 5")
        assert dnf_clause_count(expression) == len(to_dnf(expression)) == 4

    def test_literal_count_closed_form(self):
        expression = parse("(a = 1 or b = 2) and (c = 3 or d = 4)")
        dnf = to_dnf(expression)
        assert dnf_literal_count(expression) == dnf.total_literal_count() == 8

    def test_explosion_cap_enforced(self):
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=10, seed=1
        )
        expression = generator.subscription().expression
        with pytest.raises(DnfExplosionError):
            to_dnf(expression, max_clauses=10)

    def test_contradictions_dropped(self):
        expression = And((leaf(P1), Not(leaf(P1))))
        dnf = to_dnf(expression)
        # the only clause is contradictory; one survives as the False carrier
        assert len(dnf) == 1
        assert not dnf.evaluate(lambda p: True)

    def test_absorption(self):
        expression = Or((leaf(P1), And((leaf(P1), leaf(P2)))))
        dnf = to_dnf(expression).absorbed()
        assert len(dnf) == 1

    def test_blowup_ratio_on_paper_workload(self):
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=8, seed=1
        )
        expression = generator.subscription().expression
        # 2**(|p|/2 - 1) = 8 for |p| = 8
        assert transformation_blowup(expression) == 8.0

    @given(random_expressions(max_leaves=5), random_events())
    @settings(max_examples=60)
    def test_dnf_preserves_semantics(self, expression, event):
        dnf = to_dnf(expression)
        truth = {p: p.matches(event) for p in expression.unique_predicates()}
        assert dnf.evaluate(truth.__getitem__) == expression.matches(event)

    @given(random_expressions(max_leaves=5))
    @settings(max_examples=60)
    def test_clause_count_never_below_materialized(self, expression):
        # the closed form over-counts only (dedup/contradiction removal)
        assert dnf_clause_count(expression) >= len(
            to_dnf(expression, drop_contradictions=False)
        )

    def test_predicates_collected_across_clauses(self):
        expression = parse("(a = 1 or b = 2) and c = 3")
        assert len(to_dnf(expression).predicates()) == 3


class TestCNF:
    def test_disjunction_is_single_cnf_clause(self):
        clauses = to_cnf(Or((leaf(P1), leaf(P2))))
        assert len(clauses) == 1
        assert len(clauses[0]) == 2

    def test_conjunction_is_clause_per_operand(self):
        clauses = to_cnf(And((leaf(P1), leaf(P2))))
        assert len(clauses) == 2

    @given(random_expressions(max_leaves=5), random_events())
    @settings(max_examples=60)
    def test_cnf_preserves_semantics(self, expression, event):
        clauses = to_cnf(expression)
        truth = {p: p.matches(event) for p in expression.unique_predicates()}
        value = all(
            clause.evaluate_disjunctive(truth.__getitem__) for clause in clauses
        )
        assert value == expression.matches(event)


class TestComplementModeCaveat:
    def test_complement_mode_differs_on_absent_attribute(self):
        """The documented soundness caveat: NOT a>10 vs a<=10 on events
        without ``a``."""
        expression = Not(leaf(P1))
        event = Event({"z": 1})
        sound = to_dnf(expression)
        flipped = to_dnf(expression, complement_operators=True)
        truth = lambda p: p.matches(event)  # noqa: E731
        assert expression.matches(event) is True
        assert sound.evaluate(truth) is True
        assert flipped.evaluate(truth) is False
