"""Unit tests for the counting engines (the canonical baselines)."""

from __future__ import annotations

import pytest

from repro import (
    CountingEngine,
    CountingVariantEngine,
    UnknownSubscriptionError,
    UnsupportedSubscriptionError,
)
from repro.events import Event
from repro.subscriptions import Subscription
from repro.workloads import PaperSubscriptionGenerator


def sub(text, subscriber=None):
    return Subscription.from_text(text, subscriber=subscriber)


ENGINE_CLASSES = [CountingEngine, CountingVariantEngine]


@pytest.mark.parametrize("engine_class", ENGINE_CLASSES)
class TestSharedBehaviour:
    def test_conjunctive_subscription(self, engine_class):
        engine = engine_class()
        s = sub("a = 1 and b = 2")
        engine.register(s)
        assert engine.match(Event({"a": 1, "b": 2})) == {s.subscription_id}
        assert engine.match(Event({"a": 1})) == set()

    def test_disjunctive_subscription_expands(self, engine_class):
        engine = engine_class()
        s = sub("a = 1 or b = 2")
        engine.register(s)
        assert engine.subscription_count == 1
        assert engine.stored_subscription_count == 2  # two DNF clauses
        assert engine.match(Event({"b": 2})) == {s.subscription_id}

    def test_paper_shape_transformation_count(self, engine_class):
        engine = engine_class()
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=8, seed=5
        )
        for s in generator.subscriptions(3):
            engine.register(s)
        # 2**(8/2) = 16 clauses per original
        assert engine.stored_subscription_count == 48

    def test_not_rejected_without_complement_mode(self, engine_class):
        engine = engine_class()
        with pytest.raises(UnsupportedSubscriptionError):
            engine.register(sub("not a > 5"))

    def test_not_accepted_with_complement_mode(self, engine_class):
        engine = engine_class(complement_operators=True)
        s = sub("not a > 5")
        engine.register(s)
        assert engine.match(Event({"a": 3})) == {s.subscription_id}
        assert engine.match(Event({"a": 7})) == set()

    def test_not_over_between_always_rejected(self, engine_class):
        engine = engine_class(complement_operators=True)
        with pytest.raises(UnsupportedSubscriptionError):
            engine.register(sub("not a between [1, 5]"))

    def test_duplicate_id_rejected(self, engine_class):
        engine = engine_class()
        s = sub("a = 1")
        engine.register(s)
        with pytest.raises(ValueError):
            engine.register(s)

    def test_single_match_despite_multiple_matching_clauses(self, engine_class):
        engine = engine_class()
        s = sub("a = 1 or b = 2")
        engine.register(s)
        # both clauses fulfilled -> still one reported subscription
        assert engine.match(Event({"a": 1, "b": 2})) == {s.subscription_id}

    def test_consecutive_events_do_not_leak_hits(self, engine_class):
        engine = engine_class()
        s = sub("a = 1 and b = 2")
        engine.register(s)
        assert engine.match(Event({"a": 1})) == set()
        assert engine.match(Event({"b": 2})) == set()  # would match if hits leaked
        assert engine.match(Event({"a": 1, "b": 2})) == {s.subscription_id}

    def test_subscriber_lookup(self, engine_class):
        engine = engine_class()
        s = sub("a = 1", subscriber="bob")
        engine.register(s)
        assert engine.subscriber_of(s.subscription_id) == "bob"

    def test_unregister_unknown_raises(self, engine_class):
        with pytest.raises(UnknownSubscriptionError):
            engine_class().unregister(777777)


@pytest.mark.parametrize("engine_class", ENGINE_CLASSES)
@pytest.mark.parametrize("support_unsubscription", [True, False])
class TestUnsubscription:
    def test_unregister_both_paths(self, engine_class, support_unsubscription):
        engine = engine_class(support_unsubscription=support_unsubscription)
        first = sub("a = 1 or b = 2")
        second = sub("a = 1 and c = 3")
        engine.register(first)
        engine.register(second)
        engine.unregister(first.subscription_id)
        assert engine.subscription_count == 1
        assert engine.stored_subscription_count == 1
        assert engine.match(Event({"b": 2})) == set()
        assert engine.match(Event({"a": 1, "c": 3})) == {second.subscription_id}

    def test_predicates_retired_after_unregister(
        self, engine_class, support_unsubscription
    ):
        engine = engine_class(support_unsubscription=support_unsubscription)
        s = sub("a = 1 or b = 2")
        engine.register(s)
        engine.unregister(s.subscription_id)
        assert len(engine.registry) == 0
        assert len(engine.indexes) == 0

    def test_clause_slots_recycled(self, engine_class, support_unsubscription):
        engine = engine_class(support_unsubscription=support_unsubscription)
        s = sub("a = 1 or b = 2")
        engine.register(s)
        engine.unregister(s.subscription_id)
        replacement = sub("c = 3 or d = 4")
        engine.register(replacement)
        # storage vector lengths must not have grown
        assert len(engine._counts) == 2
        assert engine.match(Event({"d": 4})) == {replacement.subscription_id}


class TestCountingSpecifics:
    def test_memory_breakdown_structures(self):
        engine = CountingEngine()
        engine.register(sub("a = 1 or b = 2"))
        breakdown = engine.memory_breakdown()
        assert set(breakdown) == {
            "predicate_bit_vector",
            "hit_vector",
            "count_vector",
            "clause_subscription_table",
            "association_table",
        }
        assert breakdown["hit_vector"] == 2  # 1 byte per clause
        assert breakdown["count_vector"] == 2

    def test_unsubscription_support_costs_memory(self):
        plain = CountingEngine()
        with_lists = CountingEngine(support_unsubscription=True)
        s = sub("(a = 1 or b = 2) and (c = 3 or d = 4)")
        plain.register(s)
        with_lists.register(
            Subscription(expression=s.expression,
                         subscription_id=s.subscription_id + 10**6)
        )
        assert "subscription_predicate_lists" in with_lists.memory_breakdown()
        assert with_lists.memory_bytes() > plain.memory_bytes()

    def test_supports_unsubscription_flag(self):
        assert CountingEngine(support_unsubscription=True).supports_unsubscription
        assert not CountingEngine().supports_unsubscription

    def test_memory_grows_with_transformation_blowup(self):
        """The paper's core space argument at engine level."""
        narrow = CountingEngine()
        wide = CountingEngine()
        narrow_gen = PaperSubscriptionGenerator(
            predicates_per_subscription=6, seed=1
        )
        wide_gen = PaperSubscriptionGenerator(
            predicates_per_subscription=10, seed=1
        )
        for s in narrow_gen.subscriptions(10):
            narrow.register(s)
        for s in wide_gen.subscriptions(10):
            wide.register(s)
        # 32 clauses/sub vs 8 clauses/sub
        assert wide.memory_bytes() > 3 * narrow.memory_bytes()

    def test_clause_cap_enforced(self):
        engine = CountingEngine(max_clauses=8)
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=10, seed=1
        )
        from repro.subscriptions import DnfExplosionError

        with pytest.raises(DnfExplosionError):
            engine.register(generator.subscription())


class TestVariantSpecifics:
    def test_variant_only_compares_touched_clauses(self):
        """Behavioural check via hit-vector state: untouched entries stay 0
        and the variant resets the touched ones."""
        engine = CountingVariantEngine()
        first = sub("a = 1 and b = 2")
        second = sub("c = 3 and d = 4")
        engine.register(first)
        engine.register(second)
        engine.match(Event({"a": 1}))
        assert all(hit == 0 for hit in engine._hits)

    def test_variant_equals_counting_on_same_workload(self):
        counting = CountingEngine()
        variant = CountingVariantEngine()
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=6, seed=11
        )
        subscriptions = generator.subscriptions(30)
        for s in subscriptions:
            counting.register(s)
            variant.register(
                Subscription(expression=s.expression,
                             subscription_id=s.subscription_id)
            )
        universe = range(1, len(counting.registry) + 1)
        import random

        rng = random.Random(5)
        for _ in range(40):
            fulfilled = set(rng.sample(list(universe), 25))
            assert counting.match_fulfilled(fulfilled) == (
                variant.match_fulfilled(fulfilled)
            )
