"""Shared hypothesis strategies and fixture predicates for the test suite.

Imported absolutely (``from helpers import ...``) — pytest's rootdir
import mode puts ``tests/`` on ``sys.path``, so these helpers work both
under ``python -m pytest`` from the repository root and when a single
test module is run directly.

Setting the ``REPRO_ENGINE`` environment variable to a registry name
narrows :func:`make_all_engines` to that engine (constructed through the
engine registry) plus the brute-force oracle — the CI engine matrix runs
the agreement and parity suites once per engine this way, proving
spec-driven construction for every engine.

Setting ``REPRO_SHARDS`` to an integer additionally wraps every engine
under test (never the oracle) in a
:class:`~repro.core.sharded.ShardedEngine` with that many shards and the
serial executor — the CI sharded leg runs the same suites through the
sharded runtime this way, deterministic by construction.
"""

from __future__ import annotations

import os

from hypothesis import strategies as st

from repro import EngineSpec, build_engine, canonical_engine_name, engine_names
from repro.events import Event
from repro.indexes import IndexManager
from repro.predicates import Operator, Predicate, PredicateRegistry
from repro.subscriptions import And, Not, Or, PredicateLeaf

#: Every canonical registry engine name, in registration order — the
#: parametrization list for suites that cover the whole registry.
ALL_ENGINE_NAMES = engine_names()

#: Canonical registry name selected by the CI engine matrix, or None.
SELECTED_ENGINE = (
    canonical_engine_name(os.environ["REPRO_ENGINE"])
    if os.environ.get("REPRO_ENGINE")
    else None
)

#: Shard count for the CI sharded leg (serial executor), or None.
SELECTED_SHARDS = (
    int(os.environ["REPRO_SHARDS"])
    if os.environ.get("REPRO_SHARDS")
    else None
)


def _maybe_sharded(spec: EngineSpec) -> EngineSpec:
    """Wrap a spec in the sharded runtime when REPRO_SHARDS is set."""
    if SELECTED_SHARDS is None:
        return spec
    return spec.with_options(shards=SELECTED_SHARDS, executor="serial")


def _spec_options(name, *, complement_operators=False):
    """Per-engine options making it workload-compatible with the suite."""
    if name == "counting":
        return {
            "support_unsubscription": True,
            "complement_operators": complement_operators,
        }
    if name in ("counting-variant", "matching-tree") and complement_operators:
        return {"complement_operators": True}
    return {}


def make_all_engines(*, shared=True, complement_operators=False):
    """One engine of each kind, optionally sharing registry/indexes.

    The last engine is always the brute-force oracle.  With
    ``REPRO_ENGINE`` set, returns just the selected engine (built from
    its registry spec) followed by the oracle.
    """
    if shared:
        registry = PredicateRegistry()
        indexes = IndexManager()
        kwargs = dict(registry=registry, indexes=indexes)
    else:
        kwargs = {}
    if SELECTED_ENGINE is not None:
        spec = _maybe_sharded(
            EngineSpec(
                SELECTED_ENGINE,
                _spec_options(
                    SELECTED_ENGINE, complement_operators=complement_operators
                ),
            )
        )
        engines = [] if SELECTED_ENGINE == "bruteforce" else [spec.build(**kwargs)]
        engines.append(build_engine("bruteforce", **kwargs))
        return engines
    specs = [
        EngineSpec("noncanonical"),
        EngineSpec("noncanonical", {"codec": "varint"}),
        EngineSpec("noncanonical", {"evaluation": "encoded"}),
        EngineSpec(
            "counting",
            {
                "support_unsubscription": True,
                "complement_operators": complement_operators,
            },
        ),
        EngineSpec(
            "counting-variant", {"complement_operators": complement_operators}
        ),
    ]
    engines = [_maybe_sharded(spec).build(**kwargs) for spec in specs]
    engines.append(build_engine("bruteforce", **kwargs))
    return engines

P1 = Predicate("a", Operator.GT, 10)
P2 = Predicate("b", Operator.EQ, 1)
P3 = Predicate("c", Operator.LT, 0)


def random_expressions(max_leaves=6):
    """Hypothesis strategy producing random AST trees over 3 attributes."""
    predicates = st.sampled_from([P1, P2, P3]).map(PredicateLeaf)
    return st.recursive(
        predicates,
        lambda children: st.one_of(
            st.lists(children, min_size=2, max_size=3).map(tuple).map(And),
            st.lists(children, min_size=2, max_size=3).map(tuple).map(Or),
            children.map(Not),
        ),
        max_leaves=max_leaves,
    )


def random_events():
    """Hypothesis strategy producing events over the same 3 attributes."""
    return st.fixed_dictionaries(
        {},
        optional={
            "a": st.integers(-5, 20),
            "b": st.integers(0, 3),
            "c": st.integers(-3, 3),
        },
    ).map(Event)


def predicate_strategy():
    """Random predicates covering every operator family and both domains."""
    numeric_attr = st.sampled_from(["a", "b", "c"])
    string_attr = st.sampled_from(["s", "t"])
    value = st.integers(-10, 10)
    word = st.text(alphabet="xyz", max_size=3)
    return st.one_of(
        st.tuples(numeric_attr, st.sampled_from(
            [Operator.EQ, Operator.NE, Operator.LT, Operator.LE,
             Operator.GT, Operator.GE]), value
        ).map(lambda t: Predicate(*t)),
        st.builds(
            lambda a, low, span: Predicate(a, Operator.BETWEEN, (low, low + span)),
            numeric_attr, value, st.integers(0, 8),
        ),
        st.builds(
            lambda a, values: Predicate(a, Operator.IN, values),
            numeric_attr, st.sets(value, min_size=1, max_size=4),
        ),
        st.tuples(string_attr, st.sampled_from(
            [Operator.EQ, Operator.NE, Operator.PREFIX,
             Operator.SUFFIX, Operator.CONTAINS]), word
        ).map(lambda t: Predicate(*t)),
        st.builds(lambda a: Predicate(a, Operator.EXISTS), numeric_attr),
    )


def event_strategy():
    """Random events over the strategy attributes (numeric and string)."""
    return st.fixed_dictionaries(
        {},
        optional={
            "a": st.integers(-12, 12),
            "b": st.integers(-12, 12),
            "c": st.integers(-12, 12),
            "s": st.text(alphabet="xyz", max_size=4),
            "t": st.text(alphabet="xyz", max_size=4),
        },
    ).map(Event)
