"""Shared hypothesis strategies and fixture predicates for the test suite.

Imported absolutely (``from helpers import ...``) — pytest's rootdir
import mode puts ``tests/`` on ``sys.path``, so these helpers work both
under ``python -m pytest`` from the repository root and when a single
test module is run directly.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core import (
    BruteForceEngine,
    CountingEngine,
    CountingVariantEngine,
    NonCanonicalEngine,
)
from repro.events import Event
from repro.indexes import IndexManager
from repro.predicates import Operator, Predicate, PredicateRegistry
from repro.subscriptions import And, Not, Or, PredicateLeaf


def make_all_engines(*, shared=True, complement_operators=False):
    """One engine of each kind, optionally sharing registry/indexes."""
    if shared:
        registry = PredicateRegistry()
        indexes = IndexManager()
        kwargs = dict(registry=registry, indexes=indexes)
    else:
        kwargs = {}
    return [
        NonCanonicalEngine(**kwargs),
        NonCanonicalEngine(codec="varint", **kwargs),
        NonCanonicalEngine(evaluation="encoded", **kwargs),
        CountingEngine(
            support_unsubscription=True,
            complement_operators=complement_operators,
            **kwargs,
        ),
        CountingVariantEngine(
            complement_operators=complement_operators, **kwargs
        ),
        BruteForceEngine(**kwargs),
    ]

P1 = Predicate("a", Operator.GT, 10)
P2 = Predicate("b", Operator.EQ, 1)
P3 = Predicate("c", Operator.LT, 0)


def random_expressions(max_leaves=6):
    """Hypothesis strategy producing random AST trees over 3 attributes."""
    predicates = st.sampled_from([P1, P2, P3]).map(PredicateLeaf)
    return st.recursive(
        predicates,
        lambda children: st.one_of(
            st.lists(children, min_size=2, max_size=3).map(tuple).map(And),
            st.lists(children, min_size=2, max_size=3).map(tuple).map(Or),
            children.map(Not),
        ),
        max_leaves=max_leaves,
    )


def random_events():
    """Hypothesis strategy producing events over the same 3 attributes."""
    return st.fixed_dictionaries(
        {},
        optional={
            "a": st.integers(-5, 20),
            "b": st.integers(0, 3),
            "c": st.integers(-3, 3),
        },
    ).map(Event)


def predicate_strategy():
    """Random predicates covering every operator family and both domains."""
    numeric_attr = st.sampled_from(["a", "b", "c"])
    string_attr = st.sampled_from(["s", "t"])
    value = st.integers(-10, 10)
    word = st.text(alphabet="xyz", max_size=3)
    return st.one_of(
        st.tuples(numeric_attr, st.sampled_from(
            [Operator.EQ, Operator.NE, Operator.LT, Operator.LE,
             Operator.GT, Operator.GE]), value
        ).map(lambda t: Predicate(*t)),
        st.builds(
            lambda a, low, span: Predicate(a, Operator.BETWEEN, (low, low + span)),
            numeric_attr, value, st.integers(0, 8),
        ),
        st.builds(
            lambda a, values: Predicate(a, Operator.IN, values),
            numeric_attr, st.sets(value, min_size=1, max_size=4),
        ),
        st.tuples(string_attr, st.sampled_from(
            [Operator.EQ, Operator.NE, Operator.PREFIX,
             Operator.SUFFIX, Operator.CONTAINS]), word
        ).map(lambda t: Predicate(*t)),
        st.builds(lambda a: Predicate(a, Operator.EXISTS), numeric_attr),
    )


def event_strategy():
    """Random events over the strategy attributes (numeric and string)."""
    return st.fixed_dictionaries(
        {},
        optional={
            "a": st.integers(-12, 12),
            "b": st.integers(-12, 12),
            "c": st.integers(-12, 12),
            "s": st.text(alphabet="xyz", max_size=4),
            "t": st.text(alphabet="xyz", max_size=4),
        },
    ).map(Event)
