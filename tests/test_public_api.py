"""The unified public API: engine specs, handles, sinks, one publish surface.

Covers the four pillars end to end:

* engine registry round-trips (every name → engine → spec → same name)
  and spec-driven construction on shared phase-1 state;
* ``SubscriptionHandle`` lifecycle — double-unsubscribe, pause/resume,
  survival across a broker stats reset, network-wide withdrawal;
* delivery sinks, including ``QueueSink`` bounded-drop accounting;
* ``publish()`` accepting events, mappings, and iterables (materialized
  exactly once), plus the ``stream()`` generator.
"""

from __future__ import annotations

import pytest

from repro import (
    Broker,
    BrokerNetwork,
    CallbackSink,
    CollectingSink,
    EngineSpec,
    Event,
    FilterEngine,
    QueueSink,
    Subscriber,
    Publisher,
    SubscriptionHandle,
    UnknownEngineError,
    as_sink,
    build_engine,
    canonical_engine_name,
    engine_names,
    resolve_engine,
    spec_of,
)
from repro.indexes import IndexManager
from repro.predicates import PredicateRegistry

ALL_ENGINE_NAMES = (
    "noncanonical",
    "counting",
    "counting-variant",
    "matching-tree",
    "bruteforce",
    "paged",
)


def _close(engine) -> None:
    if hasattr(engine, "close"):
        engine.close()


class TestEngineRegistry:
    def test_all_six_names_registered(self):
        assert set(engine_names()) == set(ALL_ENGINE_NAMES)

    @pytest.mark.parametrize("name", ALL_ENGINE_NAMES)
    def test_round_trip_name_to_engine_to_spec(self, name):
        """Every name → engine → spec → the same canonical name."""
        engine = build_engine(name)
        try:
            assert isinstance(engine, FilterEngine)
            spec = spec_of(engine)
            assert spec.name == name
            assert spec == EngineSpec(name)
        finally:
            _close(engine)

    @pytest.mark.parametrize("name", ALL_ENGINE_NAMES)
    def test_spec_driven_construction_on_shared_state(self, name):
        """Specs build onto a sweep's shared registry/index manager."""
        registry = PredicateRegistry()
        indexes = IndexManager()
        engine = EngineSpec(name).build(registry=registry, indexes=indexes)
        try:
            assert engine.registry is registry
            assert engine.indexes is indexes
        finally:
            _close(engine)

    def test_engine_display_names_accepted_as_aliases(self):
        for alias, canonical in (
            ("non-canonical", "noncanonical"),
            ("brute-force", "bruteforce"),
            ("non-canonical-paged", "paged"),
        ):
            assert canonical_engine_name(alias) == canonical
            assert EngineSpec(alias) == EngineSpec(canonical)

    def test_unknown_name_lists_known_engines(self):
        with pytest.raises(UnknownEngineError, match="noncanonical"):
            build_engine("sieve-of-alexandria")

    def test_spec_options_forwarded(self):
        varint = EngineSpec("noncanonical", {"codec": "varint"}).build()
        assert varint.name == "non-canonical"
        with pytest.raises(ValueError):
            build_engine("noncanonical", codec="morse")

    def test_paged_spec_spells_out_store_options(self):
        engine = build_engine("paged", page_size=512, cache_pages=4)
        try:
            assert engine.store.page_size == 512
            assert engine.store.cache_pages == 4
        finally:
            _close(engine)

    def test_with_options_and_equality(self):
        base = EngineSpec("counting")
        tuned = base.with_options(support_unsubscription=True)
        assert tuned != base
        assert tuned.options["support_unsubscription"] is True
        assert base.options == {}

    def test_resolve_engine_passthrough_and_default(self):
        engine = build_engine("counting")
        assert resolve_engine(engine) is engine
        assert resolve_engine(None).name == "non-canonical"
        with pytest.raises(TypeError):
            resolve_engine(42)

    def test_broker_accepts_name_spec_and_instance(self):
        by_name = Broker("a", engine="counting")
        by_spec = Broker(
            "b", engine=EngineSpec("counting", {"support_unsubscription": True})
        )
        by_instance = Broker("c", engine=build_engine("counting"))
        for broker in (by_name, by_spec, by_instance):
            assert broker.engine.name == "counting"

    def test_network_add_broker_by_name_with_spec(self):
        network = BrokerNetwork()
        added = network.add_broker("edge", engine="matching-tree")
        assert network.broker("edge") is added
        assert added.engine.name == "matching-tree"
        with pytest.raises(TypeError):
            network.add_broker(Broker("other"), engine="counting")


class TestSubscriptionHandle:
    def test_subscribe_returns_live_handle(self):
        broker = Broker("edge")
        handle = broker.subscribe("price > 10", subscriber="alice")
        assert isinstance(handle, SubscriptionHandle)
        assert handle.active and not handle.paused
        assert handle.id == handle.subscription.subscription_id
        assert handle.subscriber == "alice"
        assert broker.handle(handle.id) is handle

    def test_unsubscribe_is_idempotent(self):
        broker = Broker("edge")
        handle = broker.subscribe("a = 1")
        assert handle.unsubscribe() is True
        assert handle.unsubscribe() is False
        assert not handle.active
        assert broker.subscription_count == 0
        assert broker.stats.subscriptions_removed == 1

    def test_handle_invalidated_by_raw_id_unsubscribe(self):
        broker = Broker("edge")
        handle = broker.subscribe("a = 1")
        broker.unsubscribe(handle.id)
        assert not handle.active
        assert handle.unsubscribe() is False

    def test_pause_resume_delivery(self):
        broker = Broker("edge")
        sink = CollectingSink()
        handle = broker.subscribe("a = 1", sink=sink)
        assert len(broker.publish(Event({"a": 1}))) == 1
        handle.pause()
        assert handle.paused
        assert broker.publish(Event({"a": 1})) == []
        assert broker.publish([{"a": 1}]) == [[]]
        handle.resume()
        assert len(broker.publish(Event({"a": 1}))) == 1
        # the two paused publishes (per-event and batch) delivered nothing
        assert sink.delivered == 2
        assert broker.stats.notifications_delivered == 2

    def test_handle_survives_broker_stats_reset(self):
        broker = Broker("edge")
        sink = CollectingSink()
        handle = broker.subscribe("a = 1", sink=sink)
        broker.publish(Event({"a": 1}))
        broker.reset_stats()
        assert broker.stats.events_published == 0
        assert handle.active
        assert broker.handle(handle.id) is handle
        broker.publish(Event({"a": 1}))
        assert sink.delivered == 2
        assert broker.stats.notifications_delivered == 1

    def test_network_handle_withdraws_everywhere(self):
        network = BrokerNetwork()
        for name in ("a", "b", "c"):
            network.add_broker(name)
        network.connect("a", "b")
        network.connect("b", "c")
        handle = network.subscribe("a", "x = 1", subscriber="alice")
        assert all(
            broker.subscription_count == 1 for broker in network.brokers()
        )
        assert handle.unsubscribe() is True
        assert all(
            broker.subscription_count == 0 for broker in network.brokers()
        )
        assert handle.unsubscribe() is False

    def test_network_handle_pause_suppresses_delivery(self):
        network = BrokerNetwork()
        for name in ("a", "b"):
            network.add_broker(name)
        network.connect("a", "b")
        sink = CollectingSink()
        handle = network.subscribe("b", "x = 1", sink=sink)
        assert len(network.publish("a", Event({"x": 1}))) == 1
        handle.pause()
        assert network.publish("a", Event({"x": 1})) == []
        assert network.publish("a", [{"x": 1}]) == [[]]
        handle.resume()
        assert len(network.publish("a", Event({"x": 1}))) == 1
        assert sink.delivered == 2


class TestSinks:
    def test_as_sink_normalization(self):
        received = []
        sink = as_sink(received.append)
        assert isinstance(sink, CallbackSink)
        assert as_sink(sink) is sink
        assert as_sink(None) is None
        with pytest.raises(TypeError):
            as_sink("not a sink")

    def test_sink_and_callback_are_exclusive(self):
        broker = Broker("edge")
        with pytest.raises(TypeError):
            broker.subscribe(
                "a = 1", sink=CollectingSink(), callback=print
            )

    def test_legacy_callback_still_delivers_with_deprecation(self):
        broker = Broker("edge")
        received = []
        with pytest.warns(DeprecationWarning, match="sink="):
            handle = broker.subscribe("a = 1", callback=received.append)
        broker.publish(Event({"a": 1}))
        assert len(received) == 1
        assert handle.sink.delivered == 1

    def test_stream_rejects_single_event_eagerly(self):
        broker = Broker("edge")
        with pytest.raises(TypeError, match="iterable of events"):
            broker.stream(Event({"a": 1}))
        with pytest.raises(TypeError, match="iterable of events"):
            broker.stream({"a": 1})

    def test_collecting_sink_shared_across_subscriptions(self):
        broker = Broker("edge")
        alice = Subscriber("alice", broker)
        alice.subscribe("a = 1")
        alice.subscribe("b = 2")
        broker.publish(Event({"a": 1, "b": 2}))
        assert len(alice.notifications) == 2
        assert alice.sink.delivered == 2
        assert len(alice.handles) == 2

    def test_queue_sink_drop_newest(self):
        broker = Broker("edge")
        sink = QueueSink(maxsize=2)
        broker.subscribe("a > 0", sink=sink)
        broker.publish([{"a": 1}, {"a": 2}, {"a": 3}])
        assert sink.depth == 2
        assert sink.dropped == 1
        assert sink.delivered == 2  # the drop was not a delivery
        assert [n.event["a"] for n in sink.drain()] == [1, 2]
        assert sink.depth == 0

    def test_queue_sink_drop_oldest(self):
        broker = Broker("edge")
        sink = QueueSink(maxsize=2, policy="drop-oldest")
        broker.subscribe("a > 0", sink=sink)
        broker.publish([{"a": 1}, {"a": 2}, {"a": 3}])
        assert sink.dropped == 1
        assert sink.delivered == 3  # arrivals accepted, head evicted
        assert [n.event["a"] for n in sink.drain()] == [2, 3]

    def test_queue_sink_pop_and_validation(self):
        sink = QueueSink()
        assert sink.pop() is None
        with pytest.raises(ValueError):
            QueueSink(maxsize=0)
        with pytest.raises(ValueError):
            QueueSink(policy="drop-table")


class TestUnifiedPublish:
    def test_publish_accepts_event_mapping_iterable(self):
        broker = Broker("edge")
        broker.subscribe("a = 1")
        assert len(broker.publish(Event({"a": 1}))) == 1
        assert len(broker.publish({"a": 1})) == 1
        batched = broker.publish([{"a": 1}, Event({"a": 2}), {"a": 1}])
        assert [len(notifications) for notifications in batched] == [1, 0, 1]
        assert broker.stats.batches_published == 1

    def test_publish_rejects_strings_and_scalars(self):
        broker = Broker("edge")
        with pytest.raises(TypeError):
            broker.publish("a = 1")
        with pytest.raises(TypeError):
            broker.publish(7)

    def test_publish_materializes_generators_once(self):
        broker = Broker("edge")
        broker.subscribe("a > 0")
        pulls = []

        def feed():
            for value in (1, 2, 3):
                pulls.append(value)
                yield {"a": value}

        results = broker.publish_batch(feed())
        assert pulls == [1, 2, 3]
        assert len(results) == 3
        assert broker.stats.events_published == 3

    def test_publisher_counts_match_batch_for_generators(self):
        broker = Broker("edge")
        publisher = Publisher("feed", broker)
        results = publisher.publish_batch(
            {"a": value} for value in range(5)
        )
        assert publisher.published_count == 5
        assert len(results) == 5
        results = publisher.publish(({"a": value} for value in range(3)))
        assert publisher.published_count == 8
        assert len(results) == 3

    def test_stream_batches_and_preserves_order(self):
        broker = Broker("edge")
        broker.subscribe("a >= 2")
        deliveries = list(
            broker.stream(({"a": value} for value in range(5)), batch_size=2)
        )
        assert [len(d) for d in deliveries] == [0, 0, 1, 1, 1]
        # 5 events at batch_size=2 -> batches of 2, 2, 1
        assert broker.stats.batches_published == 3
        assert broker.stats.events_published == 5
        with pytest.raises(ValueError):
            next(broker.stream([], batch_size=0))

    def test_network_publish_unified_and_stream(self):
        network = BrokerNetwork()
        for name in ("a", "b"):
            network.add_broker(name)
        network.connect("a", "b")
        network.subscribe("b", "x > 0", subscriber="bob")
        assert len(network.publish("a", {"x": 1})) == 1
        batched = network.publish("a", [{"x": 1}, {"x": 0}])
        assert [len(d) for d in batched] == [1, 0]
        streamed = list(
            network.stream(
                "a", ({"x": value} for value in (1, 0, 2)), batch_size=2
            )
        )
        assert [len(d) for d in streamed] == [1, 0, 1]
        assert network.stats.batches_published == 3

    def test_publish_batch_matches_per_event_results(self):
        broker = Broker("edge")
        broker.subscribe("a = 1 or b = 2")
        events = [Event({"a": 1}), Event({"b": 3}), Event({"b": 2})]
        sequential = [broker.publish(event) for event in events]
        assert broker.publish_batch(events) == sequential

    def test_stream_validates_batch_size_eagerly(self):
        broker = Broker("edge")
        with pytest.raises(ValueError):
            broker.stream([], batch_size=0)  # before any iteration
        network = BrokerNetwork()
        network.add_broker("solo")
        with pytest.raises(ValueError):
            network.stream("solo", [], batch_size=0)
        with pytest.raises(ValueError):
            Publisher("feed", broker).stream([], batch_size=0)

    def test_publisher_stream_counts_published_batches(self):
        """Counts move when a batch is published, so an early-stopping
        consumer still sees the broker's counters matched."""
        broker = Broker("edge")
        publisher = Publisher("feed", broker)
        feed = publisher.stream(
            ({"a": value} for value in range(5)), batch_size=2
        )
        next(feed)  # consume one event: the first 2-event batch published
        assert publisher.published_count == 2
        assert broker.stats.events_published == 2
        feed.close()
        assert publisher.published_count == broker.stats.events_published


class TestDeprecatedShims:
    def test_unsubscribe_accepts_subscription_objects_everywhere(self):
        broker = Broker("edge")
        handle = broker.subscribe("a = 1")
        broker.unsubscribe(handle.subscription)
        assert broker.subscription_count == 0

        network = BrokerNetwork()
        network.add_broker("solo")
        net_handle = network.subscribe("solo", "a = 1")
        network.unsubscribe(net_handle.subscription)
        assert network.broker("solo").subscription_count == 0

        alice = Subscriber("alice", Broker("b2"))
        sub_handle = alice.subscribe("a = 1")
        alice.unsubscribe(sub_handle.subscription)
        assert alice.subscription_ids == frozenset()

    def test_default_engine_factories_are_still_callable(self):
        from repro.experiments import DEFAULT_ENGINE_FACTORIES

        registry = PredicateRegistry()
        indexes = IndexManager()
        engines = [
            factory(registry=registry, indexes=indexes)
            for factory in DEFAULT_ENGINE_FACTORIES
        ]
        assert [engine.name for engine in engines] == [
            "non-canonical",
            "counting-variant",
            "counting",
        ]

    def test_sweep_rejects_both_engine_spellings(self):
        from repro.experiments import run_throughput_sweep

        with pytest.raises(TypeError, match="not both"):
            run_throughput_sweep(
                subscription_count=10,
                event_count=8,
                engines=("counting",),
                engine_factories=("counting",),
            )

    def test_subscriber_forgets_handle_withdrawn_directly(self):
        broker = Broker("edge")
        alice = Subscriber("alice", broker)
        handle = alice.subscribe("a = 1")
        handle.unsubscribe()  # bypasses Subscriber.unsubscribe
        assert alice.subscription_ids == frozenset()
        assert alice.handles == []

    def test_register_engine_rejects_name_collisions(self):
        from repro import register_engine, build_engine

        with pytest.raises(ValueError, match="already registered"):
            register_engine("counting", lambda **kwargs: None)
        # the paper's engine is untouched
        assert build_engine("counting").name == "counting"

    def test_sweep_rejects_engine_instances(self):
        from repro.experiments import run_throughput_sweep

        with pytest.raises(TypeError, match="shared registry"):
            run_throughput_sweep(
                subscription_count=10,
                event_count=8,
                engines=(build_engine("counting"),),
            )
