"""Unit tests for the subscription language parser."""

from __future__ import annotations

import pytest

from repro.events import Event
from repro.predicates import Operator
from repro.subscriptions import (
    And,
    Not,
    Or,
    PredicateLeaf,
    SubscriptionSyntaxError,
    parse,
)


def single_predicate(text):
    node = parse(text)
    assert isinstance(node, PredicateLeaf)
    return node.predicate


class TestPredicateParsing:
    def test_equality(self):
        p = single_predicate("price = 10")
        assert (p.attribute, p.operator, p.value) == ("price", Operator.EQ, 10)

    def test_equality_alias(self):
        assert single_predicate("a == 1").operator is Operator.EQ

    def test_inequality_aliases(self):
        assert single_predicate("a != 1").operator is Operator.NE
        assert single_predicate("a <> 1").operator is Operator.NE

    @pytest.mark.parametrize(
        "symbol, operator",
        [("<", Operator.LT), ("<=", Operator.LE), (">", Operator.GT),
         (">=", Operator.GE)],
    )
    def test_comparisons(self, symbol, operator):
        assert single_predicate(f"a {symbol} 3").operator is operator

    def test_float_value(self):
        assert single_predicate("a = 1.5").value == 1.5

    def test_negative_number(self):
        assert single_predicate("a > -3").value == -3

    def test_single_quoted_string(self):
        assert single_predicate("sym = 'ACME'").value == "ACME"

    def test_double_quoted_string(self):
        assert single_predicate('sym = "ACME"').value == "ACME"

    def test_escaped_quote_in_string(self):
        assert single_predicate(r"s = 'it\'s'").value == "it's"

    def test_boolean_values(self):
        assert single_predicate("x = true").value is True
        assert single_predicate("x = false").value is False

    def test_between(self):
        p = single_predicate("a between [1, 5]")
        assert p.operator is Operator.BETWEEN
        assert p.value == (1, 5)

    def test_in_set(self):
        p = single_predicate("a in {1, 2, 3}")
        assert p.operator is Operator.IN
        assert p.value == frozenset({1, 2, 3})

    def test_string_operators(self):
        assert single_predicate("s prefix 'ab'").operator is Operator.PREFIX
        assert single_predicate("s suffix 'ab'").operator is Operator.SUFFIX
        assert single_predicate("s contains 'ab'").operator is Operator.CONTAINS

    def test_exists(self):
        p = single_predicate("exists(price)")
        assert p.operator is Operator.EXISTS
        assert p.attribute == "price"

    def test_dotted_attribute_names(self):
        assert single_predicate("order.total > 5").attribute == "order.total"


class TestBooleanStructure:
    def test_and_chain_is_nary(self):
        node = parse("a = 1 and b = 2 and c = 3")
        assert isinstance(node, And)
        assert len(node.operands) == 3

    def test_or_chain_is_nary(self):
        node = parse("a = 1 or b = 2 or c = 3")
        assert isinstance(node, Or)
        assert len(node.operands) == 3

    def test_and_binds_tighter_than_or(self):
        node = parse("a = 1 or b = 2 and c = 3")
        assert isinstance(node, Or)
        assert isinstance(node.operands[1], And)

    def test_parentheses_override_precedence(self):
        node = parse("(a = 1 or b = 2) and c = 3")
        assert isinstance(node, And)
        assert isinstance(node.operands[0], Or)

    def test_not_prefix(self):
        node = parse("not a = 1")
        assert isinstance(node, Not)

    def test_not_binds_tightest(self):
        node = parse("not a = 1 and b = 2")
        assert isinstance(node, And)
        assert isinstance(node.operands[0], Not)

    def test_double_not(self):
        node = parse("not not a = 1")
        assert isinstance(node, Not)
        assert isinstance(node.child, Not)

    def test_symbolic_operators(self):
        assert isinstance(parse("a = 1 & b = 2"), And)
        assert isinstance(parse("a = 1 && b = 2"), And)
        assert isinstance(parse("a = 1 | b = 2"), Or)
        assert isinstance(parse("a = 1 || b = 2"), Or)
        assert isinstance(parse("!(a = 1)"), Not)

    def test_keywords_case_insensitive(self):
        assert isinstance(parse("a = 1 AND b = 2"), And)
        assert isinstance(parse("NOT a = 1"), Not)

    def test_paper_example_subscription(self):
        node = parse(
            "(a > 10 or a <= 5 or b = 1) and (c <= 20 or c = 30 or d = 5)"
        )
        assert isinstance(node, And)
        assert all(isinstance(child, Or) for child in node.operands)
        assert len(list(node.predicates())) == 6


class TestParsedSemantics:
    def test_parsed_expression_matches_events(self):
        node = parse("(price > 10 or urgent = true) and sym prefix 'AC'")
        assert node.matches(Event({"price": 12, "sym": "ACME"}))
        assert node.matches(Event({"urgent": True, "sym": "ACE"}))
        assert not node.matches(Event({"price": 12, "sym": "ZME"}))
        assert not node.matches(Event({"price": 5, "sym": "ACME"}))

    def test_roundtrip_through_str(self):
        original = parse("(a > 1 and b <= 2) or not c = 3")
        assert parse(str(original)) == original


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "and",
            "a =",
            "a 10",
            "= 10",
            "(a = 1",
            "a = 1)",
            "a = 1 or",
            "a between [1]",
            "a between [1, 2",
            "a in {}",
            "a in {1, }",
            "a prefix 5",
            "exists price",
            "exists()",
            "a ~ 5",
            "a = 'unterminated",
            "a = 1 b = 2",
        ],
    )
    def test_malformed_input_raises(self, text):
        with pytest.raises(SubscriptionSyntaxError):
            parse(text)

    def test_error_carries_position(self):
        with pytest.raises(SubscriptionSyntaxError) as info:
            parse("a = 1 or or b = 2")
        assert info.value.position > 0

    def test_none_like_input(self):
        with pytest.raises(SubscriptionSyntaxError):
            parse("\n\t ")
