"""Robustness: NOT-heavy workloads, adversarial inputs, rendering edges."""

from __future__ import annotations

import random

import pytest

from repro import BruteForceEngine, NonCanonicalEngine
from repro.events import Event, InvalidEventError
from repro.experiments.figure3 import PANELS, render_panel, run_panel
from repro.experiments.parameters import ScaleConfig
from repro.indexes import IndexManager
from repro.predicates import PredicateRegistry
from repro.subscriptions import Subscription, SubscriptionSyntaxError, parse
from repro.workloads import GeneralSubscriptionGenerator


class TestNotHeavyAgreement:
    """The expressiveness the paper's engine adds: NOT-bearing
    subscriptions, which the conjunctive baselines reject, must still be
    matched correctly by every non-canonical variant."""

    @pytest.mark.parametrize("codec", ["basic", "varint"])
    @pytest.mark.parametrize("evaluation", ["compiled", "encoded"])
    def test_not_workload_agreement(self, codec, evaluation):
        registry = PredicateRegistry()
        indexes = IndexManager()
        engine = NonCanonicalEngine(
            codec=codec, evaluation=evaluation,
            registry=registry, indexes=indexes,
        )
        oracle = BruteForceEngine(registry=registry, indexes=indexes)
        generator = GeneralSubscriptionGenerator(seed=23, allow_not=True)
        for subscription in generator.subscriptions(40):
            engine.register(subscription)
            oracle.register(
                Subscription(
                    expression=subscription.expression,
                    subscription_id=subscription.subscription_id,
                )
            )
        rng = random.Random(11)
        for _ in range(60):
            payload = {}
            for name in ("price", "volume", "qty", "score"):
                if rng.random() < 0.7:
                    payload[name] = rng.randint(0, 100)
            for name in ("symbol", "category"):
                if rng.random() < 0.7:
                    payload[name] = "".join(
                        rng.choice("abcde") for _ in range(rng.randint(1, 4))
                    )
            event = Event(payload)
            assert engine.match(event) == oracle.match(event)

    def test_pure_negation_subscription(self):
        engine = NonCanonicalEngine()
        s = Subscription.from_text("not exists(banned)")
        engine.register(s)
        assert engine.match(Event({"x": 1})) == {s.subscription_id}
        assert engine.match(Event({"banned": True})) == set()

    def test_tautology_like_subscription(self):
        engine = NonCanonicalEngine()
        s = Subscription.from_text("a = 1 or not a = 1")
        engine.register(s)
        # true for every event under predicate-truth semantics
        assert engine.match(Event({"a": 1})) == {s.subscription_id}
        assert engine.match(Event({"a": 2})) == {s.subscription_id}
        assert engine.match(Event({})) == {s.subscription_id}


class TestAdversarialInputs:
    def test_deeply_nested_expression_parses_and_matches(self):
        depth = 200
        text = "(" * depth + "a = 1" + ")" * depth
        expression = parse(text)
        engine = NonCanonicalEngine()
        s = Subscription(expression=expression)
        engine.register(s)
        assert engine.match(Event({"a": 1})) == {s.subscription_id}

    def test_long_not_chain(self):
        text = "not " * 99 + "a = 1"
        s = Subscription(expression=parse(text))
        engine = NonCanonicalEngine()
        engine.register(s)
        # odd number of NOTs: matches when a = 1 is NOT fulfilled
        assert engine.match(Event({"a": 2})) == {s.subscription_id}
        assert engine.match(Event({"a": 1})) == set()

    def test_wide_disjunction(self):
        text = " or ".join(f"a = {i}" for i in range(200))
        s = Subscription(expression=parse(text))
        engine = NonCanonicalEngine(codec="varint")  # >255 children: basic
        engine.register(s)                           # codec would reject
        assert engine.match(Event({"a": 150})) == {s.subscription_id}

    def test_basic_codec_rejects_oversized_fanout_cleanly(self):
        from repro.subscriptions import EncodingError

        text = " or ".join(f"a = {i}" for i in range(300))
        engine = NonCanonicalEngine(codec="basic")
        with pytest.raises(EncodingError):
            engine.register(Subscription(expression=parse(text)))

    def test_unicode_strings_throughout(self):
        engine = NonCanonicalEngine()
        s = Subscription.from_text("sym prefix 'ACmé—' and note contains '警告'")
        engine.register(s)
        assert engine.match(
            Event({"sym": "ACmé—X", "note": "これは警告です"})
        ) == {s.subscription_id}

    def test_huge_attribute_values(self):
        engine = NonCanonicalEngine()
        s = Subscription.from_text(f"a > {10**15}")
        engine.register(s)
        assert engine.match(Event({"a": 10**16})) == {s.subscription_id}

    def test_event_rejects_nested_payloads(self):
        with pytest.raises(InvalidEventError):
            Event({"nested": {"x": 1}})

    @pytest.mark.parametrize("text", ["a = 1 ; drop", "a = 1 -- x", "a = \x00"])
    def test_garbage_suffixes_rejected(self, text):
        with pytest.raises(SubscriptionSyntaxError):
            parse(text)


class TestRendering:
    def test_render_panel_contains_everything(self):
        tiny = ScaleConfig(
            name="tiny",
            subscription_divisor=25_000,
            fulfilled_divisor=500,
            events_per_point=1,
            points_per_curve=2,
        )
        panel = PANELS["a"]
        result = run_panel(panel, tiny, repeats=1)
        text = render_panel(panel, tiny, result)
        assert "Fig. 3(a)" in text
        assert "non-canonical" in text
        assert "counting-variant" in text
        assert "memory budget" in text
        assert "seconds per event" in text  # the plot axis label

    def test_render_panel_without_plot(self):
        tiny = ScaleConfig(
            name="tiny",
            subscription_divisor=25_000,
            fulfilled_divisor=500,
            events_per_point=1,
            points_per_curve=2,
        )
        panel = PANELS["a"]
        result = run_panel(panel, tiny, repeats=1)
        text = render_panel(panel, tiny, result, plot=False)
        assert "swap x" in text
        assert "[registered subscriptions]" not in text
