"""Unit tests for the event model (repro.events)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.events import (
    AttributeSpec,
    AttributeType,
    Event,
    EventSchema,
    InvalidEventError,
    SchemaViolationError,
)


class TestEventConstruction:
    def test_basic_attributes_accessible(self):
        event = Event({"price": 10, "symbol": "ACME"})
        assert event["price"] == 10
        assert event["symbol"] == "ACME"

    def test_supports_all_scalar_types(self):
        event = Event({"i": 1, "f": 1.5, "s": "x", "b": True})
        assert event["i"] == 1
        assert event["f"] == 1.5
        assert event["s"] == "x"
        assert event["b"] is True

    def test_rejects_non_string_attribute_name(self):
        with pytest.raises(InvalidEventError):
            Event({1: "x"})

    def test_rejects_empty_attribute_name(self):
        with pytest.raises(InvalidEventError):
            Event({"": 1})

    def test_rejects_unsupported_value_type(self):
        with pytest.raises(InvalidEventError):
            Event({"xs": [1, 2]})

    def test_rejects_none_value(self):
        with pytest.raises(InvalidEventError):
            Event({"x": None})

    def test_empty_event_is_allowed(self):
        event = Event({})
        assert len(event) == 0

    def test_event_ids_are_unique(self):
        first = Event({"a": 1})
        second = Event({"a": 1})
        assert first.event_id != second.event_id

    def test_explicit_event_id(self):
        event = Event({"a": 1}, event_id=42)
        assert event.event_id == 42


class TestEventMappingProtocol:
    def test_len_and_iter(self):
        event = Event({"a": 1, "b": 2})
        assert len(event) == 2
        assert sorted(event) == ["a", "b"]

    def test_contains(self):
        event = Event({"a": 1})
        assert "a" in event
        assert "b" not in event

    def test_get_with_default(self):
        event = Event({"a": 1})
        assert event.get("a") == 1
        assert event.get("b") is None
        assert event.get("b", 7) == 7

    def test_items_view(self):
        event = Event({"a": 1})
        assert dict(event.items()) == {"a": 1}

    def test_attributes_copy_is_detached(self):
        event = Event({"a": 1})
        copy = event.attributes
        assert copy == {"a": 1}

    def test_equality_ignores_event_id(self):
        assert Event({"a": 1}) == Event({"a": 1})
        assert Event({"a": 1}) != Event({"a": 2})

    def test_hash_consistent_with_equality(self):
        assert hash(Event({"a": 1})) == hash(Event({"a": 1}))

    def test_repr_mentions_attributes(self):
        assert "price" in repr(Event({"price": 3}))

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.one_of(st.integers(), st.text(max_size=5), st.booleans()),
            max_size=6,
        )
    )
    def test_roundtrip_any_valid_mapping(self, mapping):
        event = Event(mapping)
        assert dict(event.items()) == mapping


class TestAttributeSpec:
    def test_int_spec_accepts_int(self):
        AttributeSpec("x", AttributeType.INT).validate(3)

    def test_int_spec_rejects_bool(self):
        with pytest.raises(SchemaViolationError):
            AttributeSpec("x", AttributeType.INT).validate(True)

    def test_float_spec_accepts_int_and_float(self):
        spec = AttributeSpec("x", AttributeType.FLOAT)
        spec.validate(1)
        spec.validate(1.5)

    def test_float_spec_rejects_bool(self):
        with pytest.raises(SchemaViolationError):
            AttributeSpec("x", AttributeType.FLOAT).validate(False)

    def test_string_spec_rejects_number(self):
        with pytest.raises(SchemaViolationError):
            AttributeSpec("x", AttributeType.STRING).validate(3)

    def test_bool_spec_accepts_bool_only(self):
        spec = AttributeSpec("x", AttributeType.BOOL)
        spec.validate(True)
        with pytest.raises(SchemaViolationError):
            spec.validate(1)


class TestEventSchema:
    @pytest.fixture
    def schema(self):
        return EventSchema(
            "trade",
            [
                AttributeSpec("symbol", AttributeType.STRING, required=True),
                AttributeSpec("price", AttributeType.FLOAT, required=True),
                AttributeSpec("note", AttributeType.STRING),
            ],
        )

    def test_valid_event_passes(self, schema):
        schema.validate(Event({"symbol": "A", "price": 1.0}))

    def test_optional_attribute_allowed(self, schema):
        schema.validate(Event({"symbol": "A", "price": 1.0, "note": "hi"}))

    def test_missing_required_attribute_fails(self, schema):
        with pytest.raises(SchemaViolationError, match="missing required"):
            schema.validate(Event({"symbol": "A"}))

    def test_undeclared_attribute_fails(self, schema):
        with pytest.raises(SchemaViolationError, match="undeclared"):
            schema.validate(Event({"symbol": "A", "price": 1.0, "x": 1}))

    def test_wrong_type_fails(self, schema):
        with pytest.raises(SchemaViolationError):
            schema.validate(Event({"symbol": "A", "price": "cheap"}))

    def test_conforms_is_boolean_form(self, schema):
        assert schema.conforms(Event({"symbol": "A", "price": 1.0}))
        assert not schema.conforms(Event({"symbol": "A"}))

    def test_required_attributes_property(self, schema):
        assert schema.required_attributes == {"symbol", "price"}

    def test_mapping_protocol(self, schema):
        assert len(schema) == 3
        assert schema["note"].required is False
        assert "symbol" in set(schema)

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            EventSchema(
                "x",
                [
                    AttributeSpec("a", AttributeType.INT),
                    AttributeSpec("a", AttributeType.INT),
                ],
            )

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            EventSchema("", [])
