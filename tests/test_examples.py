"""Smoke tests: every example script runs end to end and tells its story."""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"
SRC = EXAMPLES.parent / "src"


def run_example(name: str, timeout: int = 240) -> str:
    # Examples import ``repro``; put src/ on the subprocess path so they
    # run whether or not the package is installed.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, (str(SRC), env.get("PYTHONPATH")))
    )
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_complete():
    present = {path.name for path in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "stock_ticker.py",
        "broker_network.py",
        "paper_experiment.py",
        "sharded_throughput.py",
    } <= present


def test_quickstart():
    out = run_example("quickstart.py")
    assert "registered" in out
    assert "alice" in out and "bob" in out
    assert "no match" in out
    assert "engine memory" in out
    assert "after unsubscribe: 1 subscription(s) left" in out


def test_stock_ticker():
    out = run_example("stock_ticker.py")
    assert "400 traders registered" in out
    assert "3,200 conjunctive clauses" in out  # the 8x DNF blow-up
    assert "notifications from each engine" in out
    assert "faster on this workload" in out


def test_broker_network():
    out = run_example("broker_network.py")
    assert "subscriptions registered across the overlay" in out
    assert "pruned routing" in out
    assert "suppression ratio" in out
    assert "routing_table=" in out
    assert "suppressed)" in out
    assert "memory_pressure" in out
    assert "busiest subscriber" in out


@pytest.mark.slow
def test_paper_experiment():
    out = run_example("paper_experiment.py", timeout=600)
    assert "10 predicates" in out
    assert "normalized slope" in out
    assert "counting exhausts the memory budget" in out


def test_sharded_throughput():
    out = run_example("sharded_throughput.py")
    assert "600 subscribers registered" in out
    assert "per-shard stats" in out
    assert out.count("shard ") >= 4
    assert "shard-scaling sweep" in out
    assert "speedup is relative to the unsharded single-shard baseline" in out
