"""Unit and property tests for the byte codecs and the tree arena."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predicates import PredicateRegistry
from repro.subscriptions import (
    BasicTreeCodec,
    CorruptEncodingError,
    EncodingError,
    NodeKind,
    SubscriptionTree,
    TreeArena,
    TreeNode,
    VarintTreeCodec,
    parse,
)

from helpers import random_expressions

CODECS = [BasicTreeCodec(), VarintTreeCodec()]


def tree_of(text):
    registry = PredicateRegistry()
    return SubscriptionTree.from_expression(parse(text), registry.register)


def leaf_node(pid):
    return TreeNode(NodeKind.LEAF, predicate_id=pid)


class TestBasicCodecLayout:
    """The exact byte layout of paper §3.3."""

    def test_leaf_is_four_bytes(self):
        codec = BasicTreeCodec()
        encoded = codec.encode(SubscriptionTree(leaf_node(7)))
        assert encoded == (7).to_bytes(4, "big")

    def test_operator_node_layout(self):
        codec = BasicTreeCodec()
        tree = SubscriptionTree(
            TreeNode(NodeKind.AND, children=(leaf_node(1), leaf_node(2)))
        )
        encoded = codec.encode(tree)
        # opcode, child count, two 2-byte widths, two 4-byte ids
        assert len(encoded) == 1 + 1 + 2 * 2 + 2 * 4
        assert encoded[0] == NodeKind.AND
        assert encoded[1] == 2
        assert encoded[2:4] == (4).to_bytes(2, "big")

    def test_paper_costs_per_field(self):
        """1B operator + 1B count + 2B/child width + 4B/predicate id."""
        codec = BasicTreeCodec()
        tree = tree_of("(a > 10 or a <= 5 or b = 1) and (c <= 20 or c = 30 or d = 5)")
        # root: 2 + 2*2; per OR: 2 + 3*2; 6 leaves: 6*4
        expected = (2 + 2 * 2) + 2 * (2 + 3 * 2) + 6 * 4
        assert codec.encoded_size(tree) == len(codec.encode(tree)) == expected

    def test_predicate_id_width_limit(self):
        codec = BasicTreeCodec()
        with pytest.raises(EncodingError):
            codec.encode(SubscriptionTree(leaf_node(2 ** 32)))

    def test_children_count_limit(self):
        codec = BasicTreeCodec()
        children = tuple(leaf_node(i + 1) for i in range(256))
        tree = SubscriptionTree(TreeNode(NodeKind.AND, children=children))
        with pytest.raises(EncodingError):
            codec.encode(tree)


class TestCorruption:
    def test_basic_rejects_zero_predicate_id(self):
        with pytest.raises(CorruptEncodingError):
            BasicTreeCodec().decode(b"\x00\x00\x00\x00")

    def test_basic_rejects_impossible_width(self):
        with pytest.raises(CorruptEncodingError):
            BasicTreeCodec().decode(b"\x01\x02\x00\x04\x00")

    def test_basic_rejects_unknown_opcode(self):
        data = bytes([9, 2, 0, 4, 0, 4]) + (1).to_bytes(4, "big") * 2
        with pytest.raises(CorruptEncodingError):
            BasicTreeCodec().decode(data)

    def test_basic_rejects_inconsistent_widths(self):
        data = bytes([1, 2, 0, 4, 0, 8]) + (1).to_bytes(4, "big") * 2
        with pytest.raises(CorruptEncodingError):
            BasicTreeCodec().decode(data)

    def test_varint_rejects_truncated_input(self):
        codec = VarintTreeCodec()
        tree = tree_of("a = 1 and b = 2")
        encoded = codec.encode(tree)
        with pytest.raises(CorruptEncodingError):
            codec.decode(encoded[:-1])

    def test_varint_rejects_zero_predicate_id(self):
        with pytest.raises(CorruptEncodingError):
            VarintTreeCodec().decode(b"\x00")

    def test_varint_width_mismatch_detected(self):
        codec = VarintTreeCodec()
        encoded = codec.encode(tree_of("a = 1"))
        with pytest.raises(CorruptEncodingError):
            codec.decode(encoded + b"\x04", width=len(encoded) + 1)


@pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
class TestCodecBehaviour:
    def test_roundtrip_simple(self, codec):
        tree = tree_of("(a > 1 or b <= 2) and not c = 3")
        assert codec.decode(codec.encode(tree)) == tree

    def test_evaluate_without_decoding(self, codec):
        tree = tree_of("a = 1 and (b = 2 or c = 3)")
        encoded = codec.encode(tree)
        ids = sorted(tree.predicate_ids())
        assert codec.evaluate(encoded, 0, len(encoded), {ids[0], ids[1]})
        assert not codec.evaluate(encoded, 0, len(encoded), {ids[1]})

    def test_predicate_ids_from_bytes(self, codec):
        tree = tree_of("(a = 1 or b = 2) and a = 1")
        encoded = codec.encode(tree)
        from_bytes = sorted(codec.predicate_ids(encoded, 0, len(encoded)))
        assert from_bytes == sorted(tree.root.predicate_ids())

    def test_evaluate_at_offset(self, codec):
        tree = tree_of("a = 1 or b = 2")
        encoded = codec.encode(tree)
        buffer = b"\xff" * 3 + encoded
        assert codec.evaluate(buffer, 3, len(encoded), tree.predicate_ids())

    @given(random_expressions(), st.sets(st.integers(1, 6)))
    @settings(max_examples=80)
    def test_encoded_evaluation_matches_tree(self, codec, expression, fulfilled):
        registry = PredicateRegistry()
        tree = SubscriptionTree.from_expression(expression, registry.register)
        encoded = codec.encode(tree)
        assert codec.evaluate(encoded, 0, len(encoded), fulfilled) == (
            tree.evaluate(fulfilled)
        )

    @given(random_expressions())
    @settings(max_examples=80)
    def test_roundtrip_random_trees(self, codec, expression):
        registry = PredicateRegistry()
        tree = SubscriptionTree.from_expression(expression, registry.register)
        assert codec.decode(codec.encode(tree)) == tree


class TestVarintImprovement:
    def test_varint_is_smaller_on_paper_trees(self):
        """The §5 'improved encoding' claim, quantified."""
        basic, varint = BasicTreeCodec(), VarintTreeCodec()
        tree = tree_of(
            "(a > 10 or a <= 5 or b = 1) and (c <= 20 or c = 30 or d = 5)"
        )
        assert varint.encoded_size(tree) < basic.encoded_size(tree)

    def test_varint_large_ids_still_roundtrip(self):
        codec = VarintTreeCodec()
        tree = SubscriptionTree(
            TreeNode(NodeKind.OR, children=(leaf_node(2 ** 40), leaf_node(3)))
        )
        assert codec.decode(codec.encode(tree)) == tree


class TestTreeArena:
    def test_add_returns_location(self):
        arena = TreeArena()
        offset, width = arena.add(b"abcd")
        assert (offset, width) == (0, 4)
        offset, width = arena.add(b"efghij")
        assert (offset, width) == (4, 6)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TreeArena().add(b"")

    def test_live_and_dead_accounting(self):
        arena = TreeArena()
        loc1 = arena.add(b"aaaa")
        arena.add(b"bbbb")
        assert arena.live_bytes == 8
        arena.free(*loc1)
        assert arena.live_bytes == 4
        assert arena.dead_bytes == 4

    def test_free_unknown_raises(self):
        arena = TreeArena()
        arena.add(b"aaaa")
        with pytest.raises(KeyError):
            arena.free(1, 4)
        with pytest.raises(KeyError):
            arena.free(0, 3)

    def test_double_free_raises(self):
        arena = TreeArena()
        loc = arena.add(b"aaaa")
        arena.free(*loc)
        with pytest.raises(KeyError):
            arena.free(*loc)

    def test_compaction_threshold(self):
        arena = TreeArena(compaction_threshold=0.5)
        first = arena.add(b"a" * 10)
        arena.add(b"b" * 4)
        assert not arena.needs_compaction()
        arena.free(*first)
        assert arena.needs_compaction()

    def test_compact_relocates_and_preserves_content(self):
        arena = TreeArena()
        first = arena.add(b"aaaa")
        second = arena.add(b"bbbb")
        third = arena.add(b"cccc")
        arena.free(*second)
        relocations = arena.compact()
        assert arena.size == 8
        assert arena.dead_bytes == 0
        new_first = relocations[first[0]]
        new_third = relocations[third[0]]
        assert bytes(arena.buffer[new_first:new_first + 4]) == b"aaaa"
        assert bytes(arena.buffer[new_third:new_third + 4]) == b"cccc"

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            TreeArena(compaction_threshold=0.0)
