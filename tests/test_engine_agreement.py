"""Cross-engine agreement: every engine computes the same matches.

The brute-force engine is the oracle (it evaluates the user's expression
directly); all other engines — including both non-canonical codecs and
evaluation modes, the counting pair, and the paged engine — must agree
with it on arbitrary workloads, both for full two-phase matching on
events and for phase-2-only matching on fulfilled-id sets.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BruteForceEngine,
    CountingEngine,
    CountingVariantEngine,
    NonCanonicalEngine,
    PagedNonCanonicalEngine,
)
from repro.events import Event
from repro.indexes import IndexManager
from repro.predicates import PredicateRegistry
from repro.workloads import (
    EventGenerator,
    GeneralSubscriptionGenerator,
    PaperSubscriptionGenerator,
)

from helpers import make_all_engines


def register_everywhere(engines, subscriptions):
    for subscription in subscriptions:
        for engine in engines:
            engine.register(subscription)


class TestOnPaperWorkload:
    @pytest.mark.parametrize("predicates", [6, 8, 10])
    def test_phase2_agreement(self, predicates):
        engines = make_all_engines()
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=predicates, seed=predicates
        )
        register_everywhere(engines, generator.subscriptions(40))
        registry = engines[0].registry
        universe = list(range(1, len(registry) + 1))
        import random

        rng = random.Random(13)
        for _ in range(30):
            fulfilled = set(rng.sample(universe, min(60, len(universe))))
            answers = [engine.match_fulfilled(fulfilled) for engine in engines]
            assert all(answer == answers[0] for answer in answers), (
                [engine.name for engine in engines]
            )

    def test_full_pipeline_agreement_on_events(self):
        engines = make_all_engines()
        generator = GeneralSubscriptionGenerator(seed=3, allow_not=False)
        register_everywhere(engines, generator.subscriptions(50))
        events = EventGenerator(
            attribute_pool=8, attributes_per_event=5, value_range=100, seed=4
        )
        oracle = engines[-1]
        assert isinstance(oracle, BruteForceEngine)
        # events over the generator's attribute space
        import random

        rng = random.Random(9)
        for _ in range(60):
            payload = {}
            for name in ("price", "volume", "qty", "score"):
                if rng.random() < 0.8:
                    payload[name] = rng.randint(0, 100)
            for name in ("symbol", "category"):
                if rng.random() < 0.8:
                    payload[name] = "".join(
                        rng.choice("abcde") for _ in range(rng.randint(1, 4))
                    )
            event = Event(payload)
            expected = oracle.match(event)
            for engine in engines[:-1]:
                assert engine.match(event) == expected, engine.name


class TestPagedAgreement:
    def test_paged_equals_in_memory(self):
        registry = PredicateRegistry()
        indexes = IndexManager()
        paged = PagedNonCanonicalEngine(registry=registry, indexes=indexes)
        plain = NonCanonicalEngine(registry=registry, indexes=indexes)
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=6, seed=21
        )
        for subscription in generator.subscriptions(50):
            paged.register(subscription)
            plain.register(subscription)
        import random

        rng = random.Random(2)
        universe = list(range(1, len(registry) + 1))
        for _ in range(25):
            fulfilled = set(rng.sample(universe, 30))
            assert paged.match_fulfilled(fulfilled) == plain.match_fulfilled(
                fulfilled
            )
        paged.close()


class TestAgreementUnderChurn:
    def test_agreement_preserved_across_unsubscriptions(self):
        engines = [
            NonCanonicalEngine(),
            CountingEngine(support_unsubscription=True),
            CountingVariantEngine(support_unsubscription=False),
            BruteForceEngine(),
        ]
        generator = GeneralSubscriptionGenerator(seed=8, allow_not=False)
        subscriptions = generator.subscriptions(30)
        register_everywhere(engines, subscriptions)
        import random

        rng = random.Random(4)
        doomed = rng.sample(subscriptions, 12)
        for subscription in doomed:
            for engine in engines:
                engine.unregister(subscription.subscription_id)
        for _ in range(40):
            payload = {
                "price": rng.randint(0, 100),
                "volume": rng.randint(0, 100),
                "qty": rng.randint(0, 100),
                "score": rng.randint(0, 100),
                "symbol": "".join(rng.choice("abcde") for _ in range(3)),
                "category": "".join(rng.choice("abcde") for _ in range(2)),
            }
            event = Event(payload)
            answers = [engine.match(event) for engine in engines]
            assert all(answer == answers[0] for answer in answers)


class TestHypothesisAgreement:
    @given(st.integers(0, 10_000), st.integers(2, 14))
    @settings(max_examples=30, deadline=None)
    def test_random_workloads_and_fulfilled_sets(self, seed, fulfilled_count):
        engines = make_all_engines()
        generator = GeneralSubscriptionGenerator(seed=seed, allow_not=False)
        register_everywhere(engines, generator.subscriptions(12))
        registry = engines[0].registry
        universe = list(range(1, len(registry) + 1))
        import random

        rng = random.Random(seed)
        fulfilled = set(
            rng.sample(universe, min(fulfilled_count, len(universe)))
        )
        answers = {
            engine.name + str(index): engine.match_fulfilled(fulfilled)
            for index, engine in enumerate(engines)
        }
        values = list(answers.values())
        assert all(value == values[0] for value in values), answers
