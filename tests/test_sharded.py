"""Sharded runtime: parity with unsharded engines across all executors.

The contract under test: a :class:`~repro.core.sharded.ShardedEngine`
over any inner engine spec returns **exactly** the match sets of the
unsharded engine — on the agreement corpus, per event and per batch,
under interleaved subscribe/unsubscribe churn, and for the serial,
thread, and process executor strategies.  Plus the partitioner, spec
round-trips, the introspection surface, and the broker/network
reporting built on it.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro import (
    Broker,
    BrokerNetwork,
    EngineSpec,
    ShardedEngine,
    SimulatedMachine,
    UnsupportedSubscriptionError,
    build_engine,
    executor_names,
    make_executor,
    register_executor,
    shard_index,
    spec_of,
)
from repro.core.sharded import SerialExecutor
from repro.indexes import IndexManager
from repro.predicates import PredicateRegistry
from repro.workloads import ChurnScenario, SkewedHotKeyScenario

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

#: Canonical engine name -> inner-spec options making it churn-capable.
ENGINE_OPTIONS = {
    "noncanonical": {},
    "counting": {"support_unsubscription": True},
    "counting-variant": {},
    "matching-tree": {},
    "bruteforce": {},
    "paged": {},
}

ALL_ENGINES = tuple(ENGINE_OPTIONS)
EXECUTORS = ("serial", "thread", "process")


def inner_spec(engine_name: str) -> EngineSpec:
    return EngineSpec(engine_name, ENGINE_OPTIONS[engine_name])


def sharded(engine_name: str, *, shards: int = 4, executor: str = "serial",
            **kwargs) -> ShardedEngine:
    return ShardedEngine(
        inner_spec(engine_name), shards=shards, executor=executor, **kwargs
    )


def needs_fork(executor: str):
    return pytest.mark.skipif(
        executor == "process" and not HAS_FORK,
        reason="process executor needs the fork start method",
    )


@pytest.fixture(scope="module")
def corpus():
    """The agreement corpus: skewed hot-key subscriptions and events."""
    scenario = SkewedHotKeyScenario(seed=11)
    return scenario.subscriptions(48), scenario.events(96)


# ----------------------------------------------------------------------
# the partitioner
# ----------------------------------------------------------------------
def test_partitioner_is_stable_and_in_range():
    for sid in (1, 2, 17, 1_000_003):
        assert shard_index(sid, 4) == shard_index(sid, 4)
        assert 0 <= shard_index(sid, 4) < 4
        assert shard_index(sid, 1) == 0


def test_partitioner_spreads_consecutive_ids():
    counts = [0, 0, 0, 0]
    for sid in range(1, 1001):
        counts[shard_index(sid, 4)] += 1
    # multiplicative hashing: no shard may starve or hog on dense ids
    assert min(counts) > 150
    assert max(counts) < 350


def test_partitioner_rejects_nonpositive_shard_count():
    with pytest.raises(ValueError):
        shard_index(1, 0)


# ----------------------------------------------------------------------
# parity on the agreement corpus — all engines, all executors
# ----------------------------------------------------------------------
@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("engine_name", ALL_ENGINES)
def test_sharded_parity_on_corpus(engine_name, executor, corpus):
    if executor == "process" and not HAS_FORK:
        pytest.skip("process executor needs the fork start method")
    subscriptions, events = corpus
    plain = inner_spec(engine_name).build()
    for subscription in subscriptions:
        plain.register(subscription)
    expected_batch = plain.match_batch(events)
    with sharded(engine_name, executor=executor) as engine:
        for subscription in subscriptions:
            engine.register(subscription)
        assert engine.subscription_ids() == plain.subscription_ids()
        assert engine.subscription_count == plain.subscription_count
        assert sum(s.subscription_count for s in engine.shards) == len(
            subscriptions
        )
        # byte-identical match sets, batch and per event
        assert engine.match_batch(events) == expected_batch
        for event in events[:16]:
            assert engine.match(event) == plain.match(event)


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("engine_name", ALL_ENGINES)
def test_sharded_parity_under_churn(engine_name, executor, corpus):
    """Interleaved subscribe/unsubscribe/publish, matched in batches.

    Publishes are flushed through ``match_batch`` every few operations,
    so the process executor's workers are live *during* the churn and
    must stay current through forwarded register/unregister commands.
    """
    if executor == "process" and not HAS_FORK:
        pytest.skip("process executor needs the fork start method")
    ops = list(ChurnScenario(seed=29, warmup_subscriptions=12).ops(90))
    plain = inner_spec(engine_name).build()
    with sharded(engine_name, executor=executor) as engine:

        def drive(target) -> list[list[set[int]]]:
            trace, pending = [], []
            for kind, payload in ops:
                if kind == "subscribe":
                    target.register(payload)
                elif kind == "unsubscribe":
                    target.unregister(payload)
                else:
                    pending.append(payload)
                    if len(pending) == 8:
                        trace.append(target.match_batch(pending))
                        pending = []
            if pending:
                trace.append(target.match_batch(pending))
            return trace

        assert drive(engine) == drive(plain)
        assert engine.subscription_ids() == plain.subscription_ids()


def test_sharded_match_fulfilled_parity(corpus):
    """Phase-2-only parity: shards share the parent's phase-1 state, so
    fulfilled-id sets mean the same thing sharded or not."""
    subscriptions, events = corpus
    registry = PredicateRegistry()
    indexes = IndexManager()
    plain = build_engine("noncanonical", registry=registry, indexes=indexes)
    engine = ShardedEngine(
        "noncanonical", shards=4, registry=registry, indexes=indexes
    )
    for subscription in subscriptions:
        plain.register(subscription)
        engine.register(subscription)
    fulfilled_sets = [indexes.match(event) for event in events[:24]]
    for fulfilled in fulfilled_sets:
        assert engine.match_fulfilled(fulfilled) == plain.match_fulfilled(
            fulfilled
        )
    assert engine.match_fulfilled_batch(
        fulfilled_sets
    ) == plain.match_fulfilled_batch(fulfilled_sets)


def test_shards_one_equals_unsharded(corpus):
    subscriptions, events = corpus
    plain = build_engine("noncanonical")
    engine = ShardedEngine("noncanonical", shards=1)
    for subscription in subscriptions:
        plain.register(subscription)
        engine.register(subscription)
    assert engine.match_batch(events) == plain.match_batch(events)
    assert engine.memory_bytes() == plain.memory_bytes()


# ----------------------------------------------------------------------
# registration semantics
# ----------------------------------------------------------------------
def test_duplicate_and_unknown_ids_raise(corpus):
    subscriptions, _ = corpus
    engine = ShardedEngine("noncanonical", shards=4)
    engine.register(subscriptions[0])
    with pytest.raises(ValueError):
        engine.register(subscriptions[0])
    from repro import UnknownSubscriptionError

    with pytest.raises(UnknownSubscriptionError):
        engine.unregister(10_000_000)


def test_unsupported_subscription_leaves_no_trace():
    """A shard rejecting a subscription must not corrupt the runtime."""
    from repro import Subscription

    engine = ShardedEngine(EngineSpec("counting"), shards=4)
    bad = Subscription.from_text("not a > 1")  # negative literal
    with pytest.raises(UnsupportedSubscriptionError):
        engine.register(bad)
    assert engine.subscription_count == 0
    assert engine.subscription_ids() == frozenset()


def test_shard_slices_partition_the_population(corpus):
    subscriptions, _ = corpus
    engine = ShardedEngine("noncanonical", shards=4)
    for subscription in subscriptions:
        engine.register(subscription)
    slices = engine.shard_subscription_slices()
    assert len(slices) == 4
    ids = [s.subscription_id for shard_slice in slices for s in shard_slice]
    assert len(ids) == len(set(ids)) == len(subscriptions)
    for index, shard_slice in enumerate(slices):
        for subscription in shard_slice:
            assert engine.shard_of(subscription.subscription_id) == index


# ----------------------------------------------------------------------
# specs, registry round-trips, executor registry
# ----------------------------------------------------------------------
def test_spec_shorthand_and_roundtrip():
    assert EngineSpec("noncanonical×4") == EngineSpec(
        "noncanonical", {"shards": 4}
    )
    assert EngineSpec("non-canonical x 2").options["shards"] == 2
    engine = build_engine("counting-variant×3", executor="thread")
    assert isinstance(engine, ShardedEngine)
    assert engine.shard_count == 3
    assert engine.executor_name == "thread"
    spec = spec_of(engine)
    assert spec.name == "counting-variant"
    assert spec.options["shards"] == 3
    rebuilt = spec.build()
    assert isinstance(rebuilt, ShardedEngine)
    assert rebuilt.shard_count == 3
    assert rebuilt.executor_name == "thread"


def test_spec_validation_errors():
    with pytest.raises(ValueError):
        EngineSpec("noncanonical×4", {"shards": 2})  # contradictory
    with pytest.raises(ValueError):
        build_engine("noncanonical", executor="thread")  # executor w/o shards
    with pytest.raises(ValueError):
        ShardedEngine(EngineSpec("noncanonical", {"shards": 2}), shards=2)
    with pytest.raises(ValueError):
        ShardedEngine("noncanonical", shards=0)
    with pytest.raises(ValueError):
        ShardedEngine("noncanonical", shards=2, executor="warp-drive")


def test_executor_registry():
    assert set(executor_names()) >= {"serial", "thread", "process"}
    instance = SerialExecutor()
    assert make_executor(instance) is instance
    with pytest.raises(ValueError):
        register_executor("serial", SerialExecutor)


def test_inner_options_flow_to_shards():
    engine = build_engine("noncanonical", shards=2, codec="varint")
    assert spec_of(engine.shards[0]).name == "noncanonical"
    assert engine.spec.options == {"codec": "varint"}


# ----------------------------------------------------------------------
# stats and broker/network integration
# ----------------------------------------------------------------------
def test_stats_surface(corpus):
    subscriptions, _ = corpus
    engine = sharded("noncanonical")
    for subscription in subscriptions:
        engine.register(subscription)
    stats = engine.stats()
    assert stats["shards"] == 4
    assert stats["executor"] == "serial"
    assert stats["subscriptions"] == len(subscriptions)
    per_shard = engine.shard_stats()
    assert [entry["shard"] for entry in per_shard] == [0, 1, 2, 3]
    assert sum(entry["subscriptions"] for entry in per_shard) == len(
        subscriptions
    )
    assert sum(entry["memory_bytes"] for entry in per_shard) == stats[
        "memory_bytes"
    ]


def test_broker_with_sharded_spec_and_aggregated_pressure():
    machine = SimulatedMachine(total_memory_bytes=1 << 20, os_reserved_bytes=0)
    broker = Broker("hub", engine="noncanonical×4", machine=machine)
    scenario = SkewedHotKeyScenario(seed=3)
    handles = [broker.subscribe(s) for s in scenario.subscriptions(24)]
    assert broker.subscription_count == 24
    per_shard = broker.shard_stats()
    assert len(per_shard) == 4
    aggregated = sum(entry["memory_bytes"] for entry in per_shard)
    assert broker.memory_pressure() == aggregated / machine.available_bytes
    assert broker.engine_stats()["shards"] == 4
    # matching + handle lifecycle work through the sharded engine
    notifications = broker.publish(scenario.events(16))
    assert len(notifications) == 16
    handles[0].unsubscribe()
    assert broker.subscription_count == 23


def test_unsharded_broker_shard_stats_is_uniform():
    broker = Broker("solo", engine="counting")
    assert [entry["engine"] for entry in broker.shard_stats()] == ["counting"]


def test_network_with_sharded_brokers():
    network = BrokerNetwork()
    network.add_broker("edge", engine="noncanonical×2")
    network.add_broker(
        "hub",
        engine="counting×2",
        machine=SimulatedMachine(total_memory_bytes=1 << 20, os_reserved_bytes=0),
    )
    network.connect("edge", "hub")
    scenario = SkewedHotKeyScenario(seed=7)
    handles = [
        network.subscribe("hub", subscription)
        for subscription in scenario.subscriptions(12)
    ]
    events = scenario.events(32)
    batched = network.publish("edge", events)
    report = network.shard_report()
    assert len(report["edge"]) == 2 and len(report["hub"]) == 2
    pressure = network.memory_pressure()
    assert pressure["edge"] == 0.0  # no machine model attached
    assert pressure["hub"] > 0.0
    # deliveries equal a single sharded broker's answers
    solo = Broker("oracle", engine="noncanonical×2")
    sinks = {}
    from repro import Subscription

    for handle in handles:
        solo.subscribe(
            Subscription(
                expression=handle.subscription.expression,
                subscriber=handle.subscriber,
                subscription_id=handle.id,
            )
        )
    for event, deliveries in zip(events, batched):
        assert {n.subscription_id for n in deliveries} == solo.engine.match(
            event
        )


# ----------------------------------------------------------------------
# process executor specifics
# ----------------------------------------------------------------------
@pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
def test_process_executor_lazy_start_and_close(corpus):
    subscriptions, events = corpus
    engine = sharded("noncanonical", executor="process")
    executor = engine._executor
    for subscription in subscriptions[:16]:
        engine.register(subscription)
    assert not executor._started  # registration alone must not fork
    first = engine.match_batch(events[:8])
    assert executor._started
    assert len(executor._processes) == 4
    # phase-2-only calls run in-process and still agree
    fulfilled = engine.indexes.match(events[0])
    assert engine.match_fulfilled(fulfilled) == first[0]
    engine.close()
    assert not executor._started
    assert executor._processes == []
    # a fresh batch after close restarts the workers from current state
    assert engine.match_batch(events[:8]) == first
    engine.close()
