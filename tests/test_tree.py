"""Unit tests for subscription trees (repro.subscriptions.tree)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.predicates import PredicateRegistry
from repro.subscriptions import (
    NodeKind,
    SubscriptionTree,
    TreeNode,
    parse,
)

from helpers import random_expressions


def compile_text(text):
    registry = PredicateRegistry()
    tree = SubscriptionTree.from_expression(parse(text), registry.register)
    return tree, registry


class TestTreeNodeValidation:
    def test_leaf_needs_positive_id(self):
        with pytest.raises(ValueError):
            TreeNode(NodeKind.LEAF, predicate_id=0)

    def test_leaf_takes_no_children(self):
        with pytest.raises(ValueError):
            TreeNode(
                NodeKind.LEAF,
                predicate_id=1,
                children=(TreeNode(NodeKind.LEAF, predicate_id=2),),
            )

    def test_not_takes_exactly_one_child(self):
        child = TreeNode(NodeKind.LEAF, predicate_id=1)
        TreeNode(NodeKind.NOT, children=(child,))
        with pytest.raises(ValueError):
            TreeNode(NodeKind.NOT, children=(child, child))

    def test_nary_needs_two_children(self):
        child = TreeNode(NodeKind.LEAF, predicate_id=1)
        with pytest.raises(ValueError):
            TreeNode(NodeKind.AND, children=(child,))


class TestCompilation:
    def test_leaves_carry_registry_ids(self):
        tree, registry = compile_text("a > 1 and b = 2")
        assert tree.predicate_ids() == {1, 2}
        assert registry.predicate(1).attribute in ("a", "b")

    def test_compilation_flattens(self):
        tree, _ = compile_text("a = 1 and b = 2 and c = 3")
        assert tree.root.kind is NodeKind.AND
        assert len(tree.root.children) == 3

    def test_shared_predicate_one_id(self):
        tree, registry = compile_text("a = 1 or (a = 1 and b = 2)")
        assert len(registry) == 2

    def test_node_count(self):
        tree, _ = compile_text("(a = 1 or b = 2) and c = 3")
        # AND root + OR + 3 leaves
        assert tree.node_count() == 5

    def test_roundtrip_to_expression(self):
        expression = parse("(a > 1 or b <= 2) and not c = 3")
        registry = PredicateRegistry()
        tree = SubscriptionTree.from_expression(expression, registry.register)
        back = tree.to_expression(registry.predicate)
        assert back == expression.flattened()


class TestEvaluation:
    def test_and_evaluation(self):
        tree, _ = compile_text("a = 1 and b = 2")
        ids = tree.predicate_ids()
        assert tree.evaluate(ids)
        assert not tree.evaluate(set(list(ids)[:1]))

    def test_or_evaluation(self):
        tree, _ = compile_text("a = 1 or b = 2")
        for pid in tree.predicate_ids():
            assert tree.evaluate({pid})
        assert not tree.evaluate(set())

    def test_not_evaluation(self):
        tree, _ = compile_text("not a = 1")
        assert tree.evaluate(set())
        assert not tree.evaluate(tree.predicate_ids())

    def test_paper_example(self):
        tree, registry = compile_text(
            "(a > 10 or a <= 5 or b = 1) and (c <= 20 or c = 30 or d = 5)"
        )
        by_str = {str(registry.predicate(pid)): pid for pid in tree.predicate_ids()}
        assert tree.evaluate({by_str["a > 10"], by_str["c = 30"]})
        assert not tree.evaluate({by_str["a > 10"], by_str["a <= 5"]})

    @given(random_expressions(), st.sets(st.integers(1, 6)))
    def test_tree_agrees_with_ast(self, expression, fulfilled):
        registry = PredicateRegistry()
        tree = SubscriptionTree.from_expression(expression, registry.register)
        expected = expression.evaluate_with_ids(fulfilled, registry.identifier)
        assert tree.evaluate(fulfilled) == expected


class TestReordering:
    def test_and_puts_least_likely_first(self):
        tree, _ = compile_text("a = 1 and b = 2")
        ids = sorted(tree.predicate_ids())
        selectivity = {ids[0]: 0.9, ids[1]: 0.1}
        reordered = tree.reordered_by_selectivity(selectivity)
        assert reordered.root.children[0].predicate_id == ids[1]

    def test_or_puts_most_likely_first(self):
        tree, _ = compile_text("a = 1 or b = 2")
        ids = sorted(tree.predicate_ids())
        selectivity = {ids[0]: 0.1, ids[1]: 0.9}
        reordered = tree.reordered_by_selectivity(selectivity)
        assert reordered.root.children[0].predicate_id == ids[1]

    def test_reordering_recurses_into_groups(self):
        tree, _ = compile_text("(a = 1 or b = 2) and (c = 3 or d = 4)")
        ids = sorted(tree.predicate_ids())
        # make the second OR group very likely true -> it should move last
        selectivity = {ids[0]: 0.5, ids[1]: 0.5, ids[2]: 0.99, ids[3]: 0.99}
        reordered = tree.reordered_by_selectivity(selectivity)
        first_group_ids = {c.predicate_id for c in reordered.root.children[0].children}
        assert first_group_ids == {ids[0], ids[1]}

    @given(random_expressions(), st.sets(st.integers(1, 6)))
    def test_reordering_preserves_semantics(self, expression, fulfilled):
        registry = PredicateRegistry()
        tree = SubscriptionTree.from_expression(expression, registry.register)
        selectivity = {pid: (pid % 10) / 10 for pid in tree.predicate_ids()}
        reordered = tree.reordered_by_selectivity(selectivity)
        assert reordered.evaluate(fulfilled) == tree.evaluate(fulfilled)

    def test_missing_selectivity_defaults(self):
        tree, _ = compile_text("a = 1 and b = 2")
        reordered = tree.reordered_by_selectivity({})
        assert reordered.predicate_ids() == tree.predicate_ids()


class TestEqualityAndRepr:
    def test_structural_equality(self):
        first, _ = compile_text("a = 1 and b = 2")
        second, _ = compile_text("a = 1 and b = 2")
        assert first == second

    def test_repr_shows_structure(self):
        tree, _ = compile_text("a = 1 and b = 2")
        assert "AND" in repr(tree)
