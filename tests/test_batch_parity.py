"""Batch-vs-sequential parity: the batch pipeline may only be faster.

For every engine, ``match_batch(events)`` must equal
``[match(e) for e in events]`` — over randomized workloads, including
NOT-rooted subscriptions (empty-assignment matchers, which candidate
selection alone would miss), unregister-then-match interleavings, and
the broker / overlay-network publishing paths.
"""

from __future__ import annotations

import random

import pytest

from repro import EngineSpec, UnsupportedSubscriptionError
from repro.broker import Broker, BrokerNetwork
from repro.events import Event
from repro.subscriptions import Subscription
from repro.workloads import GeneralSubscriptionGenerator

from helpers import SELECTED_ENGINE

#: (id, spec, allow_not) — engines are constructed from registry specs.
#: NOT-capable engines get NOT-bearing workloads (exercising
#: empty-assignment matchers); the conjunctive pipeline engines get
#: positive-literal workloads they can register.
ENGINE_CASES = [
    ("noncanonical", EngineSpec("noncanonical"), True),
    (
        "noncanonical-varint",
        EngineSpec("noncanonical", {"codec": "varint"}),
        True,
    ),
    (
        "noncanonical-encoded",
        EngineSpec("noncanonical", {"evaluation": "encoded"}),
        True,
    ),
    ("paged", EngineSpec("paged"), True),
    ("bruteforce", EngineSpec("bruteforce"), True),
    (
        "counting",
        EngineSpec("counting", {"support_unsubscription": True}),
        False,
    ),
    ("counting-variant", EngineSpec("counting-variant"), False),
    ("matching-tree", EngineSpec("matching-tree"), False),
]

if SELECTED_ENGINE is not None:
    # the CI engine matrix (REPRO_ENGINE=<name>) runs one engine's cases
    ENGINE_CASES = [
        case for case in ENGINE_CASES if case[1].name == SELECTED_ENGINE
    ]

_NUMERIC = ("price", "volume", "qty", "score")
_STRING = ("symbol", "category")


def _random_events(rng: random.Random, count: int) -> list[Event]:
    """Events over the general generator's attribute pools, with repeats
    (small domains) so the batch memoization paths actually trigger."""
    events = []
    for _ in range(count):
        attributes = {}
        for name in _NUMERIC:
            if rng.random() < 0.7:
                attributes[name] = rng.randint(0, 30)
        for name in _STRING:
            if rng.random() < 0.5:
                attributes[name] = "".join(
                    rng.choice("abcde") for _ in range(rng.randint(1, 3))
                )
        events.append(Event(attributes))
    return events


def _register_population(engine, *, allow_not: bool, count: int) -> list[int]:
    generator = GeneralSubscriptionGenerator(
        seed=11, allow_not=allow_not, value_range=30
    )
    registered = []
    for subscription in generator.subscriptions(count):
        try:
            engine.register(subscription)
        except UnsupportedSubscriptionError:
            continue
        registered.append(subscription.subscription_id)
    if allow_not:
        # NOT-rooted subscriptions match under the empty assignment: they
        # must surface in batch results even for events fulfilling none
        # of their predicates.
        for text in ("not price > 10", "not (qty = 3 and volume > 5)"):
            subscription = Subscription.from_text(text)
            engine.register(subscription)
            registered.append(subscription.subscription_id)
    return registered


@pytest.mark.parametrize(
    "spec, allow_not",
    [case[1:] for case in ENGINE_CASES],
    ids=[case[0] for case in ENGINE_CASES],
)
def test_match_batch_equals_sequential_match(spec, allow_not):
    rng = random.Random(20050610)
    engine = spec.build()
    registered = _register_population(engine, allow_not=allow_not, count=40)
    assert registered, "workload registered nothing"
    events = _random_events(rng, 64)
    assert engine.match_batch(events) == [engine.match(e) for e in events]


@pytest.mark.parametrize(
    "spec, allow_not",
    [case[1:] for case in ENGINE_CASES],
    ids=[case[0] for case in ENGINE_CASES],
)
def test_match_batch_parity_across_unregister_interleavings(spec, allow_not):
    """Register → batch → unregister a third → batch → register more →
    batch; parity must hold at every step."""
    rng = random.Random(4711)
    engine = spec.build()
    registered = _register_population(engine, allow_not=allow_not, count=30)
    events = _random_events(rng, 32)
    assert engine.match_batch(events) == [engine.match(e) for e in events]

    doomed = rng.sample(registered, k=len(registered) // 3)
    for subscription_id in doomed:
        engine.unregister(subscription_id)
    assert engine.match_batch(events) == [engine.match(e) for e in events]

    extra = GeneralSubscriptionGenerator(
        seed=99, allow_not=allow_not, value_range=30
    )
    for subscription in extra.subscriptions(10):
        try:
            engine.register(subscription)
        except UnsupportedSubscriptionError:
            continue
    assert engine.match_batch(events) == [engine.match(e) for e in events]


def test_match_fulfilled_batch_default_fallback():
    """The base-class default must already be batch-correct for any
    engine that doesn't override it."""
    engine = EngineSpec("noncanonical").build()
    _register_population(engine, allow_not=True, count=20)
    events = _random_events(random.Random(3), 16)
    fulfilled_sets = engine.indexes.match_batch(events)
    from repro import FilterEngine

    fallback = FilterEngine.match_fulfilled_batch(engine, fulfilled_sets)
    assert fallback == engine.match_fulfilled_batch(fulfilled_sets)


def test_broker_publish_batch_parity():
    """publish_batch must deliver exactly what per-event publish does,
    with identical stats movement."""
    broker = Broker("edge")
    received = []
    broker.subscribe(
        "price > 10 and symbol prefix 'a'",
        subscriber="s1",
        sink=received.append,
    )
    broker.subscribe("not price > 10", subscriber="s2")
    broker.subscribe("volume >= 5 or qty = 3", subscriber="s3")
    events = _random_events(random.Random(8), 40)

    sequential = [broker.publish(event) for event in events]
    stats_after_sequential = (
        broker.stats.events_matched,
        broker.stats.notifications_delivered,
    )
    batched = broker.publish_batch(events)

    assert batched == sequential
    assert broker.stats.events_published == 2 * len(events)
    assert broker.stats.batches_published == 1
    assert broker.stats.events_matched == 2 * stats_after_sequential[0]
    assert broker.stats.notifications_delivered == 2 * stats_after_sequential[1]
    # callbacks fired on both paths
    s1_notifications = sum(
        1
        for notifications in sequential
        for notification in notifications
        if notification.subscriber == "s1"
    )
    assert len(received) == 2 * s1_notifications


def test_network_publish_batch_parity():
    """Batched overlay routing delivers the same notifications as
    per-event routing, with one matching invocation per broker."""
    network = BrokerNetwork()
    for name in ("a", "b", "c", "d"):
        network.add_broker(Broker(name))
    network.connect("a", "b")
    network.connect("b", "c")
    network.connect("b", "d")
    network.subscribe("a", "price > 10", subscriber="alice")
    network.subscribe("c", "not price > 10", subscriber="carol")
    network.subscribe("d", "volume >= 5 and symbol prefix 'a'", subscriber="dan")
    events = _random_events(random.Random(21), 24)

    sequential = [network.publish("b", event) for event in events]
    matches_before = network.stats.matches_computed
    batched = network.publish_batch("b", events)

    # per-event delivery order follows that event's own traversal; the
    # batched traversal may differ, so compare as sets per event.
    assert [set(d) for d in batched] == [set(d) for d in sequential]
    # one match_batch invocation per broker reached by the batch
    assert network.stats.matches_computed - matches_before <= len(network)
    assert network.stats.batches_published == 1


def test_network_publish_batch_empty():
    network = BrokerNetwork()
    network.add_broker(Broker("solo"))
    assert network.publish_batch("solo", []) == []
