"""Unit tests for the multi-dimensional matching-tree engine."""

from __future__ import annotations

import random

import pytest

from repro import (
    BruteForceEngine,
    CountingEngine,
    UnknownSubscriptionError,
    UnsupportedSubscriptionError,
)
from repro import MatchingTreeEngine
from repro.events import Event
from repro.indexes import IndexManager
from repro.predicates import PredicateRegistry
from repro.subscriptions import Subscription
from repro.workloads import GeneralSubscriptionGenerator, PaperSubscriptionGenerator


def sub(text):
    return Subscription.from_text(text)


class TestBasics:
    def test_conjunctive_matching(self):
        engine = MatchingTreeEngine()
        s = sub("a = 1 and b = 2")
        engine.register(s)
        assert engine.match(Event({"a": 1, "b": 2})) == {s.subscription_id}
        assert engine.match(Event({"a": 1})) == set()

    def test_dont_care_attributes(self):
        engine = MatchingTreeEngine()
        first = sub("a = 1")
        second = sub("b = 2")
        engine.register(first)
        engine.register(second)
        assert engine.match(Event({"a": 1, "b": 2})) == {
            first.subscription_id, second.subscription_id,
        }
        assert engine.match(Event({"b": 2})) == {second.subscription_id}

    def test_disjunction_expands_to_clauses(self):
        engine = MatchingTreeEngine()
        s = sub("a = 1 or b = 2")
        engine.register(s)
        assert engine.subscription_count == 1
        assert engine.stored_subscription_count == 2
        assert engine.match(Event({"b": 2})) == {s.subscription_id}

    def test_multiple_predicates_per_attribute(self):
        engine = MatchingTreeEngine()
        s = sub("a > 1 and a < 5")
        engine.register(s)
        assert engine.match(Event({"a": 3})) == {s.subscription_id}
        assert engine.match(Event({"a": 7})) == set()

    def test_not_rejected(self):
        engine = MatchingTreeEngine()
        with pytest.raises(UnsupportedSubscriptionError):
            engine.register(sub("not a between [1, 2]"))

    def test_complement_mode(self):
        engine = MatchingTreeEngine(complement_operators=True)
        s = sub("not a > 5")
        engine.register(s)
        assert engine.match(Event({"a": 3})) == {s.subscription_id}

    def test_duplicate_registration_rejected(self):
        engine = MatchingTreeEngine()
        s = sub("a = 1")
        engine.register(s)
        with pytest.raises(ValueError):
            engine.register(s)

    def test_subscriber_lookup(self):
        engine = MatchingTreeEngine()
        s = Subscription.from_text("a = 1", subscriber="zoe")
        engine.register(s)
        assert engine.subscriber_of(s.subscription_id) == "zoe"


class TestSingleStepMatching:
    def test_single_step_equals_two_step(self):
        engine = MatchingTreeEngine()
        generator = GeneralSubscriptionGenerator(seed=4, allow_not=False)
        for s in generator.subscriptions(25):
            engine.register(s)
        rng = random.Random(1)
        for _ in range(40):
            event = Event({
                "price": rng.randint(0, 100),
                "volume": rng.randint(0, 100),
                "qty": rng.randint(0, 100),
                "score": rng.randint(0, 100),
                "symbol": "".join(rng.choice("abcde") for _ in range(3)),
                "category": "".join(rng.choice("abcde") for _ in range(2)),
            })
            assert engine.match_single_step(event) == engine.match(event)


class TestUnsubscription:
    def test_unregister_removes_and_prunes(self):
        engine = MatchingTreeEngine()
        first = sub("a = 1 and b = 2")
        second = sub("a = 1 or c = 3")
        engine.register(first)
        engine.register(second)
        engine.unregister(first.subscription_id)
        assert engine.subscription_count == 1
        assert engine.match(Event({"a": 1, "b": 2})) == {second.subscription_id}
        engine.unregister(second.subscription_id)
        assert engine.match(Event({"a": 1, "b": 2, "c": 3})) == set()
        assert len(engine.registry) == 0
        # tree fully pruned back to an empty root
        assert engine.memory_breakdown()["tree_edges"] == 0

    def test_unregister_unknown_raises(self):
        with pytest.raises(UnknownSubscriptionError):
            MatchingTreeEngine().unregister(31337)


class TestAgreement:
    def test_agrees_with_oracle_on_paper_workload(self):
        registry = PredicateRegistry()
        indexes = IndexManager()
        tree = MatchingTreeEngine(registry=registry, indexes=indexes)
        counting = CountingEngine(registry=registry, indexes=indexes)
        oracle = BruteForceEngine(registry=registry, indexes=indexes)
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=6, seed=17
        )
        for s in generator.subscriptions(40):
            tree.register(s)
            counting.register(s)
            oracle.register(s)
        rng = random.Random(2)
        universe = list(range(1, len(registry) + 1))
        for _ in range(30):
            fulfilled = set(rng.sample(universe, 30))
            expected = oracle.match_fulfilled(fulfilled)
            assert tree.match_fulfilled(fulfilled) == expected
            assert counting.match_fulfilled(fulfilled) == expected


class TestSpaceTimeTradeoff:
    """Paper §2.1: multi-dimensional trees are faster per match step but
    'might index predicates several times', costing memory."""

    def test_predicates_indexed_multiple_times(self):
        engine = MatchingTreeEngine()
        # pin attribute 'a' to level 0 so the b-predicate cannot become a
        # shared prefix
        anchor = sub("a = 0")
        engine.register(anchor)
        engine.register(sub("a = 1 and b = 7"))
        engine.register(sub("a = 2 and b = 7"))
        # b = 7 appears on two distinct paths: one edge per a-prefix,
        # even though the registry holds the predicate once
        edges = engine.memory_breakdown()["tree_edges"]
        # 5 edges (a=0, a=1, a=2, and b=7 twice), 1 pid each
        assert edges == 5 * (4 + 4)
        assert len(engine.registry) == 4

    def test_memory_exceeds_counting_on_paper_workload(self):
        registry = PredicateRegistry()
        indexes = IndexManager()
        tree = MatchingTreeEngine(registry=registry, indexes=indexes)
        counting = CountingEngine(registry=registry, indexes=indexes)
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=8, seed=3
        )
        for s in generator.subscriptions(40):
            tree.register(s)
            counting.register(s)
        assert tree.memory_bytes() > counting.memory_bytes()
