"""The benchmark observability subsystem: records, runner, comparator.

Covers the ISSUE-4 acceptance surface:

* reports round-trip through JSON (dict, text, file);
* a quick-style run produces a schema-valid report covering at least
  two engines, every scenario, and the explanatory counter metrics;
* the comparator passes a self-comparison and flags an artificially
  injected regression (time and memory), with hardware mismatch
  softening timing failures only;
* the match/probe counters that feed the reports are exposed through
  ``FilterEngine.stats()`` / ``Broker.engine_stats()`` and aggregate
  across shards.
"""

from __future__ import annotations

import json

import pytest

from repro import Broker, build_engine
from repro.bench import (
    QUICK,
    SCHEMA_VERSION,
    BenchRecord,
    BenchReport,
    SchemaError,
    compare_reports,
    environment_metadata,
    run_bench,
    scaled_down,
)
from repro.bench.cli import main as bench_main
from repro.bench.compare import main as compare_main
from repro.workloads import PaperSubscriptionGenerator
from helpers import ALL_ENGINE_NAMES


def make_record(**overrides) -> BenchRecord:
    """A valid record with field overrides, for schema tests."""
    fields = dict(
        scenario="throughput",
        engine="noncanonical",
        shards=1,
        executor="serial",
        batch_size=256,
        events=256,
        seconds=0.01,
        events_per_second=25_600.0,
        memory_bytes=4096,
        metrics={"candidates_probed_per_event": 12.5},
    )
    fields.update(overrides)
    return BenchRecord(**fields)


def make_report(*records: BenchRecord) -> BenchReport:
    return BenchReport(
        scale="quick",
        records=list(records) if records else [make_record()],
    )


# ----------------------------------------------------------------------
# records and JSON round-trip
# ----------------------------------------------------------------------
class TestRecords:
    def test_record_round_trips_through_dict(self):
        record = make_record()
        assert BenchRecord.from_dict(record.to_dict()) == record

    def test_report_round_trips_through_json_text(self):
        report = make_report(
            make_record(),
            make_record(engine="counting", metrics={}),
            make_record(scenario="churn", batch_size=1),
        )
        clone = BenchReport.from_json(report.to_json())
        assert clone.scale == report.scale
        assert clone.environment == report.environment
        assert clone.records == report.records
        assert clone.schema_version == SCHEMA_VERSION

    def test_report_round_trips_through_file(self, tmp_path):
        path = tmp_path / "report.json"
        report = make_report()
        report.save(str(path))
        clone = BenchReport.load(str(path))
        assert clone.records == report.records
        # the file is plain JSON — external tooling can read it
        assert json.loads(path.read_text())["schema_version"] == SCHEMA_VERSION

    def test_environment_metadata_fingerprints_the_machine(self):
        environment = environment_metadata()
        assert environment["cpu_count"] >= 1
        assert environment["python"]
        assert environment["machine"]

    def test_record_key_is_the_comparison_identity(self):
        record = make_record(shards=4, executor="thread")
        assert record.key == (
            "throughput",
            "noncanonical",
            4,
            "thread",
            "hash",
            256,
        )
        assert "×4" in record.label()

    def test_partitioner_defaults_to_hash_for_old_reports(self):
        # reports written before the routing layer carry no partitioner
        # field; they must load as hash-partitioned records so the
        # comparator matches them against fresh hash points
        data = make_record().to_dict()
        del data["partitioner"]
        record = BenchRecord.from_dict(data)
        assert record.partitioner == "hash"
        assert record.key[4] == "hash"

    def test_routed_partitioner_is_part_of_the_label(self):
        record = make_record(shards=8, partitioner="routed")
        assert "routed" in record.label()
        assert record.key[4] == "routed"

    @pytest.mark.parametrize(
        "overrides",
        [
            {"scenario": ""},
            {"engine": ""},
            {"shards": 0},
            {"batch_size": 0},
            {"events": 0},
            {"seconds": -1.0},
            {"events_per_second": 0.0},
            {"memory_bytes": -1},
        ],
    )
    def test_malformed_records_are_rejected(self, overrides):
        with pytest.raises(SchemaError):
            make_record(**overrides)

    def test_duplicate_record_keys_are_a_schema_error(self):
        report = make_report(make_record(), make_record())
        with pytest.raises(SchemaError, match="duplicate"):
            report.validate()

    def test_unknown_schema_version_is_rejected(self):
        data = make_report().to_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError, match="version"):
            BenchReport.from_dict(data)

    def test_missing_record_field_is_rejected(self):
        data = make_report().to_dict()
        del data["records"][0]["events_per_second"]
        with pytest.raises(SchemaError, match="missing"):
            BenchReport.from_dict(data)

    def test_invalid_json_text_is_rejected(self):
        with pytest.raises(SchemaError, match="JSON"):
            BenchReport.from_json("{not json")


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
#: Small enough for a unit test, still covering two engines of opposite
#: phase-2 character (candidate-driven versus full-vector scan).
TINY = scaled_down(QUICK, 8)


class TestRunner:
    @pytest.fixture(scope="class")
    def report(self) -> BenchReport:
        return run_bench(TINY, engines=("noncanonical", "counting"))

    def test_quick_run_is_schema_valid(self, report):
        report.validate()  # raises on violation
        clone = BenchReport.from_json(report.to_json())
        assert clone.records == report.records

    def test_quick_run_covers_engines_and_scenarios(self, report):
        assert {"noncanonical", "counting"} <= report.engines()
        assert report.scenarios() == {
            "throughput",
            "shard-scaling",
            "shard-routing",
            "skew",
            "churn",
            "network-line",
            "network-star",
            "network-tree",
            "network-random",
        }
        # a shard point beyond the unsharded baseline is present
        assert any(record.shards > 1 for record in report.records)

    def test_network_records_carry_routing_metrics(self, report):
        network = [
            record
            for record in report.records
            if record.scenario.startswith("network-")
        ]
        assert {record.scenario for record in network} == {
            "network-line",
            "network-star",
            "network-tree",
            "network-random",
        }
        for record in network:
            assert 0.0 <= record.metrics["suppression_ratio"] <= 1.0
            assert record.metrics["registrations_per_broker"] > 0
            assert record.metrics["flooding_events_per_second"] > 0
            # covering compacts the tables relative to flooding
            assert (
                record.metrics["registrations_per_broker"]
                <= record.metrics["flooding_registrations_per_broker"]
            )

    def test_throughput_records_cover_every_batch_size(self, report):
        for engine in ("noncanonical", "counting"):
            batch_sizes = [
                record.batch_size
                for record in report.records
                if record.scenario == "throughput" and record.engine == engine
            ]
            assert batch_sizes == list(TINY.batch_sizes)

    def test_records_carry_explanatory_metrics(self, report):
        throughput = [
            record
            for record in report.records
            if record.scenario == "throughput"
        ]
        assert all(
            "candidates_probed_per_event" in record.metrics
            for record in throughput
        )
        # the paper's asymmetry: counting probes every stored clause,
        # the non-canonical engine only its candidates
        probes = {
            record.engine: record.metrics["candidates_probed_per_event"]
            for record in throughput
            if record.batch_size == 1
        }
        assert probes["counting"] > probes["noncanonical"]
        shard_points = [
            record
            for record in report.records
            if record.scenario == "shard-scaling"
        ]
        assert all("speedup" in record.metrics for record in shard_points)
        churn = [
            record for record in report.records if record.scenario == "churn"
        ]
        assert all(record.metrics["publish_ops"] > 0 for record in churn)

    def test_memory_model_bytes_are_recorded(self, report):
        assert all(record.memory_bytes > 0 for record in report.records)

    def test_full_matrix_covers_all_six_engines(self):
        # throughput phase only, smallest possible populations: the
        # point is registry coverage, not timing quality
        from repro.bench import throughput_records

        records = throughput_records(TINY)
        assert {record.engine for record in records} == set(ALL_ENGINE_NAMES)


# ----------------------------------------------------------------------
# the comparator
# ----------------------------------------------------------------------
class TestComparator:
    def test_identical_reports_pass(self):
        report = make_report()
        result = compare_reports(report, report)
        assert result.ok
        assert result.compared == 1
        assert not result.regressions

    def test_injected_slowdown_is_flagged(self):
        baseline = make_report()
        slow = make_report(
            make_record(events_per_second=baseline.records[0].events_per_second / 2)
        )
        result = compare_reports(baseline, slow)
        assert not result.ok
        [regression] = result.regressions
        assert regression.metric == "events_per_second"
        assert regression.ratio == pytest.approx(0.5)

    def test_drop_within_noise_floor_passes(self):
        baseline = make_report()
        slightly_slow = make_report(
            make_record(
                events_per_second=baseline.records[0].events_per_second * 0.80
            )
        )
        assert compare_reports(baseline, slightly_slow).ok

    def test_memory_growth_is_flagged(self):
        baseline = make_report()
        bloated = make_report(
            make_record(memory_bytes=baseline.records[0].memory_bytes * 2)
        )
        result = compare_reports(baseline, bloated)
        assert not result.ok
        [regression] = result.regressions
        assert regression.metric == "memory_bytes"

    def test_missing_baseline_point_fails_additions_pass(self):
        baseline = make_report(
            make_record(), make_record(engine="counting")
        )
        fresh = make_report(
            make_record(), make_record(engine="matching-tree")
        )
        result = compare_reports(baseline, fresh)
        assert not result.ok
        assert [record.engine for record in result.missing] == ["counting"]
        assert [record.engine for record in result.additions] == [
            "matching-tree"
        ]

    def test_sub_resolution_points_are_skipped_not_gated(self):
        baseline = make_report(make_record(events_per_second=0.5))
        fresh = make_report(make_record(events_per_second=0.1))
        result = compare_reports(baseline, fresh)
        assert result.ok
        assert len(result.skipped) == 1

    def test_hardware_mismatch_is_detected(self):
        baseline = make_report()
        fresh = make_report()
        fresh.environment = dict(fresh.environment, machine="sparc64")
        result = compare_reports(baseline, fresh)
        assert result.hardware_mismatch == ["machine"]

    def test_cpu_count_and_python_do_not_soften_the_gate(self):
        # the quick matrix is serial and the noise floor absorbs
        # interpreter drift: neither key may quietly disarm CI
        baseline = make_report()
        fresh = make_report()
        fresh.environment = dict(
            fresh.environment, cpu_count=9999, python="99.0.0"
        )
        assert compare_reports(baseline, fresh).hardware_mismatch == []


class TestCompareCli:
    def _write(self, tmp_path, name, report) -> str:
        path = tmp_path / name
        report.save(str(path))
        return str(path)

    def test_self_comparison_exits_zero(self, tmp_path, capsys):
        report = make_report()
        baseline = self._write(tmp_path, "baseline.json", report)
        fresh = self._write(tmp_path, "fresh.json", report)
        assert compare_main([baseline, fresh]) == 0
        assert "gate: PASS" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "baseline.json", make_report())
        fresh = self._write(
            tmp_path,
            "fresh.json",
            make_report(make_record(events_per_second=100.0)),
        )
        assert compare_main([baseline, fresh]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "gate: FAIL" in out

    def test_hardware_mismatch_softens_timing_regressions(
        self, tmp_path, capsys
    ):
        baseline = self._write(tmp_path, "baseline.json", make_report())
        slow = make_report(make_record(events_per_second=100.0))
        slow.environment = dict(slow.environment, machine="sparc64")
        fresh = self._write(tmp_path, "fresh.json", slow)
        assert compare_main([baseline, fresh]) == 0
        assert "gate: WARN" in capsys.readouterr().out
        # ... but --strict-hardware restores the failure
        assert compare_main([baseline, fresh, "--strict-hardware"]) == 1

    def test_hardware_mismatch_does_not_excuse_memory_growth(
        self, tmp_path, capsys
    ):
        baseline = self._write(tmp_path, "baseline.json", make_report())
        bloated = make_report(make_record(memory_bytes=1 << 20))
        bloated.environment = dict(bloated.environment, machine="sparc64")
        fresh = self._write(tmp_path, "fresh.json", bloated)
        assert compare_main([baseline, fresh]) == 1
        assert "gate: FAIL" in capsys.readouterr().out

    def test_unreadable_report_exits_two(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        good = self._write(tmp_path, "good.json", make_report())
        assert compare_main([missing, good]) == 2
        assert "error" in capsys.readouterr().err


class TestBenchCli:
    def test_run_write_and_self_compare(self, tmp_path, capsys):
        out = str(tmp_path / "report.json")
        assert (
            bench_main(
                [
                    "--quick",
                    "--shrink",
                    "8",
                    "--engines",
                    "noncanonical",
                    "counting",
                    "--out",
                    out,
                ]
            )
            == 0
        )
        report = BenchReport.load(out)
        assert {"noncanonical", "counting"} <= report.engines()
        captured = capsys.readouterr().out
        assert "scenario" in captured  # the table rendered
        # a second run gated against the first passes — with a loose
        # floor: shrunken populations time in microseconds, where
        # run-to-run jitter dwarfs the quick-scale noise policy
        assert (
            bench_main(
                [
                    "--quick",
                    "--shrink",
                    "8",
                    "--engines",
                    "noncanonical",
                    "counting",
                    "--baseline",
                    out,
                    "--time-tolerance",
                    "0.95",
                ]
            )
            == 0
        )


# ----------------------------------------------------------------------
# the counter surface feeding the reports
# ----------------------------------------------------------------------
class TestCounterSurface:
    def _load(self, engine):
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=4, seed=7
        )
        for subscription in generator.subscriptions(30):
            engine.register(subscription)
        return engine

    @pytest.mark.parametrize("name", ALL_ENGINE_NAMES)
    def test_stats_expose_match_counters(self, name):
        engine = self._load(build_engine(name))
        try:
            stats = engine.stats()
            assert stats["phase2_calls"] == 0
            engine.match_fulfilled({1, 2, 3})
            stats = engine.stats()
            assert stats["phase2_calls"] == 1
            assert stats["candidates_probed"] >= 0
            engine.reset_counters()
            assert engine.stats()["phase2_calls"] == 0
        finally:
            engine.close()

    def test_sharded_engine_aggregates_shard_counters(self):
        engine = self._load(build_engine("noncanonical", shards=4))
        try:
            engine.match_fulfilled({1, 2, 3})
            # every shard answered once; the aggregate says so
            assert engine.counters.phase2_calls == 4
            assert engine.stats()["phase2_calls"] == 4
            per_shard = [
                shard.counters.phase2_calls for shard in engine.shards
            ]
            assert per_shard == [1, 1, 1, 1]
            engine.reset_counters()
            assert engine.counters.phase2_calls == 0
        finally:
            engine.close()

    def test_broker_engine_stats_carry_counters(self):
        broker = Broker("hub", engine="noncanonical")
        broker.subscribe("price > 10")
        broker.publish({"price": 20})
        stats = broker.engine_stats()
        assert stats["phase2_calls"] == 1
        assert stats["matches_found"] == 1
