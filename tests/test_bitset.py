"""Bit-packed phase-2 kernel (PR 8): primitives, churn, engine parity.

Three layers of proof, bottom-up:

* the bitmap primitives (`popcount` table, word-indexed `Bitmap`,
  trailing-word masking) agree with Python's int bit operations across
  word boundaries;
* `BitLayout` recycles released bit positions without ever handing a
  live bit two meanings, and `IndexManager.match_batch_bits` stays in
  lockstep with the set-based `match_batch` through add/remove churn;
* every registry engine's `match_fulfilled_matrix` equals its set-based
  `match_fulfilled_batch` (and `match_batch` equals per-event `match`)
  over randomized corpora, including batch-flushed subscribe/unsubscribe
  rounds — the no-stale-bit-resurrection property, observed end to end.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import SELECTED_ENGINE, event_strategy, predicate_strategy
from repro import EngineSpec, UnsupportedSubscriptionError
from repro.core.bitset import (
    POPCOUNT8,
    WORD_BITS,
    BitLayout,
    Bitmap,
    FulfilledMatrix,
    iter_bits,
    popcount,
    popcount_bytes,
    trailing_word_mask,
)
from repro.events import Event
from repro.indexes import IndexManager
from repro.predicates import Operator, Predicate, PredicateRegistry
from repro.workloads import GeneralSubscriptionGenerator

# -- word boundaries the primitives must survive -----------------------
BOUNDARY_VALUES = [
    0,
    1,
    (1 << 63) - 1,
    1 << 63,
    (1 << 64) - 1,
    1 << 64,
    (1 << 64) + 1,
    (1 << 128) - 1,
    1 << 128,
    (1 << 130) - 1,
    0xDEADBEEFCAFEBABE_0123456789ABCDEF,
]


class TestPrimitives:
    def test_popcount_table_is_per_byte_bit_count(self):
        assert len(POPCOUNT8) == 256
        for byte in range(256):
            assert POPCOUNT8[byte] == byte.bit_count()

    @pytest.mark.parametrize("value", BOUNDARY_VALUES, ids=lambda v: f"{v:#x}")
    def test_popcount_matches_bit_count(self, value):
        assert popcount(value) == value.bit_count()

    @pytest.mark.parametrize("value", BOUNDARY_VALUES, ids=lambda v: f"{v:#x}")
    def test_popcount_bytes_matches_int_popcount(self, value):
        width = max(1, (value.bit_length() + 7) // 8)
        data = value.to_bytes(width, "little")
        assert popcount_bytes(data) == value.bit_count()

    @pytest.mark.parametrize("value", BOUNDARY_VALUES, ids=lambda v: f"{v:#x}")
    def test_iter_bits_ascending_and_complete(self, value):
        positions = list(iter_bits(value))
        assert positions == sorted(positions)
        assert sum(1 << position for position in positions) == value

    def test_trailing_word_mask(self):
        full = (1 << WORD_BITS) - 1
        assert trailing_word_mask(0) == full
        assert trailing_word_mask(64) == full
        assert trailing_word_mask(128) == full
        assert trailing_word_mask(1) == 0b1
        assert trailing_word_mask(63) == (1 << 63) - 1
        assert trailing_word_mask(65) == 0b1
        assert trailing_word_mask(70) == (1 << 6) - 1

    @given(st.integers(min_value=0, max_value=(1 << 200) - 1))
    @settings(max_examples=60, deadline=None)
    def test_popcount_forms_agree(self, value):
        width = max(1, (value.bit_length() + 7) // 8)
        assert popcount(value) == popcount_bytes(value.to_bytes(width, "little"))


class TestBitmap:
    @pytest.mark.parametrize("index", [0, 1, 63, 64, 65, 127, 128])
    def test_set_test_clear_across_word_boundaries(self, index):
        bitmap = Bitmap(130)
        assert not bitmap.test(index)
        bitmap.set(index)
        assert bitmap.test(index)
        assert bitmap.to_int() == 1 << index
        bitmap.clear(index)
        assert not bitmap.test(index)
        assert bitmap.to_int() == 0

    def test_out_of_range_access_raises(self):
        bitmap = Bitmap(64)
        for index in (-1, 64, 1000):
            with pytest.raises(IndexError):
                bitmap.test(index)
            with pytest.raises(IndexError):
                bitmap.set(index)

    def test_negative_width_raises(self):
        with pytest.raises(ValueError):
            Bitmap(-1)

    def test_zero_width_bitmap(self):
        bitmap = Bitmap(0)
        assert len(bitmap) == 0
        assert bitmap.to_int() == 0
        assert bitmap.popcount() == 0
        assert list(bitmap) == []
        assert bitmap.invert().to_int() == 0

    @pytest.mark.parametrize("value", BOUNDARY_VALUES, ids=lambda v: f"{v:#x}")
    def test_from_int_to_int_roundtrip(self, value):
        nbits = max(1, value.bit_length())
        assert Bitmap.from_int(value, nbits).to_int() == value

    def test_from_int_masks_excess_bits(self):
        bitmap = Bitmap.from_int((1 << 80) | 0b101, 70)
        assert bitmap.to_int() == 0b101

    def test_from_int_rejects_negative(self):
        with pytest.raises(ValueError):
            Bitmap.from_int(-1, 8)

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            Bitmap(64).and_(Bitmap(65))

    @given(
        st.integers(min_value=0, max_value=(1 << 130) - 1),
        st.integers(min_value=0, max_value=(1 << 130) - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_binary_operations_agree_with_int_algebra(self, a, b):
        nbits = 130
        bitmap_a = Bitmap.from_int(a, nbits)
        bitmap_b = Bitmap.from_int(b, nbits)
        assert bitmap_a.and_(bitmap_b).to_int() == a & b
        assert bitmap_a.or_(bitmap_b).to_int() == a | b
        assert bitmap_a.andnot(bitmap_b).to_int() == a & ~b & ((1 << nbits) - 1)
        assert bitmap_a.popcount() == a.bit_count()
        assert list(bitmap_a) == list(iter_bits(a))

    @pytest.mark.parametrize("nbits", [1, 63, 64, 65, 128, 130])
    def test_invert_respects_trailing_word_mask(self, nbits):
        zero = Bitmap(nbits)
        inverted = zero.invert()
        assert inverted.to_int() == (1 << nbits) - 1
        assert inverted.popcount() == nbits
        # double inversion is identity, and no bit above nbits leaks
        assert inverted.invert() == zero
        assert all(position < nbits for position in inverted)

    def test_equality_requires_same_width(self):
        assert Bitmap.from_int(5, 64) == Bitmap.from_int(5, 64)
        assert Bitmap.from_int(5, 64) != Bitmap.from_int(5, 65)


class TestBitLayout:
    def test_assign_is_dense_and_idempotent(self):
        layout = BitLayout()
        assert layout.assign(101) == 0
        assert layout.assign(202) == 1
        assert layout.assign(101) == 0
        assert layout.capacity == 2
        assert len(layout) == 2
        assert 101 in layout and 303 not in layout
        assert layout.bit_of(202) == 1
        assert layout.pid_at(0) == 101
        assert layout.bits_of([202, 101]) == (1, 0)

    def test_release_recycles_and_bumps_epoch(self):
        layout = BitLayout()
        for pid in (1, 2, 3):
            layout.assign(pid)
        epoch = layout.epoch
        assert layout.release(2)
        assert layout.epoch == epoch + 1
        assert layout.pid_at(1) is None
        assert 2 not in layout
        # the freed position is recycled, capacity does not grow
        assert layout.assign(9) == 1
        assert layout.capacity == 3
        # releasing an unknown id is a no-op and does not bump the epoch
        epoch = layout.epoch
        assert not layout.release(777)
        assert layout.epoch == epoch

    def test_capacity_bounded_by_live_high_water_mark(self):
        layout = BitLayout()
        rng = random.Random(7)
        live: set[int] = set()
        high_water = 0
        for pid in range(1, 400):
            layout.assign(pid)
            live.add(pid)
            high_water = max(high_water, len(live))
            if len(live) > 20 and rng.random() < 0.6:
                victim = rng.choice(sorted(live))
                layout.release(victim)
                live.remove(victim)
        assert layout.capacity <= high_water
        assert len(layout) == len(live)

    def test_compact_renumbers_densely(self):
        layout = BitLayout()
        for pid in range(10):
            layout.assign(pid)
        for pid in (1, 4, 7, 9):
            layout.release(pid)
        epoch = layout.epoch
        remap = layout.compact()
        assert layout.epoch == epoch + 1
        assert layout.capacity == len(layout) == 6
        assert not layout.free
        # the remap covers exactly the surviving bits, onto a dense range
        assert sorted(remap.values()) == list(range(6))
        for old_bit, new_bit in remap.items():
            assert layout.pid_at(new_bit) is not None
        for pid in (0, 2, 3, 5, 6, 8):
            assert layout.bit_of(pid) < 6


class TestFulfilledMatrix:
    def _layout(self, pids):
        layout = BitLayout()
        for pid in pids:
            layout.assign(pid)
        return layout

    def test_from_id_sets_to_id_sets_roundtrip(self):
        layout = self._layout([10, 20, 30, 40])
        sets = [{10, 30}, set(), {20}, {10, 20, 40}]
        matrix = FulfilledMatrix.from_id_sets(layout, sets)
        assert matrix.event_count == 4
        assert matrix.to_id_sets() == sets
        assert matrix.to_id_sets() is matrix.to_id_sets()  # cached

    def test_columns_and_rows_are_transposes(self):
        layout = self._layout([10, 20, 30])
        sets = [{10}, {10, 20}, {30}]
        matrix = FulfilledMatrix.from_id_sets(layout, sets)
        bit_10 = layout.bit_of(10)
        assert matrix.column(bit_10) == 0b011  # events 0 and 1
        assert matrix.row(0) == 1 << bit_10
        assert matrix.row(1) == (1 << bit_10) | (1 << layout.bit_of(20))
        assert matrix.row_bitmap(2).to_int() == 1 << layout.bit_of(30)
        with pytest.raises(IndexError):
            matrix.row(3)

    def test_active_bits_are_exactly_nonzero_columns(self):
        layout = self._layout([1, 2, 3, 4])
        matrix = FulfilledMatrix.from_id_sets(layout, [{2}, {2, 4}])
        assert sorted(matrix.active_bits) == sorted(
            bit for bit, column in enumerate(matrix.columns) if column
        )
        assert sorted(matrix.active_pids()) == [2, 4]
        assert matrix.all_events_mask == 0b11

    @given(
        st.lists(
            st.sets(st.sampled_from([11, 22, 33, 44, 55]), max_size=5),
            max_size=12,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, sets):
        layout = self._layout([11, 22, 33, 44, 55])
        matrix = FulfilledMatrix.from_id_sets(layout, sets)
        assert matrix.to_id_sets() == sets
        for index in range(len(sets)):
            assert {
                layout.pid_at(bit) for bit in iter_bits(matrix.row(index))
            } == sets[index]


class TestIndexManagerBits:
    @given(
        st.lists(predicate_strategy(), min_size=1, max_size=12),
        st.lists(event_strategy(), min_size=1, max_size=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_match_batch_bits_equals_match_batch(self, predicates, events):
        manager = IndexManager()
        for predicate_id, predicate in enumerate(predicates, start=1):
            manager.add(predicate, predicate_id)
        matrix = manager.match_batch_bits(events)
        assert matrix.to_id_sets() == manager.match_batch(events)

    def test_layout_tracks_add_and_remove(self):
        manager = IndexManager()
        manager.add(Predicate("x", Operator.GT, 1), 1)
        manager.add(Predicate("x", Operator.LT, 9), 2)
        layout = manager.bit_layout
        assert 1 in layout and 2 in layout
        epoch = layout.epoch
        assert manager.remove(1)
        assert 1 not in layout
        assert layout.epoch == epoch + 1
        # the freed bit is recycled by the next add; no stale resurrection
        manager.add(Predicate("y", Operator.EQ, 3), 3)
        assert layout.capacity == 2
        matrix = manager.match_batch_bits([Event({"x": 5}), Event({"y": 3})])
        assert matrix.to_id_sets() == [{2}, {3}]

    def test_probe_cache_invalidated_by_version_bump(self):
        manager = IndexManager()
        manager.add(Predicate("x", Operator.GT, 1), 1)
        events = [Event({"x": 5}), Event({"x": 5})]
        assert manager.match_batch_bits(events).to_id_sets() == [{1}, {1}]
        # a structural change must not leave the cached probe stale
        manager.add(Predicate("x", Operator.GT, 4), 2)
        assert manager.match_batch_bits(events).to_id_sets() == [{1, 2}] * 2
        manager.remove(1)
        assert manager.match_batch_bits(events).to_id_sets() == [{2}, {2}]

    def test_duplicate_events_share_probe_work(self):
        manager = IndexManager()
        manager.add(Predicate("x", Operator.EQ, 7), 1)
        events = [Event({"x": 7})] * 5 + [Event({"x": 8})]
        matrix = manager.match_batch_bits(events)
        assert matrix.to_id_sets() == [{1}] * 5 + [set()]
        assert matrix.column(manager.bit_layout.bit_of(1)) == 0b011111


# -- engine parity: matrix phase 2 vs set-based phase 2 ----------------

#: (id, spec, allow_not) — all six registry engines, plus the
#: non-canonical codec/evaluation variants (same cases as
#: tests/test_batch_parity.py, so the CI engine matrix slices both
#: suites identically).
ENGINE_CASES = [
    ("noncanonical", EngineSpec("noncanonical"), True),
    (
        "noncanonical-varint",
        EngineSpec("noncanonical", {"codec": "varint"}),
        True,
    ),
    (
        "noncanonical-encoded",
        EngineSpec("noncanonical", {"evaluation": "encoded"}),
        True,
    ),
    ("paged", EngineSpec("paged"), True),
    ("bruteforce", EngineSpec("bruteforce"), True),
    (
        "counting",
        EngineSpec("counting", {"support_unsubscription": True}),
        False,
    ),
    ("counting-variant", EngineSpec("counting-variant"), False),
    ("matching-tree", EngineSpec("matching-tree"), False),
]

if SELECTED_ENGINE is not None:
    ENGINE_CASES = [
        case for case in ENGINE_CASES if case[1].name == SELECTED_ENGINE
    ]

_NUMERIC = ("price", "volume", "qty", "score")
_STRING = ("symbol", "category")


def _random_events(rng: random.Random, count: int) -> list[Event]:
    events = []
    for _ in range(count):
        attributes = {}
        for name in _NUMERIC:
            if rng.random() < 0.7:
                attributes[name] = rng.randint(0, 30)
        for name in _STRING:
            if rng.random() < 0.5:
                attributes[name] = "".join(
                    rng.choice("abcde") for _ in range(rng.randint(1, 3))
                )
        events.append(Event(attributes))
    return events


def _register(engine, generator, count: int) -> list[int]:
    registered = []
    for subscription in generator.subscriptions(count):
        try:
            engine.register(subscription)
        except UnsupportedSubscriptionError:
            continue
        registered.append(subscription.subscription_id)
    return registered


def _assert_matrix_parity(engine, events) -> None:
    """Matrix phase 2 must equal set phase 2 on the same phase-1 output,
    and the full batch path must equal per-event matching."""
    fulfilled_sets = engine.indexes.match_batch(events)
    matrix = FulfilledMatrix.from_id_sets(
        engine.indexes.bit_layout, fulfilled_sets
    )
    assert engine.match_fulfilled_matrix(matrix) == engine.match_fulfilled_batch(
        fulfilled_sets
    )
    assert engine.match_batch(events) == [engine.match(e) for e in events]


@pytest.mark.parametrize(
    "spec, allow_not",
    [case[1:] for case in ENGINE_CASES],
    ids=[case[0] for case in ENGINE_CASES],
)
def test_matrix_phase2_equals_set_phase2(spec, allow_not):
    rng = random.Random(20050610)
    engine = spec.build()
    generator = GeneralSubscriptionGenerator(
        seed=13, allow_not=allow_not, value_range=30
    )
    registered = _register(engine, generator, 50)
    assert registered, "workload registered nothing"
    _assert_matrix_parity(engine, _random_events(rng, 64))
    if hasattr(engine, "close"):  # the paged engine holds an arena file
        engine.close()


@pytest.mark.parametrize(
    "spec, allow_not",
    [case[1:] for case in ENGINE_CASES],
    ids=[case[0] for case in ENGINE_CASES],
)
def test_matrix_parity_survives_batch_flushed_churn(spec, allow_not):
    """Rounds of batch-flushed subscribe/unsubscribe: every round
    registers a fresh block, unregisters a random half of the live
    population, and re-checks matrix-vs-set parity — recycled bit
    positions must never resurrect an unregistered subscription."""
    rng = random.Random(8181)
    engine = spec.build()
    generator = GeneralSubscriptionGenerator(
        seed=29, allow_not=allow_not, value_range=30
    )
    events = _random_events(rng, 48)
    live: list[int] = []
    for _ in range(4):
        live.extend(_register(engine, generator, 15))
        _assert_matrix_parity(engine, events)
        rng.shuffle(live)
        doomed, live = live[: len(live) // 2], live[len(live) // 2 :]
        for subscription_id in doomed:
            engine.unregister(subscription_id)
        _assert_matrix_parity(engine, events)
        for subscription_id in doomed:
            assert all(
                subscription_id not in matched
                for matched in engine.match_batch(events)
            )
    # recycling bounds the bit space at the live high-water mark, not
    # total registration traffic (60 registrations flowed through)
    layout = engine.indexes.bit_layout
    assert layout.capacity <= 60 * 4
    if hasattr(engine, "close"):  # the paged engine holds an arena file
        engine.close()


def test_shared_layout_across_engines():
    """Engines sharing one IndexManager agree on bit positions: a matrix
    built once serves matrix-capable engines of different kinds."""
    registry = PredicateRegistry()
    indexes = IndexManager()
    specs = [
        EngineSpec("noncanonical"),
        EngineSpec("counting", {"support_unsubscription": True}),
        EngineSpec("counting-variant"),
    ]
    engines = [spec.build(registry=registry, indexes=indexes) for spec in specs]
    generator = GeneralSubscriptionGenerator(
        seed=5, allow_not=False, value_range=30
    )
    for subscription in generator.subscriptions(30):
        for engine in engines:
            try:
                engine.register(subscription)
            except UnsupportedSubscriptionError:
                break
    events = _random_events(random.Random(6), 32)
    fulfilled_sets = indexes.match_batch(events)
    matrix = FulfilledMatrix.from_id_sets(indexes.bit_layout, fulfilled_sets)
    for engine in engines:
        assert engine.match_fulfilled_matrix(matrix) == engine.match_fulfilled_batch(
            fulfilled_sets
        )
