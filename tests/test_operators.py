"""Unit tests for predicate operators (repro.predicates.operators)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.predicates import IndexFamily, Operator


class TestComparisonSemantics:
    @pytest.mark.parametrize(
        "operator, value, operand, expected",
        [
            (Operator.EQ, 5, 5, True),
            (Operator.EQ, 5, 6, False),
            (Operator.EQ, "a", "a", True),
            (Operator.NE, 5, 6, True),
            (Operator.NE, 5, 5, False),
            (Operator.LT, 4, 5, True),
            (Operator.LT, 5, 5, False),
            (Operator.LE, 5, 5, True),
            (Operator.LE, 6, 5, False),
            (Operator.GT, 6, 5, True),
            (Operator.GT, 5, 5, False),
            (Operator.GE, 5, 5, True),
            (Operator.GE, 4, 5, False),
        ],
    )
    def test_numeric_comparisons(self, operator, value, operand, expected):
        assert operator.evaluate(value, operand) is expected

    def test_int_float_comparisons_mix(self):
        assert Operator.LT.evaluate(1, 1.5)
        assert Operator.GE.evaluate(2.0, 2)

    def test_string_ordering_is_lexicographic(self):
        assert Operator.LT.evaluate("apple", "banana")
        assert not Operator.LT.evaluate("pear", "banana")

    def test_cross_domain_comparison_is_false_not_error(self):
        assert Operator.LT.evaluate("abc", 5) is False
        assert Operator.GE.evaluate(5, "abc") is False

    def test_eq_distinguishes_bool_from_int(self):
        assert Operator.EQ.evaluate(True, True)
        assert not Operator.EQ.evaluate(1, True)
        assert not Operator.EQ.evaluate(True, 1)

    def test_ne_distinguishes_bool_from_int(self):
        # different domains: neither equal nor usefully unequal
        assert not Operator.NE.evaluate(1, True)

    def test_bool_ordered_comparison_rejected(self):
        assert Operator.LT.evaluate(True, 5) is False
        assert Operator.GT.evaluate(5, True) is False


class TestCompoundOperators:
    def test_between_inclusive_bounds(self):
        assert Operator.BETWEEN.evaluate(10, (10, 20))
        assert Operator.BETWEEN.evaluate(20, (10, 20))
        assert Operator.BETWEEN.evaluate(15, (10, 20))
        assert not Operator.BETWEEN.evaluate(9, (10, 20))
        assert not Operator.BETWEEN.evaluate(21, (10, 20))

    def test_between_string_domain(self):
        assert Operator.BETWEEN.evaluate("m", ("a", "z"))
        assert not Operator.BETWEEN.evaluate("m", ("n", "z"))

    def test_between_cross_domain_is_false(self):
        assert Operator.BETWEEN.evaluate("m", (1, 5)) is False

    def test_in_membership(self):
        assert Operator.IN.evaluate(2, frozenset({1, 2, 3}))
        assert not Operator.IN.evaluate(4, frozenset({1, 2, 3}))

    def test_in_with_strings(self):
        assert Operator.IN.evaluate("b", frozenset({"a", "b"}))

    def test_exists_always_true_when_evaluated(self):
        assert Operator.EXISTS.evaluate("anything", None)
        assert Operator.EXISTS.evaluate(0, None)


class TestStringOperators:
    def test_prefix(self):
        assert Operator.PREFIX.evaluate("acme corp", "acme")
        assert not Operator.PREFIX.evaluate("the acme", "acme")

    def test_suffix(self):
        assert Operator.SUFFIX.evaluate("report.pdf", ".pdf")
        assert not Operator.SUFFIX.evaluate("pdf.report", ".pdf")

    def test_contains(self):
        assert Operator.CONTAINS.evaluate("an urgent note", "urgent")
        assert not Operator.CONTAINS.evaluate("a calm note", "urgent")

    def test_empty_operand_matches_everything(self):
        assert Operator.PREFIX.evaluate("x", "")
        assert Operator.SUFFIX.evaluate("x", "")
        assert Operator.CONTAINS.evaluate("x", "")

    def test_string_operators_false_on_non_string_value(self):
        assert Operator.PREFIX.evaluate(5, "a") is False
        assert Operator.SUFFIX.evaluate(5, "a") is False
        assert Operator.CONTAINS.evaluate(5, "a") is False


class TestOperatorMetadata:
    def test_from_symbol_canonical(self):
        assert Operator.from_symbol("=") is Operator.EQ
        assert Operator.from_symbol("<=") is Operator.LE
        assert Operator.from_symbol("between") is Operator.BETWEEN

    def test_from_symbol_aliases(self):
        assert Operator.from_symbol("==") is Operator.EQ
        assert Operator.from_symbol("<>") is Operator.NE

    def test_from_symbol_case_insensitive(self):
        assert Operator.from_symbol("PREFIX") is Operator.PREFIX

    def test_from_symbol_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown operator"):
            Operator.from_symbol("~=")

    def test_index_family_assignment(self):
        assert Operator.EQ.index_family is IndexFamily.HASH
        assert Operator.GT.index_family is IndexFamily.BTREE
        assert Operator.BETWEEN.index_family is IndexFamily.INTERVAL
        assert Operator.PREFIX.index_family is IndexFamily.TRIE
        assert Operator.CONTAINS.index_family is IndexFamily.SCAN

    def test_every_operator_has_an_index_family(self):
        for operator in Operator:
            assert operator.index_family is not None

    def test_numeric_range_classification(self):
        assert Operator.LT.is_numeric_range
        assert Operator.BETWEEN.is_numeric_range
        assert not Operator.EQ.is_numeric_range

    def test_string_only_classification(self):
        assert Operator.PREFIX.is_string_only
        assert not Operator.EQ.is_string_only

    def test_arity(self):
        from repro.predicates import OperatorArity

        assert Operator.EXISTS.arity is OperatorArity.UNARY
        assert Operator.BETWEEN.arity is OperatorArity.TERNARY
        assert Operator.EQ.arity is OperatorArity.BINARY


class TestOperatorProperties:
    @given(st.integers(), st.integers())
    def test_lt_gt_duality(self, value, operand):
        assert Operator.LT.evaluate(value, operand) == Operator.GT.evaluate(
            operand, value
        )

    @given(st.integers(), st.integers())
    def test_le_is_lt_or_eq(self, value, operand):
        assert Operator.LE.evaluate(value, operand) == (
            Operator.LT.evaluate(value, operand)
            or Operator.EQ.evaluate(value, operand)
        )

    @given(st.integers(), st.integers())
    def test_eq_ne_complement_on_same_domain(self, value, operand):
        assert Operator.EQ.evaluate(value, operand) != Operator.NE.evaluate(
            value, operand
        )

    @given(st.integers(), st.integers(), st.integers())
    def test_between_equals_conjunction_of_bounds(self, value, low, high):
        if low > high:
            low, high = high, low
        assert Operator.BETWEEN.evaluate(value, (low, high)) == (
            Operator.GE.evaluate(value, low)
            and Operator.LE.evaluate(value, high)
        )
