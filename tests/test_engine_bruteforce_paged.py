"""Unit tests for the brute-force oracle and the disk-backed engine."""

from __future__ import annotations

import os

import pytest

from repro import (
    BruteForceEngine,
    DiskTreeStore,
    PagedNonCanonicalEngine,
    UnknownSubscriptionError,
)
from repro.events import Event
from repro.subscriptions import Subscription
from repro.workloads import PaperSubscriptionGenerator


def sub(text):
    return Subscription.from_text(text)


class TestBruteForce:
    def test_direct_evaluation(self):
        engine = BruteForceEngine()
        s = sub("a = 1 or not b = 2")
        engine.register(s)
        assert engine.match(Event({"a": 1})) == {s.subscription_id}
        assert engine.match(Event({"b": 2})) == set()
        assert engine.match(Event({})) == {s.subscription_id}

    def test_match_fulfilled_evaluates_every_tree(self):
        engine = BruteForceEngine()
        first = sub("a = 1")
        second = sub("b = 2")
        engine.register(first)
        engine.register(second)
        pid_b = engine.registry.identifier(
            next(iter(second.expression.unique_predicates()))
        )
        assert engine.match_fulfilled({pid_b}) == {second.subscription_id}

    def test_unregister(self):
        engine = BruteForceEngine()
        s = sub("a = 1")
        engine.register(s)
        engine.unregister(s.subscription_id)
        assert engine.subscription_count == 0
        assert len(engine.registry) == 0
        with pytest.raises(UnknownSubscriptionError):
            engine.unregister(s.subscription_id)

    def test_duplicate_registration_rejected(self):
        engine = BruteForceEngine()
        s = sub("a = 1")
        engine.register(s)
        with pytest.raises(ValueError):
            engine.register(s)

    def test_memory_breakdown_trees_only(self):
        engine = BruteForceEngine()
        engine.register(sub("a = 1 and b = 2"))
        assert set(engine.memory_breakdown()) == {"subscription_trees"}


class TestDiskTreeStore:
    def test_add_read_roundtrip(self, tmp_path):
        store = DiskTreeStore(str(tmp_path / "arena"), page_size=64, cache_pages=2)
        location = store.add(b"hello-tree")
        assert store.read(*location) == b"hello-tree"
        store.close()

    def test_read_spanning_pages(self, tmp_path):
        store = DiskTreeStore(str(tmp_path / "arena"), page_size=64, cache_pages=4)
        store.add(b"x" * 60)
        location = store.add(b"y" * 40)  # crosses the 64-byte page boundary
        assert store.read(*location) == b"y" * 40
        store.close()

    def test_cache_hit_accounting(self, tmp_path):
        store = DiskTreeStore(str(tmp_path / "arena"), page_size=64, cache_pages=2)
        location = store.add(b"abcd")
        store.read(*location)
        misses_after_first = store.cache_misses
        store.read(*location)
        assert store.cache_misses == misses_after_first
        assert store.cache_hits >= 1
        assert 0.0 < store.hit_rate() <= 1.0

    def test_lru_eviction(self, tmp_path):
        store = DiskTreeStore(str(tmp_path / "arena"), page_size=64, cache_pages=1)
        first = store.add(b"a" * 64)
        second = store.add(b"b" * 64)
        store.read(*first)
        store.read(*second)  # evicts page 0
        misses = store.cache_misses
        store.read(*first)   # miss again
        assert store.cache_misses == misses + 1
        store.close()

    def test_read_past_end_rejected(self, tmp_path):
        store = DiskTreeStore(str(tmp_path / "arena"))
        store.add(b"abcd")
        with pytest.raises(ValueError):
            store.read(0, 10)
        store.close()

    def test_owned_tempfile_removed_on_close(self):
        store = DiskTreeStore()
        path = store.path
        store.add(b"abcd")
        store.close()
        assert not os.path.exists(path)

    def test_live_byte_accounting(self, tmp_path):
        store = DiskTreeStore(str(tmp_path / "arena"))
        location = store.add(b"abcd")
        store.add(b"efgh")
        store.free(*location)
        assert store.size == 8
        assert store.live_bytes == 4
        store.close()

    def test_context_manager(self):
        with DiskTreeStore() as store:
            path = store.path
            store.add(b"abcd")
        assert not os.path.exists(path)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DiskTreeStore(page_size=8)
        with pytest.raises(ValueError):
            DiskTreeStore(cache_pages=0)


class TestPagedEngine:
    def test_matching_through_cache(self, tmp_path):
        store = DiskTreeStore(
            str(tmp_path / "arena"), page_size=128, cache_pages=2
        )
        engine = PagedNonCanonicalEngine(store=store)
        s = sub("a = 1 and (b = 2 or c = 3)")
        engine.register(s)
        assert engine.match(Event({"a": 1, "c": 3})) == {s.subscription_id}
        assert engine.match(Event({"a": 1})) == set()
        engine.close()

    def test_ram_footprint_excludes_trees(self, tmp_path):
        store = DiskTreeStore(
            str(tmp_path / "arena"), page_size=128, cache_pages=2
        )
        engine = PagedNonCanonicalEngine(store=store)
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=6, seed=1
        )
        for s in generator.subscriptions(100):
            engine.register(s)
        breakdown = engine.memory_breakdown()
        assert "subscription_trees" not in breakdown
        assert breakdown["page_cache"] == 256
        assert engine.store.live_bytes > 0
        engine.close()

    def test_unregister_on_disk(self, tmp_path):
        store = DiskTreeStore(str(tmp_path / "arena"))
        engine = PagedNonCanonicalEngine(store=store)
        s = sub("a = 1 and b = 2")
        engine.register(s)
        engine.unregister(s.subscription_id)
        assert engine.subscription_count == 0
        assert engine.match(Event({"a": 1, "b": 2})) == set()
        assert len(engine.registry) == 0
        with pytest.raises(UnknownSubscriptionError):
            engine.unregister(s.subscription_id)
        engine.close()

    def test_high_hit_rate_on_skewed_candidates(self, tmp_path):
        """Candidate-driven access keeps the cache effective — the §5
        rationale for why paging suits the non-canonical engine."""
        store = DiskTreeStore(
            str(tmp_path / "arena"), page_size=4096, cache_pages=8
        )
        engine = PagedNonCanonicalEngine(store=store)
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=6, seed=2
        )
        subscriptions = generator.subscriptions(300)
        for s in subscriptions:
            engine.register(s)
        # repeatedly fulfil the same small predicate population
        hot = subscriptions[0]
        fulfilled = {
            engine.registry.identifier(p)
            for p in hot.expression.unique_predicates()
        }
        for _ in range(50):
            assert hot.subscription_id in engine.match_fulfilled(fulfilled)
        assert engine.store.hit_rate() > 0.9
        engine.close()
