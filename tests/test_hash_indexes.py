"""Unit tests for the hash-family predicate indexes."""

from __future__ import annotations

from repro.indexes import (
    EqualityIndex,
    ExistsIndex,
    MembershipIndex,
    NotEqualIndex,
)


class TestEqualityIndex:
    def test_match_by_exact_value(self):
        index = EqualityIndex()
        index.insert(10, 1)
        index.insert(10, 2)
        index.insert(20, 3)
        assert set(index.match(10)) == {1, 2}
        assert set(index.match(20)) == {3}
        assert set(index.match(30)) == set()

    def test_len_counts_pairs(self):
        index = EqualityIndex()
        index.insert(10, 1)
        index.insert(10, 2)
        assert len(index) == 2

    def test_duplicate_insert_is_idempotent(self):
        index = EqualityIndex()
        index.insert(10, 1)
        index.insert(10, 1)
        assert len(index) == 1

    def test_remove(self):
        index = EqualityIndex()
        index.insert(10, 1)
        assert index.remove(10, 1)
        assert not index.remove(10, 1)
        assert set(index.match(10)) == set()
        assert index.is_empty

    def test_remove_wrong_operand_fails(self):
        index = EqualityIndex()
        index.insert(10, 1)
        assert not index.remove(11, 1)

    def test_distinguishes_value_types(self):
        index = EqualityIndex()
        index.insert("10", 1)
        assert set(index.match(10)) == set()

    def test_operands_iteration(self):
        index = EqualityIndex()
        index.insert(1, 1)
        index.insert(2, 2)
        assert sorted(index.operands()) == [1, 2]


class TestNotEqualIndex:
    def test_matches_complement(self):
        index = NotEqualIndex()
        index.insert(10, 1)  # x != 10
        index.insert(20, 2)  # x != 20
        assert set(index.match(10)) == {2}
        assert set(index.match(20)) == {1}
        assert set(index.match(30)) == {1, 2}

    def test_multiple_predicates_same_operand(self):
        index = NotEqualIndex()
        index.insert(10, 1)
        index.insert(10, 2)
        assert set(index.match(10)) == set()
        assert set(index.match(11)) == {1, 2}

    def test_remove(self):
        index = NotEqualIndex()
        index.insert(10, 1)
        assert index.remove(10, 1)
        assert not index.remove(10, 1)
        assert set(index.match(99)) == set()
        assert len(index) == 0

    def test_duplicate_insert_ignored(self):
        index = NotEqualIndex()
        index.insert(10, 1)
        index.insert(10, 1)
        assert len(index) == 1


class TestMembershipIndex:
    def test_matches_any_alternative(self):
        index = MembershipIndex()
        index.insert(frozenset({1, 2, 3}), 10)
        for value in (1, 2, 3):
            assert set(index.match(value)) == {10}
        assert set(index.match(4)) == set()

    def test_overlapping_sets(self):
        index = MembershipIndex()
        index.insert(frozenset({1, 2}), 10)
        index.insert(frozenset({2, 3}), 11)
        assert set(index.match(2)) == {10, 11}
        assert set(index.match(1)) == {10}

    def test_remove_cleans_all_alternatives(self):
        index = MembershipIndex()
        operand = frozenset({1, 2})
        index.insert(operand, 10)
        assert index.remove(operand, 10)
        assert set(index.match(1)) == set()
        assert set(index.match(2)) == set()
        assert len(index) == 0

    def test_remove_unknown_returns_false(self):
        index = MembershipIndex()
        assert not index.remove(frozenset({1}), 10)

    def test_len_counts_predicates_not_alternatives(self):
        index = MembershipIndex()
        index.insert(frozenset({1, 2, 3}), 10)
        assert len(index) == 1


class TestExistsIndex:
    def test_matches_everything(self):
        index = ExistsIndex()
        index.insert(None, 1)
        assert set(index.match("whatever")) == {1}
        assert set(index.match(0)) == {1}

    def test_remove(self):
        index = ExistsIndex()
        index.insert(None, 1)
        assert index.remove(None, 1)
        assert not index.remove(None, 1)
        assert set(index.match(0)) == set()
