"""Shard-scaling curves: throughput versus shard count per engine.

``run_shard_sweep`` measures each engine unsharded (the single-shard
serial baseline) and partitioned across 2 and 4 shards, recording
speedup-vs-shard-count curves.  Three properties are asserted:

* the sweep produces well-formed curves (parity is verified inside the
  harness before anything is timed);
* the **serial** executor's coordination overhead is bounded — sharding
  without parallelism must not collapse throughput;
* the **process** executor turns shards into real speedup: at
  quick-benchmark scale, 4 shards reach ≥1.3× the single-shard serial
  baseline on at least one engine.  On single-core runners (or without
  the ``fork`` start method) that test *skips* — there is no parallel
  hardware to demonstrate on.

Numbers land in ``benchmark.extra_info`` so future PRs have a scaling
trajectory to compare against.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.experiments.harness import run_shard_sweep

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
CPUS = os.cpu_count() or 1

#: Engines the scaling benchmarks sweep: the paper's contribution and
#: the heaviest per-event baseline (brute force scales best, since its
#: phase-2 cost is linear in the shard's subscription count).
ENGINES = ("noncanonical", "bruteforce")


def test_shard_sweep_produces_curves():
    """Quick-scale sweep: every engine gets a 1/2/4-shard curve with a
    speedup relative to its own unsharded baseline."""
    results = run_shard_sweep(
        subscription_count=120,
        event_count=128,
        shard_counts=(1, 2, 4),
        engines=ENGINES,
        repeats=1,
    )
    assert set(results) == set(ENGINES)
    for name, curve in results.items():
        assert [point.shards for point in curve] == [1, 2, 4]
        assert curve[0].executor == "serial"
        assert curve[0].speedup == 1.0
        assert all(point.events_per_second > 0 for point in curve)
        assert all(point.engine == name for point in curve)


def test_serial_sharding_overhead_is_bounded(benchmark):
    """Partitioning without parallelism costs union/dispatch overhead
    only — the 4-shard serial configuration must keep at least half the
    unsharded throughput."""
    results = run_shard_sweep(
        subscription_count=300,
        event_count=256,
        shard_counts=(1, 4),
        engines=("noncanonical",),
        executor="serial",
        repeats=3,
    )
    curve = results["noncanonical"]
    four = next(point for point in curve if point.shards == 4)
    benchmark.extra_info.update(
        serial_speedup_4_shards=round(four.speedup, 3),
        baseline_events_per_second=round(curve[0].events_per_second),
    )

    def run():
        run_shard_sweep(
            subscription_count=60,
            event_count=64,
            shard_counts=(1, 2),
            engines=("noncanonical",),
            repeats=1,
        )

    benchmark(run)
    assert four.speedup > 0.5, (
        f"serial 4-shard throughput collapsed to {four.speedup:.2f}x of "
        "the unsharded baseline"
    )


@pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
@pytest.mark.skipif(
    CPUS < 2, reason="shard parallelism needs more than one core"
)
def test_process_executor_reaches_speedup(benchmark):
    """The acceptance check: with the process executor, 4 shards reach
    ≥1.3× the single-shard serial throughput on at least one engine."""
    results = run_shard_sweep(
        subscription_count=600,
        event_count=256,
        batch_size=256,
        shard_counts=(1, 4),
        engines=ENGINES,
        executor="process",
        repeats=3,
    )
    speedups = {
        name: next(p.speedup for p in curve if p.shards == 4)
        for name, curve in results.items()
    }
    best_engine = max(speedups, key=speedups.get)
    benchmark.extra_info.update(
        cpus=CPUS,
        **{f"speedup_{name}": round(value, 3) for name, value in speedups.items()},
    )

    def run():
        run_shard_sweep(
            subscription_count=120,
            event_count=64,
            shard_counts=(1, 4),
            engines=(best_engine,),
            executor="process",
            repeats=1,
        )

    benchmark(run)
    assert speedups[best_engine] >= 1.3, (
        f"process executor at 4 shards only reached "
        f"{speedups[best_engine]:.2f}x on {best_engine} "
        f"(all: {speedups}, {CPUS} cpus)"
    )
