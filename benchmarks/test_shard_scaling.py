"""Shard-scaling curves: throughput versus shard count per engine.

The measurements come from the :mod:`repro.bench` runner's shard phase
(which wraps ``run_shard_sweep``) and from the harness directly for the
executor-specific checks; every pass/fail number lives in
:mod:`repro.bench.thresholds`.  Three properties are asserted:

* the runner produces well-formed curves (parity is verified inside the
  harness before anything is timed);
* the **serial** executor's coordination overhead is bounded — sharding
  without parallelism must not collapse throughput
  (:data:`~repro.bench.thresholds.SERIAL_4SHARD_MIN_RATIO`);
* the **process** executor turns shards into real speedup: at
  quick-benchmark scale, 4 shards reach
  :data:`~repro.bench.thresholds.PROCESS_4SHARD_MIN_SPEEDUP` × the
  single-shard serial baseline on at least one engine.  On single-core
  runners (or without the ``fork`` start method) that test *skips* —
  there is no parallel hardware to demonstrate on;
* the **routed** partitioner makes *serial* sharding pay on the skewed
  hot-key corpus: it must beat the hash partitioner at the same shard
  count by :data:`~repro.bench.thresholds.ROUTED_OVER_HASH_MIN_RATIO`
  and the unsharded engine outright
  (:data:`~repro.bench.thresholds.ROUTED_SERIAL_MIN_SPEEDUP`), with
  ``shards_pruned`` counters confirming the speedup came from pruning,
  not noise.  The serial-floor comparison interleaves its measurements
  (baseline, hash, routed, repeat) because a measure-baseline-first
  protocol systematically flatters the baseline on CI runners whose
  clock boost decays over the run.

Numbers land in ``benchmark.extra_info`` so future PRs have a scaling
trajectory to compare against.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.bench import QUICK, scaled_down, shard_records, shard_routing_records
from repro.bench.thresholds import (
    PROCESS_4SHARD_MIN_SPEEDUP,
    ROUTED_OVER_HASH_MIN_RATIO,
    ROUTED_SERIAL_MIN_SPEEDUP,
    SERIAL_4SHARD_MIN_RATIO,
)
from repro.core.registry import build_engine
from repro.experiments.harness import run_shard_sweep
from repro.indexes.manager import IndexManager
from repro.predicates.registry import PredicateRegistry
from repro.workloads.scenarios import SkewedHotKeyScenario

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
CPUS = os.cpu_count() or 1

#: Engines the scaling benchmarks sweep: the paper's contribution and
#: the heaviest per-event baseline (brute force scales best, since its
#: phase-2 cost is linear in the shard's subscription count).
ENGINES = ("noncanonical", "bruteforce")


def test_runner_shard_phase_produces_curves():
    """Quick-scale runner phase: every engine gets a 1/2/4-shard curve
    with a speedup relative to its own unsharded baseline."""
    records = shard_records(scaled_down(QUICK, 2), engines=ENGINES)
    by_engine = {}
    for record in records:
        assert record.scenario == "shard-scaling"
        by_engine.setdefault(record.engine, []).append(record)
    assert set(by_engine) == set(ENGINES)
    for engine, curve in by_engine.items():
        assert [record.shards for record in curve] == list(QUICK.shard_counts)
        assert curve[0].executor == "serial"
        assert curve[0].metrics["speedup"] == 1.0
        assert all(record.events_per_second > 0 for record in curve)
        assert all(record.engine == engine for record in curve)
        assert all("speedup" in record.metrics for record in curve)


def test_serial_sharding_overhead_is_bounded(benchmark):
    """Partitioning without parallelism costs union/dispatch overhead
    only — the 4-shard serial configuration must keep at least
    ``SERIAL_4SHARD_MIN_RATIO`` of the unsharded throughput."""
    results = run_shard_sweep(
        subscription_count=300,
        event_count=256,
        shard_counts=(1, 4),
        engines=("noncanonical",),
        executor="serial",
        repeats=3,
    )
    curve = results["noncanonical"]
    four = next(point for point in curve if point.shards == 4)
    benchmark.extra_info.update(
        serial_speedup_4_shards=round(four.speedup, 3),
        baseline_events_per_second=round(curve[0].events_per_second),
    )

    def run():
        run_shard_sweep(
            subscription_count=60,
            event_count=64,
            shard_counts=(1, 2),
            engines=("noncanonical",),
            repeats=1,
        )

    benchmark(run)
    assert four.speedup > SERIAL_4SHARD_MIN_RATIO, (
        f"serial 4-shard throughput collapsed to {four.speedup:.2f}x of "
        "the unsharded baseline"
    )


def test_runner_routing_phase_produces_curves():
    """Quick-scale routing phase: hash and routed curves share one
    unsharded baseline and the routed points explain themselves with
    pruning metrics."""
    records = shard_routing_records(scaled_down(QUICK, 2))
    assert {record.scenario for record in records} == {"shard-routing"}
    by_partitioner = {}
    for record in records:
        by_partitioner.setdefault(record.partitioner, []).append(record)
    # one baseline (recorded under the pinned "hash" default) plus one
    # sharded point per partitioner per routing shard count
    assert [r.shards for r in by_partitioner["hash"]] == [1, 8]
    assert [r.shards for r in by_partitioner["routed"]] == [8]
    (routed,) = by_partitioner["routed"]
    assert routed.metrics["shards_pruned_per_event"] > 0
    assert (
        routed.metrics["shards_probed_per_event"]
        + routed.metrics["shards_pruned_per_event"]
        == 8.0
    )


def test_routed_partitioner_beats_hash_and_unsharded(benchmark):
    """The PR's acceptance check, measured interleaved.

    Three engines over one shared phase-1 state — unsharded, hash×8,
    routed×8 — match the same skewed event stream on the per-event path.
    Each trial times all three back to back and the best trial per
    engine is kept, so slow-clock trials hurt every configuration
    equally instead of whichever happened to run first.
    """
    scenario = SkewedHotKeyScenario(seed=7)
    subscriptions = scenario.subscriptions(1200)
    events = scenario.events(200)
    registry = PredicateRegistry()
    indexes = IndexManager()
    engines = {
        "unsharded": build_engine(
            "noncanonical", registry=registry, indexes=indexes
        ),
        "hash": build_engine(
            "noncanonical",
            shards=8,
            registry=registry,
            indexes=indexes,
        ),
        "routed": build_engine(
            "noncanonical",
            shards=8,
            partitioner="routed",
            registry=registry,
            indexes=indexes,
        ),
    }
    for engine in engines.values():
        for subscription in subscriptions:
            engine.register(subscription)
    assert engines["routed"].match_batch(events[:32]) == engines[
        "unsharded"
    ].match_batch(events[:32])

    def measure(engine) -> float:
        start = time.perf_counter()
        for event in events:
            engine.match(event)
        return time.perf_counter() - start

    best = {name: float("inf") for name in engines}
    for _ in range(3):
        for name, engine in engines.items():
            best[name] = min(best[name], measure(engine))
    routed_vs_hash = best["hash"] / best["routed"]
    routed_vs_unsharded = best["unsharded"] / best["routed"]
    counters = engines["routed"].counters
    decisions = max(counters.shards_probed + counters.shards_pruned, 1)
    pruned_per_event = counters.shards_pruned / decisions * 8
    benchmark.extra_info.update(
        routed_vs_hash=round(routed_vs_hash, 3),
        routed_vs_unsharded=round(routed_vs_unsharded, 3),
        shards_pruned_per_event=round(pruned_per_event, 2),
        unsharded_events_per_second=round(len(events) / best["unsharded"]),
    )

    def run():
        for event in events[:32]:
            engines["routed"].match(event)

    benchmark(run)
    assert counters.shards_pruned > 0, "routing never pruned a shard"
    assert routed_vs_hash > ROUTED_OVER_HASH_MIN_RATIO, (
        f"routed×8 only reached {routed_vs_hash:.2f}x of hash×8 on the "
        "skew corpus"
    )
    assert routed_vs_unsharded > ROUTED_SERIAL_MIN_SPEEDUP, (
        f"routed×8 serial fell below the unsharded baseline "
        f"({routed_vs_unsharded:.2f}x)"
    )


@pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
@pytest.mark.skipif(
    CPUS < 2, reason="shard parallelism needs more than one core"
)
def test_process_executor_reaches_speedup(benchmark):
    """The acceptance check: with the process executor, 4 shards reach
    ``PROCESS_4SHARD_MIN_SPEEDUP`` × the single-shard serial throughput
    on at least one engine."""
    results = run_shard_sweep(
        subscription_count=600,
        event_count=256,
        batch_size=256,
        shard_counts=(1, 4),
        engines=ENGINES,
        executor="process",
        repeats=3,
    )
    speedups = {
        name: next(p.speedup for p in curve if p.shards == 4)
        for name, curve in results.items()
    }
    best_engine = max(speedups, key=speedups.get)
    benchmark.extra_info.update(
        cpus=CPUS,
        **{f"speedup_{name}": round(value, 3) for name, value in speedups.items()},
    )

    def run():
        run_shard_sweep(
            subscription_count=120,
            event_count=64,
            shard_counts=(1, 4),
            engines=(best_engine,),
            executor="process",
            repeats=1,
        )

    benchmark(run)
    assert speedups[best_engine] >= PROCESS_4SHARD_MIN_SPEEDUP, (
        f"process executor at 4 shards only reached "
        f"{speedups[best_engine]:.2f}x on {best_engine} "
        f"(all: {speedups}, {CPUS} cpus)"
    )
