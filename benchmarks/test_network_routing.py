"""Covering-index scaling and network-routing benchmark gates.

Two structural claims, counter-asserted rather than timed:

* **covering scales** — registering N subscriptions into the
  :class:`~repro.subscriptions.covering_index.CoveringIndex` performs
  o(N²) *exact* ``covers()`` tests on corpora where the prefilters
  apply (band-structured subscriptions): the index counts its exact
  tests and the bound is linear with a small constant, versus ~N²/2 for
  the all-pairs scan ``prune_covered`` used to run;
* **the quick bench matrix routes** — the ``network-*`` records the
  runner emits carry a nonzero suppression ratio on the tree topology,
  with covering-on throughput at least comparable to flooding.
"""

from __future__ import annotations

from repro.bench.runner import QUICK, network_records, scaled_down
from repro.bench.thresholds import (
    COVERING_MAX_EXACT_CALLS_PER_SUB,
    NETWORK_TREE_MIN_SUPPRESSION,
)
from repro.subscriptions import CoveringIndex, parse
from repro.workloads import NetworkChurnScenario


def test_covering_index_exact_tests_stay_subquadratic():
    """o(N²) exact covers() calls on a prefilter-friendly corpus."""
    population = 512
    keys = 32
    index = CoveringIndex()
    # band corpus: per key, one wide watch plus nested and shifted
    # bands — covering structure is dense, yet the signature and
    # interval prefilters resolve almost every candidate pair
    identifier = 0
    for key in range(keys):
        for band in range(population // keys):
            low = band * 17 % 500
            high = low + 40 + band
            index.add(
                identifier,
                parse(
                    f"key = 'k{key:03d}' and "
                    f"value between [{low}, {high}]"
                ),
            )
            identifier += 1
    assert len(index) == population
    all_pairs = population * (population - 1) / 2
    budget = COVERING_MAX_EXACT_CALLS_PER_SUB * population
    assert index.covers_calls <= budget, (
        f"{index.covers_calls} exact covers() calls for {population} "
        f"adds — over the o(N²) budget of {budget:.0f} "
        f"(all-pairs would need ~{all_pairs:.0f})"
    )
    # the prefilters, not luck, did the pruning
    pruned = index.signature_pruned + index.interval_pruned
    assert pruned > all_pairs / 4


def test_covering_index_beats_all_pairs_even_with_churn():
    scenario = NetworkChurnScenario(seed=0)
    index = CoveringIndex()
    live = []
    total_adds = 0
    for step, subscription in enumerate(scenario.subscriptions(300)):
        index.add(subscription.subscription_id, subscription.expression)
        live.append(subscription.subscription_id)
        total_adds += 1
        if step % 3 == 2:
            index.remove(live.pop(0))
    assert index.covers_calls <= 40 * total_adds  # ≪ N²/2 = 45_000


def test_quick_network_records_report_suppression():
    """The bench matrix's network family: nonzero suppression on the
    tree topology and throughput parity-or-better versus flooding."""
    records = {
        record.scenario: record
        for record in network_records(scaled_down(QUICK, 2), seed=0)
    }
    tree = records["network-tree"]
    assert tree.metrics["suppression_ratio"] >= NETWORK_TREE_MIN_SUPPRESSION
    for record in records.values():
        assert record.metrics["suppression_ratio"] > 0.0
        # compaction: covering registers strictly less than flooding
        assert (
            record.metrics["registrations_per_broker"]
            < record.metrics["flooding_registrations_per_broker"]
        )
