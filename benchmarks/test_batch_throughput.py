"""Batched matching throughput — the perf trajectory for future PRs.

The batch pipeline exists to amortize per-event dispatch overhead:
phase 1 memoizes repeated attribute values across a batch
(``IndexManager.match_batch``) and phase 2 reuses candidate buffers
(``match_fulfilled_batch``).  These benchmarks record full-pipeline
events/sec for the one-event-at-a-time path (batch size 1) against the
batched path (batch size 256) on the non-canonical engine, over a
Zipf-skewed event stream with a small value domain — the repeat-heavy
regime batching targets.

The headline assertion: batch=256 must beat per-event publishing by a
measurable margin.  Numbers land in ``benchmark.extra_info`` so future
PRs have a trajectory to compare against.
"""

from __future__ import annotations

import pytest

from repro.broker import Broker
from repro import NonCanonicalEngine
from repro.experiments.harness import measure_throughput, run_throughput_sweep
from repro.indexes import IndexManager
from repro.predicates import PredicateRegistry
from repro.workloads import EventGenerator, PaperSubscriptionGenerator

SUBSCRIPTIONS = 300
EVENTS = 512
VALUE_RANGE = 16  # small domain -> heavy value repetition across a batch
SKEW = 1.1


def _loaded_engine() -> NonCanonicalEngine:
    registry = PredicateRegistry()
    indexes = IndexManager()
    engine = NonCanonicalEngine(registry=registry, indexes=indexes)
    generator = PaperSubscriptionGenerator(
        predicates_per_subscription=6, seed=20050610
    )
    for subscription in generator.subscriptions(SUBSCRIPTIONS):
        engine.register(subscription)
    return engine


def _event_stream():
    return EventGenerator(
        attributes_per_event=16,
        value_range=VALUE_RANGE,
        skew=SKEW,
        seed=42,
    ).events(EVENTS)


def test_batch256_beats_per_event(benchmark):
    """The acceptance check: batched matching out-throughputs per-event."""
    engine = _loaded_engine()
    events = _event_stream()
    # Best-of-5 on both sides: the structural win is ~1.7-2x, so the 1.1x
    # margin below holds even on noisy shared CI runners.
    per_event = measure_throughput(engine, events, batch_size=1, repeats=5)
    batched = measure_throughput(engine, events, batch_size=256, repeats=5)

    def run_batched():
        engine.match_batch(events[:256])

    benchmark(run_batched)
    benchmark.extra_info.update(
        events_per_second_batch1=round(per_event.events_per_second),
        events_per_second_batch256=round(batched.events_per_second),
        speedup=round(batched.events_per_second / per_event.events_per_second, 3),
    )
    assert batched.events_per_second > per_event.events_per_second * 1.1, (
        f"batch=256 ({batched.events_per_second:.0f} ev/s) should beat "
        f"batch=1 ({per_event.events_per_second:.0f} ev/s) by >10%"
    )


def test_throughput_sweep_reports_all_batch_sizes():
    """The harness sweep covers 1/32/256 for every default engine and
    verifies batch-vs-sequential parity before timing anything."""
    results = run_throughput_sweep(
        subscription_count=100,
        event_count=128,
        value_range=VALUE_RANGE,
        repeats=1,
    )
    assert set(results) == {"non-canonical", "counting-variant", "counting"}
    for points in results.values():
        assert [p.batch_size for p in points] == [1, 32, 256]
        assert all(p.events_per_second > 0 for p in points)


def test_broker_publish_batch_throughput(benchmark):
    """End-to-end broker path: one publish_batch call for a 256-event
    frame, with delivery bookkeeping included."""
    broker = Broker("bench", engine=_loaded_engine())
    events = _event_stream()[:256]

    def run():
        broker.publish_batch(events)

    benchmark(run)
    benchmark.extra_info.update(batch_size=len(events))
