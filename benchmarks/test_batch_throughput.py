"""Batched matching throughput — the perf trajectory for future PRs.

The batch pipeline exists to amortize per-event dispatch overhead:
phase 1 memoizes repeated attribute values across a batch
(``IndexManager.match_batch``) and phase 2 reuses candidate buffers
(``match_fulfilled_batch``).  These benchmarks consume the
:mod:`repro.bench` runner — the same measurement that produces the
committed ``BENCH_<n>.json`` trajectory — so numbers asserted here and
numbers gated in CI come from one code path, and every threshold lives
in :mod:`repro.bench.thresholds`.

The headline assertion: batch=256 must beat per-event publishing by
:data:`~repro.bench.thresholds.BATCH256_MIN_SPEEDUP` on the
non-canonical engine, over a Zipf-skewed event stream with a small
value domain — the repeat-heavy regime batching targets.
"""

from __future__ import annotations

from dataclasses import replace

from repro.bench import QUICK, throughput_records
from repro.bench.thresholds import BATCH256_MIN_SPEEDUP
from repro.broker import Broker
from repro import NonCanonicalEngine
from repro.experiments.harness import run_throughput_sweep
from repro.indexes import IndexManager
from repro.predicates import PredicateRegistry
from repro.workloads import EventGenerator, PaperSubscriptionGenerator


def _loaded_engine() -> NonCanonicalEngine:
    registry = PredicateRegistry()
    indexes = IndexManager()
    engine = NonCanonicalEngine(registry=registry, indexes=indexes)
    generator = PaperSubscriptionGenerator(
        predicates_per_subscription=6, seed=20050610
    )
    for subscription in generator.subscriptions(QUICK.subscriptions):
        engine.register(subscription)
    return engine


def _event_stream():
    return EventGenerator(
        attributes_per_event=16,
        value_range=QUICK.value_range,
        skew=1.1,
        seed=42,
    ).events(QUICK.events)


def test_batch256_beats_per_event(benchmark):
    """The acceptance check: batched matching out-throughputs per-event.

    Measured through the bench runner's throughput phase (quick scale,
    narrowed to the two batch sizes the assertion uses — no point paying
    for the batch=32 leg here; the bench job measures the full matrix).
    """
    records = throughput_records(
        replace(QUICK, batch_sizes=(1, 256)), engines=("noncanonical",)
    )
    by_batch = {record.batch_size: record for record in records}
    per_event = by_batch[1]
    batched = by_batch[256]
    speedup = batched.events_per_second / per_event.events_per_second

    engine = _loaded_engine()
    events = _event_stream()[:256]

    def run_batched():
        engine.match_batch(events)

    benchmark(run_batched)
    benchmark.extra_info.update(
        events_per_second_batch1=round(per_event.events_per_second),
        events_per_second_batch256=round(batched.events_per_second),
        candidates_per_event=round(
            batched.metrics.get("candidates_probed_per_event", 0.0), 2
        ),
        speedup=round(speedup, 3),
    )
    assert speedup > BATCH256_MIN_SPEEDUP, (
        f"batch=256 ({batched.events_per_second:.0f} ev/s) should beat "
        f"batch=1 ({per_event.events_per_second:.0f} ev/s) by "
        f">{BATCH256_MIN_SPEEDUP}x"
    )


def test_runner_covers_every_engine_and_batch_size():
    """The runner's throughput phase covers all six registry engines at
    1/32/256 (parity is verified inside the harness before timing)."""
    records = throughput_records(QUICK)
    engines = {record.engine for record in records}
    assert engines == {
        "noncanonical",
        "counting",
        "counting-variant",
        "matching-tree",
        "bruteforce",
        "paged",
    }
    for engine in engines:
        batch_sizes = [r.batch_size for r in records if r.engine == engine]
        assert batch_sizes == list(QUICK.batch_sizes)
    assert all(r.events_per_second > 0 for r in records)
    # the counters the trajectory uses to explain movements are present
    assert all("candidates_probed_per_event" in r.metrics for r in records)


def test_throughput_sweep_reports_all_batch_sizes():
    """The harness sweep covers 1/32/256 for every default engine and
    verifies batch-vs-sequential parity before timing anything."""
    results = run_throughput_sweep(
        subscription_count=100,
        event_count=128,
        value_range=QUICK.value_range,
        repeats=1,
    )
    assert set(results) == {"non-canonical", "counting-variant", "counting"}
    for points in results.values():
        assert [p.batch_size for p in points] == [1, 32, 256]
        assert all(p.events_per_second > 0 for p in points)
        assert all(p.memory_bytes > 0 for p in points)


def test_broker_publish_batch_throughput(benchmark):
    """End-to-end broker path: one publish_batch call for a 256-event
    frame, with delivery bookkeeping included."""
    broker = Broker("bench", engine=_loaded_engine())
    events = _event_stream()[:256]

    def run():
        broker.publish_batch(events)

    benchmark(run)
    benchmark.extra_info.update(batch_size=len(events))
