"""C5 — the §2.1 category comparison: no index vs one-dimensional vs
multi-dimensional.

Paper §2.1 orders the three algorithm categories:

* time efficiency:  multi-dimensional > one-dimensional > non-indexing
  ("regarding time efficiency multi-dimensional indexes are a better
  choice than one-dimensional ones"; non-index matching "grows linearly
  with the number of subscriptions and has a strong gradient");
* space efficiency: non-indexing > one-dimensional > multi-dimensional
  ("multi-dimensional ones might index predicates several times").

One benchmark per engine on a shared conjunctive-friendly workload, plus
assertion benches for both orderings.
"""

from __future__ import annotations

import pytest

from repro import build_engine
from repro.indexes import IndexManager
from repro.predicates import PredicateRegistry
from repro.workloads import FulfilledPredicateSampler, PaperSubscriptionGenerator

SUBSCRIPTIONS = 1_500
PREDICATES = 6
FULFILLED = 40
EVENTS = 5

#: §2.1 category -> engine registry name
CATEGORY_ENGINES = {
    "brute-force": "bruteforce",        # no index structures
    "counting": "counting",             # one-dimensional
    "matching-tree": "matching-tree",   # multi-dimensional
}

_cache: list = []


def build(name):
    """All three engines share one registry/index manager so fulfilled
    predicate ids mean the same thing to each of them."""
    if not _cache:
        registry = PredicateRegistry()
        indexes = IndexManager()
        engines = {
            key: build_engine(name, registry=registry, indexes=indexes)
            for key, name in CATEGORY_ENGINES.items()
        }
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=PREDICATES, seed=77
        )
        for subscription in generator.subscriptions(SUBSCRIPTIONS):
            for engine in engines.values():
                engine.register(subscription)
        sampler = FulfilledPredicateSampler(
            predicate_ids=range(1, len(registry) + 1),
            fulfilled_per_event=FULFILLED,
            seed=78,
        )
        _cache.append((engines, sampler.samples(EVENTS)))
    engines, sets = _cache[0]
    return engines[name], sets


@pytest.mark.parametrize("name", list(CATEGORY_ENGINES))
def test_category_matching_time(benchmark, name):
    engine, sets = build(name)
    match = engine.match_fulfilled

    def rounds():
        total = 0
        for fulfilled in sets:
            total += len(match(fulfilled))
        return total

    benchmark.extra_info.update(
        category=name, memory_bytes=engine.memory_bytes()
    )
    benchmark(rounds)


#: best-of-N repetitions per engine — a single timed pass races the
#: scheduler at QUICK_SCALE (matching-tree vs counting used to flake)
TIMING_REPETITIONS = 7
#: ratio below which two best-of-N timings are considered
#: indistinguishable noise; orderings are asserted only above it
NOISE_FLOOR = 1.35


def test_category_orderings(benchmark):
    """Both §2.1 orderings, asserted on measured engines.

    Timing comparisons use best-of-N (minimum over
    ``TIMING_REPETITIONS`` timed passes — the standard way to strip
    scheduler noise from a point estimate) and are asserted only above
    ``NOISE_FLOOR``: an engine may not be *slower* than the category the
    paper ranks it above by more than the noise margin.  The memory
    ordering is deterministic and stays strict.
    """

    def collect():
        import time

        measurements = {}
        for name in CATEGORY_ENGINES:
            engine, sets = build(name)
            best = float("inf")
            for _ in range(TIMING_REPETITIONS):
                start = time.perf_counter()
                for _ in range(3):
                    for fulfilled in sets:
                        engine.match_fulfilled(fulfilled)
                best = min(best, time.perf_counter() - start)
            measurements[name] = (best, engine.memory_bytes())
        return measurements

    measurements = benchmark.pedantic(collect, rounds=1, iterations=1)
    times = {name: t for name, (t, _) in measurements.items()}
    memory = {name: m for name, (_, m) in measurements.items()}
    # time: multi-dimensional <= one-dimensional <= non-indexing
    # (up to the noise floor)
    assert times["matching-tree"] < times["counting"] * NOISE_FLOOR, times
    assert times["counting"] < times["brute-force"] * NOISE_FLOOR, times
    # space: non-indexing < one-dimensional < multi-dimensional
    assert memory["brute-force"] < memory["counting"] < memory["matching-tree"], (
        memory
    )
    benchmark.extra_info.update(
        times_ms={k: round(v * 1e3, 2) for k, v in times.items()},
        memory_bytes=memory,
    )


def test_agreement_across_categories(benchmark):
    def agree():
        engines = [build(name)[0] for name in CATEGORY_ENGINES]
        sets = build("counting")[1]
        for fulfilled in sets:
            answers = [engine.match_fulfilled(fulfilled) for engine in engines]
            assert all(answer == answers[0] for answer in answers)
        return True

    assert benchmark.pedantic(agree, rounds=1, iterations=1)
