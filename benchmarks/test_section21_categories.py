"""C5 — the §2.1 category comparison: no index vs one-dimensional vs
multi-dimensional.

Paper §2.1 orders the three algorithm categories:

* time efficiency:  multi-dimensional > one-dimensional > non-indexing
  ("regarding time efficiency multi-dimensional indexes are a better
  choice than one-dimensional ones"; non-index matching "grows linearly
  with the number of subscriptions and has a strong gradient");
* space efficiency: non-indexing > one-dimensional > multi-dimensional
  ("multi-dimensional ones might index predicates several times").

One benchmark per engine on a shared conjunctive-friendly workload, plus
assertion benches for both orderings.
"""

from __future__ import annotations

import pytest

from repro.core import BruteForceEngine, CountingEngine
from repro.core.matching_tree import MatchingTreeEngine
from repro.indexes import IndexManager
from repro.predicates import PredicateRegistry
from repro.workloads import FulfilledPredicateSampler, PaperSubscriptionGenerator

SUBSCRIPTIONS = 1_500
PREDICATES = 6
FULFILLED = 40
EVENTS = 5

ENGINE_FACTORIES = {
    "brute-force": BruteForceEngine,        # no index structures
    "counting": CountingEngine,             # one-dimensional
    "matching-tree": MatchingTreeEngine,    # multi-dimensional
}

_cache: list = []


def build(name):
    """All three engines share one registry/index manager so fulfilled
    predicate ids mean the same thing to each of them."""
    if not _cache:
        registry = PredicateRegistry()
        indexes = IndexManager()
        engines = {
            key: factory(registry=registry, indexes=indexes)
            for key, factory in ENGINE_FACTORIES.items()
        }
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=PREDICATES, seed=77
        )
        for subscription in generator.subscriptions(SUBSCRIPTIONS):
            for engine in engines.values():
                engine.register(subscription)
        sampler = FulfilledPredicateSampler(
            predicate_ids=range(1, len(registry) + 1),
            fulfilled_per_event=FULFILLED,
            seed=78,
        )
        _cache.append((engines, sampler.samples(EVENTS)))
    engines, sets = _cache[0]
    return engines[name], sets


@pytest.mark.parametrize("name", list(ENGINE_FACTORIES))
def test_category_matching_time(benchmark, name):
    engine, sets = build(name)
    match = engine.match_fulfilled

    def rounds():
        total = 0
        for fulfilled in sets:
            total += len(match(fulfilled))
        return total

    benchmark.extra_info.update(
        category=name, memory_bytes=engine.memory_bytes()
    )
    benchmark(rounds)


def test_category_orderings(benchmark):
    """Both §2.1 orderings, asserted on measured engines."""

    def collect():
        import time

        measurements = {}
        for name in ENGINE_FACTORIES:
            engine, sets = build(name)
            start = time.perf_counter()
            for _ in range(3):
                for fulfilled in sets:
                    engine.match_fulfilled(fulfilled)
            measurements[name] = (
                time.perf_counter() - start,
                engine.memory_bytes(),
            )
        return measurements

    measurements = benchmark.pedantic(collect, rounds=1, iterations=1)
    times = {name: t for name, (t, _) in measurements.items()}
    memory = {name: m for name, (_, m) in measurements.items()}
    # time: multi-dimensional < one-dimensional < non-indexing
    assert times["matching-tree"] < times["counting"] < times["brute-force"], times
    # space: non-indexing < one-dimensional < multi-dimensional
    assert memory["brute-force"] < memory["counting"] < memory["matching-tree"], (
        memory
    )
    benchmark.extra_info.update(
        times_ms={k: round(v * 1e3, 2) for k, v in times.items()},
        memory_bytes=memory,
    )


def test_agreement_across_categories(benchmark):
    def agree():
        engines = [build(name)[0] for name in ENGINE_FACTORIES]
        sets = build("counting")[1]
        for fulfilled in sets:
            answers = [engine.match_fulfilled(fulfilled) for engine in engines]
            assert all(answer == answers[0] for answer in answers)
        return True

    assert benchmark.pedantic(agree, rounds=1, iterations=1)
