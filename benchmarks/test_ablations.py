"""A1-A6 — ablations of the non-canonical engine's design choices.

These quantify the decisions DESIGN.md §5 calls out: evaluation form
(A1), codec (A2), tree reordering (A3, paper §3.2 future work), shared
predicates (A4, paper §4 avoids them), unsubscription bookkeeping (A5,
paper §2.1/§3.3), and the disk-backed arena (A6, paper §5).
"""

from __future__ import annotations

import pytest

from repro import (
    CountingEngine,
    DiskTreeStore,
    NonCanonicalEngine,
    PagedNonCanonicalEngine,
)
from repro.indexes import IndexManager
from repro.predicates import PredicateRegistry
from repro.subscriptions import (
    BasicTreeCodec,
    SubscriptionTree,
    VarintTreeCodec,
)
from repro.workloads import FulfilledPredicateSampler, PaperSubscriptionGenerator

SUBSCRIPTIONS = 2_000
PREDICATES = 8
FULFILLED = 60
EVENTS = 5


def loaded_engine(engine, *, predicates=PREDICATES, count=SUBSCRIPTIONS,
                  shared_fraction=0.0, seed=5):
    generator = PaperSubscriptionGenerator(
        predicates_per_subscription=predicates,
        shared_predicate_fraction=shared_fraction,
        seed=seed,
    )
    subscriptions = generator.subscriptions(count)
    for subscription in subscriptions:
        engine.register(subscription)
    return engine, subscriptions


def fulfilled_sets(engine, *, fulfilled=FULFILLED, events=EVENTS, seed=31):
    sampler = FulfilledPredicateSampler(
        predicate_ids=range(1, len(engine.registry) + 1),
        fulfilled_per_event=fulfilled,
        seed=seed,
    )
    return sampler.samples(events)


def run_events(engine, sets):
    total = 0
    for fulfilled in sets:
        total += len(engine.match_fulfilled(fulfilled))
    return total


class TestA1EvaluationForm:
    """Compiled set-form vs direct encoded-byte evaluation."""

    @pytest.mark.parametrize("evaluation", ["compiled", "encoded"])
    def test_encoding_ablation(self, benchmark, evaluation):
        engine, _ = loaded_engine(NonCanonicalEngine(evaluation=evaluation))
        sets = fulfilled_sets(engine)
        reference, _ = loaded_engine(NonCanonicalEngine())
        assert run_events(engine, sets) == run_events(reference, sets)
        benchmark.extra_info["evaluation"] = evaluation
        benchmark(run_events, engine, sets)


class TestA2Codec:
    """Paper §5 'improved encoding': varint vs the §3.3 fixed-width codec."""

    @pytest.mark.parametrize("codec", ["basic", "varint"])
    def test_varint_encoding_size(self, benchmark, codec):
        engine, _ = loaded_engine(NonCanonicalEngine(codec=codec), count=500)
        trees_bytes = engine.memory_breakdown()["subscription_trees"]
        benchmark.extra_info.update(codec=codec, arena_bytes=trees_bytes)
        sets = fulfilled_sets(engine)
        benchmark(run_events, engine, sets)

    def test_varint_smaller_than_basic(self, benchmark):
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=PREDICATES, seed=5
        )
        registry = PredicateRegistry()
        trees = [
            SubscriptionTree.from_expression(s.expression, registry.register)
            for s in generator.subscriptions(200)
        ]
        basic, varint = BasicTreeCodec(), VarintTreeCodec()

        def sizes():
            return (
                sum(basic.encoded_size(t) for t in trees),
                sum(varint.encoded_size(t) for t in trees),
            )

        basic_bytes, varint_bytes = benchmark(sizes)
        assert varint_bytes < basic_bytes
        benchmark.extra_info.update(
            basic_bytes=basic_bytes,
            varint_bytes=varint_bytes,
            saving=round(1 - varint_bytes / basic_bytes, 3),
        )


class TestA3TreeReordering:
    """Paper §3.2: 'reordering subscription trees ... remains to be
    investigated' — here with direct encoded evaluation, where child
    order controls short-circuiting."""

    @pytest.mark.parametrize("reordered", [False, True], ids=["plain", "reordered"])
    def test_tree_reordering(self, benchmark, reordered):
        registry = PredicateRegistry()
        indexes = IndexManager()
        # skewed fulfilment: low predicate ids fulfilled often
        def selectivity_of(pid):
            return 0.9 if pid % 4 == 0 else 0.02

        selectivity = {pid: selectivity_of(pid) for pid in range(1, 40_000)}
        engine = NonCanonicalEngine(
            evaluation="encoded",
            selectivity=selectivity if reordered else None,
            registry=registry,
            indexes=indexes,
        )
        engine, _ = loaded_engine(engine, count=1_000)
        universe = [
            pid for pid in range(1, len(registry) + 1) if selectivity_of(pid) > 0.5
        ]
        sampler = FulfilledPredicateSampler(universe, FULFILLED, seed=8)
        sets = sampler.samples(EVENTS)
        benchmark.extra_info["reordered"] = reordered
        benchmark(run_events, engine, sets)


class TestA4SharedPredicates:
    """Paper §4 avoids shared predicates; sharing shrinks the predicate
    universe and the index, at the cost of larger candidate sets."""

    @pytest.mark.parametrize("shared", [0.0, 0.6], ids=["unique", "shared60"])
    def test_shared_predicates(self, benchmark, shared):
        engine, _ = loaded_engine(
            NonCanonicalEngine(), shared_fraction=shared, count=1_000
        )
        sets = fulfilled_sets(engine)
        benchmark.extra_info.update(
            shared_fraction=shared,
            distinct_predicates=len(engine.registry),
            memory_bytes=engine.memory_bytes(),
        )
        benchmark(run_events, engine, sets)

    def test_sharing_shrinks_registry(self, benchmark):
        def registries():
            unique, _ = loaded_engine(NonCanonicalEngine(), count=300)
            shared, _ = loaded_engine(
                NonCanonicalEngine(), shared_fraction=0.6, count=300, seed=6
            )
            return len(unique.registry), len(shared.registry)

        unique_count, shared_count = benchmark.pedantic(
            registries, rounds=1, iterations=1
        )
        assert shared_count < unique_count


class TestA5Unsubscription:
    """Direct unsubscription (per-subscription bookkeeping) vs the full
    association-table scan the paper's footnote describes — and the
    non-canonical engine, whose encoded tree lists its own predicates."""

    CASES = {
        "non-canonical": lambda: NonCanonicalEngine(),
        "counting-with-lists": lambda: CountingEngine(support_unsubscription=True),
        "counting-scan": lambda: CountingEngine(support_unsubscription=False),
    }

    @pytest.mark.parametrize("case", list(CASES))
    def test_unsubscription_cost(self, benchmark, case):
        def setup():
            engine, subscriptions = loaded_engine(
                self.CASES[case](), count=400, predicates=6
            )
            return (engine, [s.subscription_id for s in subscriptions[:50]]), {}

        def unregister_fifty(engine, doomed):
            for sid in doomed:
                engine.unregister(sid)

        benchmark.extra_info["strategy"] = case
        benchmark.pedantic(unregister_fifty, setup=setup, rounds=5, iterations=1)


class TestA6DiskBackedArena:
    """Paper §5: filtering exploiting resources other than main memory."""

    @pytest.mark.parametrize("backend", ["ram", "disk"])
    def test_paged_matching(self, benchmark, backend, tmp_path):
        if backend == "ram":
            engine, _ = loaded_engine(NonCanonicalEngine(evaluation="encoded"))
        else:
            store = DiskTreeStore(
                str(tmp_path / "arena"), page_size=4096, cache_pages=32
            )
            engine, _ = loaded_engine(PagedNonCanonicalEngine(store=store))
        sets = fulfilled_sets(engine)
        benchmark.extra_info.update(
            backend=backend, ram_bytes=engine.memory_bytes()
        )
        benchmark(run_events, engine, sets)
        if backend == "disk":
            benchmark.extra_info["cache_hit_rate"] = round(
                engine.store.hit_rate(), 3
            )
            engine.close()
