"""F3a-F3f — regenerate Figure 3: subscription-matching time per event.

One benchmark per (panel, engine).  Parameters are the paper's, scaled
by the quick scale (subscriptions /1250, fulfilled /125 — DESIGN.md §3);
each benchmark times **phase 2 only** on pre-sampled fulfilled-id sets,
exactly the quantity the paper's ordinates plot.

The cross-engine ordering assertions (non-canonical fastest, counting
linear, ...) live in ``test_claims.py``; here each engine is timed in
isolation so ``--benchmark-compare`` across engines reads like the
paper's curves.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure3 import PANELS
from repro.experiments.parameters import QUICK_SCALE

EVENTS_PER_ROUND = 5

#: (panel, scaled subscription count, scaled fulfilled count)
PANEL_CASES = [
    (
        panel.panel_id,
        panel.predicates_per_subscription,
        QUICK_SCALE.subscriptions(panel.paper_max_subscriptions),
        QUICK_SCALE.fulfilled(panel.fulfilled_paper),
    )
    for panel in PANELS.values()
]

ENGINE_NAMES = ["non-canonical", "counting-variant", "counting"]


@pytest.mark.parametrize(
    "panel_id, predicates, subscriptions, fulfilled",
    PANEL_CASES,
    ids=[f"fig3{case[0]}" for case in PANEL_CASES],
)
@pytest.mark.parametrize("engine_name", ENGINE_NAMES)
def test_subscription_matching(
    benchmark, workload_factory, panel_id, predicates, subscriptions,
    fulfilled, engine_name,
):
    workload = workload_factory(predicates, subscriptions)
    engine = workload.engines[engine_name]
    fulfilled_sets = workload.fulfilled_sets(fulfilled, EVENTS_PER_ROUND)
    match = engine.match_fulfilled

    def matching_round():
        total = 0
        for fulfilled_ids in fulfilled_sets:
            total += len(match(fulfilled_ids))
        return total

    benchmark.extra_info.update(
        panel=panel_id,
        engine=engine_name,
        subscriptions=subscriptions,
        stored_subscriptions=engine.stored_subscription_count,
        fulfilled_per_event=fulfilled,
        memory_bytes=engine.memory_bytes(),
    )
    benchmark(matching_round)
    # sanity: the counting engines really stored the transformed multiple
    if engine_name != "non-canonical":
        assert engine.stored_subscription_count == (
            subscriptions * 2 ** (predicates // 2)
        )
