"""C1-C4 — the paper's quantitative claims, asserted and timed.

* C1 (§2, §3.1, §4): DNF transformation is exponential — ``2**(|p|/2)``
  clauses of ``|p|/2`` predicates on the evaluation workload; the §3.1
  example expands to 9 disjunctions.
* C2 (§4.1): within one memory budget the non-canonical engine holds
  more than 4x the subscriptions of the counting engine at ``|p| = 10``.
* C3 (Fig. 3): counting matching time grows linearly with the number of
  registered subscriptions; the variant and the non-canonical engine
  stay flat.
* C4 (§4.1): the non-canonical engine always beats the variant, and its
  advantage over plain counting grows with N (our substrate compresses
  the small-N region where the paper's counting implementation still
  won; EXPERIMENTS.md discusses the constant-factor difference).
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import normalized_slope, least_squares_slope, run_sweep
from repro.experiments.figure3 import machine_for
from repro.experiments.parameters import QUICK_SCALE
from repro.memory import (
    PaperWorkloadShape,
    capacity,
    capacity_ratio,
    counting_bytes,
    noncanonical_bytes,
)
from repro.memory.model import SimulatedMachine
from repro.subscriptions import dnf_clause_count, parse, to_dnf
from repro.workloads import PaperSubscriptionGenerator


class TestC1DnfBlowup:
    @pytest.mark.parametrize("predicates", [6, 8, 10])
    def test_dnf_blowup_exponential(self, benchmark, predicates):
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=predicates, seed=1
        )
        expression = generator.subscription().expression
        dnf = benchmark(to_dnf, expression)
        assert len(dnf) == 2 ** (predicates // 2)
        assert all(len(clause) == predicates // 2 for clause in dnf)
        benchmark.extra_info.update(
            clauses=len(dnf), literals=dnf.total_literal_count()
        )

    def test_dnf_blowup_section31_example(self, benchmark):
        expression = parse(
            "(a > 10 or a <= 5 or b = 1) and (c <= 20 or c = 30 or d = 5)"
        )
        count = benchmark(dnf_clause_count, expression)
        assert count == 9  # "s results in 9 disjunctions" (§3.1)


class TestC2MemoryCapacity:
    def test_memory_capacity_ratio(self, benchmark):
        shape = PaperWorkloadShape(10)
        ratio = benchmark(capacity_ratio, shape)
        assert ratio > 4.0
        benchmark.extra_info["capacity_ratio"] = round(ratio, 2)

    def test_capacity_on_paper_machine(self, benchmark):
        shape = PaperWorkloadShape(10)
        budget = SimulatedMachine().available_bytes

        def capacities():
            return (
                capacity(budget, shape, "non-canonical"),
                capacity(budget, shape, "counting"),
            )

        non_canonical, counting = benchmark(capacities)
        assert non_canonical > 4 * counting
        benchmark.extra_info.update(
            noncanonical_capacity=non_canonical, counting_capacity=counting
        )

    @pytest.mark.parametrize("predicates", [6, 8, 10])
    def test_per_subscription_memory(self, benchmark, predicates):
        shape = PaperWorkloadShape(predicates)

        def per_subscription():
            return noncanonical_bytes(1, shape), counting_bytes(1, shape)

        nc_bytes, cnt_bytes = benchmark(per_subscription)
        assert cnt_bytes > nc_bytes
        benchmark.extra_info.update(
            noncanonical_bytes=nc_bytes, counting_bytes=cnt_bytes
        )


def _shape_sweep():
    """A small Fig. 3-style sweep used by the growth-shape claims."""
    return run_sweep(
        predicates_per_subscription=8,
        subscription_counts=[100, 400, 800, 1200, 1600],
        fulfilled_per_event=40,
        machine=machine_for(QUICK_SCALE),
        events_per_point=3,
        seed=QUICK_SCALE.seed,
        repeats=5,
    )


class TestC3GrowthShapes:
    def test_growth_shapes(self, benchmark):
        result = benchmark.pedantic(_shape_sweep, rounds=1, iterations=1)
        counting = result.sweeps["counting"].series(adjusted=False)
        variant = result.sweeps["counting-variant"].series(adjusted=False)
        non_canonical = result.sweeps["non-canonical"].series(adjusted=False)
        # counting: linear in N (high normalized slope, good linear fit)
        slope = normalized_slope(counting)
        _, r_squared = least_squares_slope(counting)
        assert slope > 0.5, f"counting not linear: {counting}"
        assert r_squared > 0.95, f"counting fit poor: {r_squared}"
        # the others: flat in N.  The claim is relative — these curves
        # stay flat *compared to counting's linear growth* — so the
        # ceiling is half of counting's measured slope (~1.0 when
        # linear, so ceiling ~0.5), floored at the ~0.4 normalized
        # slope a truly flat microsecond-scale curve can measure under
        # full-suite scheduler load.  A real regression toward linear
        # growth still trips this comfortably.
        flat_ceiling = max(0.5 * slope, 0.4)
        assert normalized_slope(variant) < flat_ceiling, (
            normalized_slope(variant), slope, variant)
        assert normalized_slope(non_canonical) < flat_ceiling, (
            normalized_slope(non_canonical), slope, non_canonical)
        benchmark.extra_info.update(
            counting_slope=round(slope, 3),
            counting_r2=round(r_squared, 4),
            variant_slope=round(normalized_slope(variant), 3),
            noncanonical_slope=round(normalized_slope(non_canonical), 3),
        )

    def test_memory_bend_positions(self, benchmark):
        """The swap bends: counting thrashes first; the non-canonical
        engine's bend sits >4x further out (the Fig. 3 sharp bends)."""

        def bends():
            machine = SimulatedMachine(
                total_memory_bytes=400_000, os_reserved_bytes=50_000
            )
            result = run_sweep(
                predicates_per_subscription=10,
                subscription_counts=[200, 400, 800, 1200, 1600, 2000],
                fulfilled_per_event=40,
                machine=machine,
                events_per_point=2,
                seed=1,
                repeats=1,
            )
            counting_bend = result.sweeps["counting"].first_thrashing_point()
            nc_bend = result.sweeps["non-canonical"].first_thrashing_point()
            return counting_bend, nc_bend, machine

        counting_bend, nc_bend, machine = benchmark.pedantic(
            bends, rounds=1, iterations=1
        )
        assert counting_bend is not None, "counting never exhausted the budget"
        # analytic bend positions under the same budget
        shape = PaperWorkloadShape(10)
        analytic_counting = capacity(machine.available_bytes, shape, "counting")
        analytic_nc = capacity(machine.available_bytes, shape, "non-canonical")
        assert analytic_nc > 4 * analytic_counting
        assert counting_bend.subscriptions <= 2 * analytic_counting
        if nc_bend is not None:
            assert nc_bend.subscriptions > 4 * counting_bend.subscriptions


class TestC4Ordering:
    def test_crossovers_and_ordering(self, benchmark):
        result = benchmark.pedantic(_shape_sweep, rounds=1, iterations=1)
        non_canonical = dict(result.sweeps["non-canonical"].series(adjusted=False))
        variant = dict(result.sweeps["counting-variant"].series(adjusted=False))
        counting = dict(result.sweeps["counting"].series(adjusted=False))
        # "it always achieves better time efficiency than the implemented
        # variant of the counting algorithm" (§4.1)
        for n in non_canonical:
            assert non_canonical[n] < variant[n], (n, non_canonical[n], variant[n])
        # counting's disadvantage grows with N
        first, last = min(counting), max(counting)
        ratio_first = counting[first] / non_canonical[first]
        ratio_last = counting[last] / non_canonical[last]
        assert ratio_last > ratio_first
        assert ratio_last > 10.0
        benchmark.extra_info.update(
            counting_vs_nc_first=round(ratio_first, 2),
            counting_vs_nc_last=round(ratio_last, 2),
        )

    def test_variant_gap_grows_with_transformed_count(self, benchmark):
        """§4.1: 'the difference ... becomes larger in cases of growing
        numbers of transformed subscriptions' (Fig. 3(d) -> 3(f))."""

        def gaps():
            ratios = []
            for predicates in (6, 8, 10):
                result = run_sweep(
                    predicates_per_subscription=predicates,
                    subscription_counts=[400, 800],
                    fulfilled_per_event=80,
                    machine=SimulatedMachine(),
                    events_per_point=3,
                    seed=2,
                    repeats=3,
                )
                nc = result.sweeps["non-canonical"].points[-1].raw_seconds
                var = result.sweeps["counting-variant"].points[-1].raw_seconds
                ratios.append(var / nc)
            return ratios

        ratios = benchmark.pedantic(gaps, rounds=1, iterations=1)
        assert ratios[0] < ratios[-1], ratios
        benchmark.extra_info["variant_over_nc_by_p"] = [
            round(r, 2) for r in ratios
        ]
