"""Shared workload builders for the benchmark suite.

Benchmarks follow the paper's measurement protocol: engines share one
predicate registry and index manager (identical phase 1), fulfilled
predicate-id sets are sampled directly (the paper controls "matching
predicates per event"), and only phase 2 is timed.

Workload construction is memoized per (predicate count, subscription
count) so the many per-engine benchmarks in one session do not rebuild
the same subscription population.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro import build_engine
from repro.indexes import IndexManager
from repro.predicates import PredicateRegistry
from repro.workloads import FulfilledPredicateSampler, PaperSubscriptionGenerator


@dataclass
class Workload:
    """Engines loaded with one paper-shaped subscription population."""

    predicates_per_subscription: int
    subscriptions: int
    registry: PredicateRegistry
    engines: dict[str, object]
    subscription_ids: list[int]

    def fulfilled_sets(self, per_event: int, events: int, seed: int = 99):
        sampler = FulfilledPredicateSampler(
            predicate_ids=range(1, len(self.registry) + 1),
            fulfilled_per_event=per_event,
            seed=seed,
        )
        return sampler.samples(events)


_CACHE: dict[tuple[int, int], Workload] = {}


def build_workload(predicates: int, subscriptions: int) -> Workload:
    """Engines of all three kinds loaded with the same subscriptions."""
    key = (predicates, subscriptions)
    if key in _CACHE:
        return _CACHE[key]
    registry = PredicateRegistry()
    indexes = IndexManager()
    engines = {
        engine.name: engine
        for engine in (
            build_engine(name, registry=registry, indexes=indexes)
            for name in ("noncanonical", "counting-variant", "counting")
        )
    }
    generator = PaperSubscriptionGenerator(
        predicates_per_subscription=predicates, seed=20050610
    )
    ids = []
    for subscription in generator.subscriptions(subscriptions):
        for engine in engines.values():
            engine.register(subscription)
        ids.append(subscription.subscription_id)
    workload = Workload(
        predicates_per_subscription=predicates,
        subscriptions=subscriptions,
        registry=registry,
        engines=engines,
        subscription_ids=ids,
    )
    _CACHE[key] = workload
    return workload


@pytest.fixture(scope="session")
def workload_factory():
    return build_workload
