"""Bit-packed phase-2 kernel (PR 8): microbenchmarks and perf gates.

Three claims, checked at three levels:

* **primitive throughput** — the kernel's word-wise AND and popcount
  over event-space integers move orders of magnitude faster than
  per-event set algebra on the same fulfillment data (the reason the
  counting-style engines rewrote onto them);
* **operation bound** — the rewritten phase 2 does *batch*-proportional
  Python-level work, not event-proportional: the engines' own
  ``candidates_probed`` counters prove one probe per candidate per
  batch, where the set-based path paid one per candidate per event;
* **trajectory floor** — the committed ``BENCH_8.json`` point must hold
  :data:`~repro.bench.thresholds.BITSET_BATCH256_MIN_SPEEDUP` over the
  pre-kernel ``BENCH_5.json`` records for the rewritten engines.  Both
  reports come from the same container class, so the ratio is free of
  machine drift; day-to-day CI noise is the comparator gate's job.
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest

from repro.bench.records import BenchReport
from repro.bench.thresholds import BITSET_BATCH256_MIN_SPEEDUP
from repro.core.bitset import FulfilledMatrix, popcount

_REPO_ROOT = Path(__file__).resolve().parents[1]

#: Engines rewritten onto the kernel, with their committed batch=256
#: records: BENCH_5 (pre-kernel) -> BENCH_8 (kernel) must be >= the
#: thresholds floor.  Keys are registry names (the bench reports' form);
#: values are the display names the conftest workload indexes by.
KERNEL_ENGINES = {
    "noncanonical": "non-canonical",
    "counting": "counting",
    "counting-variant": "counting-variant",
}


# -- primitive throughput ----------------------------------------------


def _fulfillment_columns(bits: int, events: int, seed: int) -> list[int]:
    """Random event-space columns, ~25% dense (paper-shaped phase 1)."""
    rng = random.Random(seed)
    mask = (1 << events) - 1
    return [
        rng.getrandbits(events) & rng.getrandbits(events) & mask
        for _ in range(bits)
    ]


def test_columnwise_and_throughput(benchmark):
    """One clause AND over a 256-event batch is a handful of int ops;
    the benchmark records how many clause evaluations/second that buys."""
    columns = _fulfillment_columns(bits=512, events=256, seed=1)
    clauses = [
        tuple(random.Random(i).sample(range(512), 6)) for i in range(1000)
    ]
    all_events = (1 << 256) - 1

    def evaluate_all():
        matched = 0
        for clause in clauses:
            hits = all_events
            for bit in clause:
                hits &= columns[bit]
                if not hits:
                    break
            matched += popcount(hits)
        return matched

    result = benchmark(evaluate_all)
    benchmark.extra_info.update(
        clauses=len(clauses), events=256, matched=result
    )


def test_popcount_throughput(benchmark):
    """Distributing batch hits costs one popcount + one bit walk per
    candidate; popcount over event-space ints must be effectively free."""
    columns = _fulfillment_columns(bits=2048, events=256, seed=2)

    def count_all():
        return sum(popcount(column) for column in columns)

    result = benchmark(count_all)
    benchmark.extra_info.update(columns=len(columns), total_bits=result)


def test_kernel_and_beats_set_intersection():
    """The structural claim behind the rewrite, measured directly: AND
    over event-space integers versus per-event set intersection on the
    same fulfillment data.  The kernel must win by a wide margin even
    at this micro scale (it wins by ~100x at engine scale)."""
    import time

    events = 256
    columns = _fulfillment_columns(bits=64, events=events, seed=3)
    clause = tuple(range(0, 12, 2))
    # the same data as per-event fulfilled-bit sets
    per_event_sets = [
        {bit for bit in range(64) if columns[bit] & (1 << index)}
        for index in range(events)
    ]
    clause_set = set(clause)
    rounds = 200

    started = time.perf_counter()
    for _ in range(rounds):
        hits = (1 << events) - 1
        for bit in clause:
            hits &= columns[bit]
        popcount(hits)
    kernel_time = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(rounds):
        matched = 0
        for fulfilled in per_event_sets:
            if clause_set <= fulfilled:
                matched += 1
    set_time = time.perf_counter() - started

    assert kernel_time < set_time, (
        f"column AND ({kernel_time:.4f}s) should beat per-event set "
        f"subset tests ({set_time:.4f}s) over {rounds} rounds"
    )


# -- counter-asserted operation bound ----------------------------------


def test_phase2_probes_are_batch_proportional(workload_factory):
    """The kernel's phase 2 examines each candidate once per *batch*.

    ``candidates_probed`` is the engines' own count of Python-level
    subscription units examined; per-event phase 2 pays it once per
    event.  Over a 256-event batch the rewritten engines must therefore
    probe at most their candidate population — at least two orders of
    magnitude below the per-event bill for the same events.
    """
    workload = build_matrix_workload(workload_factory)
    events = workload.events
    for name, display_name in KERNEL_ENGINES.items():
        engine = workload.engines[display_name]
        engine.reset_counters()
        engine.match_batch(events)
        batched = engine.counters.snapshot()
        assert batched["phase2_calls"] == len(events)

        engine.reset_counters()
        for event in events:
            engine.match(event)
        sequential = engine.counters.snapshot()

        # one probe per candidate per batch, not per event: the 256-event
        # batch must cut Python-level probes by >=50x against the
        # per-event bill for the same events (the margin leaves room for
        # batch-candidate unions being wider than any one event's set)
        assert (
            batched["candidates_probed"] * 50
            <= sequential["candidates_probed"]
        ), (
            f"{name}: batch probes ({batched['candidates_probed']}) not "
            "meaningfully below per-event probes "
            f"({sequential['candidates_probed']})"
        )
        assert batched["matches_found"] == sequential["matches_found"]

    # the counting engine's bound is exact: one probe per live clause
    # slot per batch, independent of the batch size
    counting = workload.engines[KERNEL_ENGINES["counting"]]
    counting.reset_counters()
    counting.match_batch(events[:64])
    probes_64 = counting.counters.snapshot()["candidates_probed"]
    counting.reset_counters()
    counting.match_batch(events)
    probes_256 = counting.counters.snapshot()["candidates_probed"]
    assert probes_64 == probes_256, (
        f"counting probes should be batch-size-independent: "
        f"{probes_64} @64 vs {probes_256} @256"
    )


class MatrixWorkload:
    def __init__(self, engines, events, subscription_count):
        self.engines = engines
        self.events = events
        self.subscription_count = subscription_count


def build_matrix_workload(workload_factory) -> MatrixWorkload:
    """The conftest workload plus a paper-shaped 256-event batch."""
    from repro.workloads import EventGenerator

    workload = workload_factory(6, 400)
    events = EventGenerator(
        attributes_per_event=16, value_range=60, skew=1.1, seed=77
    ).events(256)
    return MatrixWorkload(
        workload.engines, events, len(workload.subscription_ids)
    )


def test_matrix_path_engages_on_batches(workload_factory):
    """Guard against silent fallback: the batch path must produce its
    answers through ``match_fulfilled_matrix`` (phase2_calls moves by
    the batch size in one call), matching the per-event answers."""
    workload = build_matrix_workload(workload_factory)
    events = workload.events[:64]
    for display_name in KERNEL_ENGINES.values():
        engine = workload.engines[display_name]
        fulfilled_sets = engine.indexes.match_batch(events)
        matrix = FulfilledMatrix.from_id_sets(
            engine.indexes.bit_layout, fulfilled_sets
        )
        assert engine.match_fulfilled_matrix(matrix) == [
            engine.match(event) for event in events
        ]


# -- committed-trajectory floor ----------------------------------------


def _batch256_throughput(report: BenchReport, engine: str) -> float:
    for record in report.records:
        if (
            record.scenario == "throughput"
            and record.engine == engine
            and record.batch_size == 256
        ):
            return record.events_per_second
    raise AssertionError(
        f"no throughput/{engine}@b256 record in the committed report"
    )


@pytest.mark.parametrize("engine", KERNEL_ENGINES)
def test_committed_trajectory_holds_kernel_speedup(engine):
    """BENCH_8 (kernel) vs BENCH_5 (pre-kernel), both committed from the
    same container class: the rewritten engines' batch=256 throughput
    must hold the thresholds floor.  This pins the *trajectory*, so a
    future PR cannot silently re-land a slow phase 2 and regenerate the
    baseline around it."""
    before = BenchReport.load(str(_REPO_ROOT / "BENCH_5.json"))
    after = BenchReport.load(str(_REPO_ROOT / "BENCH_8.json"))
    old = _batch256_throughput(before, engine)
    new = _batch256_throughput(after, engine)
    speedup = new / old
    assert speedup >= BITSET_BATCH256_MIN_SPEEDUP, (
        f"{engine}: committed batch=256 speedup {speedup:.2f}x "
        f"({old:.0f} -> {new:.0f} ev/s) below the "
        f"{BITSET_BATCH256_MIN_SPEEDUP}x kernel floor"
    )
