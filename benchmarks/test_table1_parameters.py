"""T1 — regenerate paper Table 1 (parameters in experiments).

The "measurement" here is trivial (the table is static), but the bench
exists so ``pytest benchmarks/`` regenerates every paper artifact,
tables included, and asserts their contents.
"""

from __future__ import annotations

from repro.experiments.figure3 import render_table1
from repro.experiments.parameters import PAPER_PARAMETERS


def test_table1_regeneration(benchmark):
    text = benchmark(render_table1)
    # the seven parameter rows of the paper's Table 1
    assert "CPU speed" in text and "1.8 GHz" in text
    assert "512 MB" in text
    assert "2,000 - 5,000,000" in text
    assert "6 to 10" in text
    assert "8 to 32" in text
    assert "AND, OR" in text
    assert "5,000 - 10,000" in text
    print()
    print(text)


def test_table1_transformation_arithmetic(benchmark):
    """Table 1's '8 to 32' row is 2**(|p|/2) for |p| in 6..10."""

    def check():
        low = 2 ** (PAPER_PARAMETERS.predicates_per_subscription[0] // 2)
        high = 2 ** (PAPER_PARAMETERS.predicates_per_subscription[1] // 2)
        return low, high

    low, high = benchmark(check)
    assert (low, high) == PAPER_PARAMETERS.transformed_subscriptions_per_subscription
