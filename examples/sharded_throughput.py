"""Sharded broker under a skewed hot-key workload.

A single broker's subscription population is partitioned across four
engine shards (``engine="noncanonical×4"`` — sharded configs are
ordinary engine specs).  The workload is adversarial for a partitioner:
a handful of hot keys receive most of the event traffic *and* most of
the subscription interest, yet the stable hash partitioner still
spreads the subscriptions evenly, which the per-shard stats show.

The second half runs a miniature shard-scaling sweep
(``run_shard_sweep``) printing throughput and speedup per shard count —
with the process executor when this machine has the cores for it.

Run:  python examples/sharded_throughput.py
"""

from __future__ import annotations

import multiprocessing
import os

from repro import Broker
from repro.experiments import run_shard_sweep
from repro.workloads import SkewedHotKeyScenario

SUBSCRIBERS = 600
EVENTS = 2_000
SHARDS = 4


def main() -> None:
    scenario = SkewedHotKeyScenario(seed=7, keys=64, skew=1.2)
    broker = Broker("hub", engine=f"noncanonical×{SHARDS}")

    for subscription in scenario.subscriptions(SUBSCRIBERS):
        broker.subscribe(subscription)
    print(
        f"{SUBSCRIBERS} subscribers registered on {broker.name!r} "
        f"({broker.engine.name}, executor={broker.engine.executor_name})"
    )

    print("per-shard stats (hot keys, yet an even partition):")
    for entry in broker.shard_stats():
        print(
            f"  shard {entry['shard']}: {entry['subscriptions']:4d} "
            f"subscriptions, {entry['memory_bytes']:,} B"
        )

    events = scenario.events(EVENTS)
    hot = sum(1 for event in events if event["key"] in ("k000", "k001", "k002"))
    notifications = broker.publish(events)
    delivered = sum(len(batch) for batch in notifications)
    print(
        f"{EVENTS:,} events published ({hot / EVENTS:.0%} on the 3 hottest "
        f"keys); {delivered:,} notifications delivered"
    )

    # -- shard-scaling sweep ------------------------------------------
    executor = "serial"
    if (os.cpu_count() or 1) >= 2 and (
        "fork" in multiprocessing.get_all_start_methods()
    ):
        executor = "process"
    print(f"\nshard-scaling sweep (executor={executor!r}):")
    results = run_shard_sweep(
        subscription_count=300,
        event_count=256,
        shard_counts=(1, 2, 4),
        engines=("noncanonical",),
        executor=executor,
        repeats=2,
    )
    print(f"  {'shards':>6}  {'executor':>8}  {'events/sec':>12}  {'speedup':>7}")
    for point in results["noncanonical"]:
        print(
            f"  {point.shards:>6}  {point.executor:>8}  "
            f"{point.events_per_second:>12,.0f}  {point.speedup:>6.2f}x"
        )
    print(
        "\nspeedup is relative to the unsharded single-shard baseline; "
        "expect ~1x for serial\n(partitioning overhead only) and >1x for "
        "process on multi-core machines."
    )


if __name__ == "__main__":
    main()
