"""Stock ticker: the paper's engine comparison on a realistic workload.

Traders register genuinely non-conjunctive alerts — price-band exits OR
block trades, per symbol — and a trade feed publishes events.  The same
subscription population is registered with the paper's non-canonical
engine and with the canonical counting baseline — both constructed from
registry names, no engine-class imports — showing:

* identical matching decisions,
* the DNF storage blow-up the canonical pipeline pays,
* the per-event matching-time gap.

Run:  python examples/stock_ticker.py
"""

import time

from repro import Broker, Subscription
from repro.workloads import StockScenario

TRADERS = 400
TRADES = 2_000


def main() -> None:
    scenario = StockScenario(seed=42)

    # one broker per engine — engine sweeps are data, not imports
    brokers = [
        Broker("non-canonical", engine="noncanonical"),
        Broker("counting", engine="counting"),
    ]
    fast, baseline = brokers
    for index in range(TRADERS):
        subscription = scenario.subscription(f"trader{index:03d}")
        fast.subscribe(subscription)
        baseline.subscribe(
            Subscription(
                expression=subscription.expression,
                subscriber=subscription.subscriber,
                subscription_id=subscription.subscription_id,
            )
        )

    print(f"{TRADERS} traders registered")
    print(
        f"  non-canonical stores {fast.engine.stored_subscription_count:,} "
        f"subscription units ({fast.engine.memory_bytes():,} B)"
    )
    print(
        f"  counting stores      {baseline.engine.stored_subscription_count:,} "
        f"conjunctive clauses  ({baseline.engine.memory_bytes():,} B) "
        "after DNF transformation"
    )

    # publish the same trade stream through both brokers
    trades = [scenario.event() for _ in range(TRADES)]
    timings = {}
    notification_counts = {}
    for broker in brokers:
        start = time.perf_counter()
        total = sum(
            len(notifications) for notifications in broker.publish(trades)
        )
        timings[broker.name] = time.perf_counter() - start
        notification_counts[broker.name] = total

    assert notification_counts["non-canonical"] == notification_counts["counting"]
    print(f"\n{TRADES} trades published, "
          f"{notification_counts['counting']:,} notifications from each engine")
    for name, seconds in timings.items():
        print(f"  {name:<14} {seconds * 1e3:8.1f} ms "
              f"({seconds / TRADES * 1e6:6.1f} us/event)")
    ratio = timings["counting"] / timings["non-canonical"]
    print(f"  -> non-canonical is {ratio:.1f}x faster on this workload")

    # a sample alert, end to end
    sample = scenario.subscription("sample-trader")
    print(f"\nsample subscription: {sample.expression}")


if __name__ == "__main__":
    main()
