"""Broker overlay: content-based routing across less-equipped peers.

The paper motivates filtering on "peer-to-peer networks of less equipped
machines, such as laptops and mobile devices" (§1).  This example builds
a five-broker tree, attaches subscribers at the edges, and publishes an
auction feed at one leaf.  Events travel only along branches with
matching downstream subscriptions; every broker filters with its own
non-canonical engine, and each models a small machine so the per-broker
memory pressure is visible.

Topology:

            geneva (hub)
           /      |      \\
       tokyo   nairobi   lima
                            \\
                           cusco

Run:  python examples/broker_network.py
"""

from repro import Broker, BrokerNetwork, SimulatedMachine
from repro.workloads import AuctionScenario

LAPTOP = SimulatedMachine(
    total_memory_bytes=8 * 1024 * 1024, os_reserved_bytes=1024 * 1024
)


def main() -> None:
    scenario = AuctionScenario(seed=7)
    network = BrokerNetwork()
    for name in ("geneva", "tokyo", "nairobi", "lima", "cusco"):
        network.add_broker(Broker(name, machine=LAPTOP))
    for edge in (("geneva", "tokyo"), ("geneva", "nairobi"),
                 ("geneva", "lima"), ("lima", "cusco")):
        network.connect(*edge)

    # subscribers at the edges
    inboxes: dict[str, list] = {}
    for site, count in (("tokyo", 6), ("nairobi", 4), ("cusco", 8)):
        for index in range(count):
            name = f"{site}-bidder{index}"
            inboxes[name] = []
            network.subscribe(
                site,
                scenario.subscription(name),
                subscriber=name,
                callback=inboxes[name].append,
            )
    print(f"{len(inboxes)} subscriptions registered across the overlay")

    # publish the auction feed at one leaf
    deliveries = 0
    for _ in range(1_500):
        deliveries += len(network.publish("tokyo", scenario.event()))

    print(f"1,500 bids published at tokyo -> {deliveries} notifications\n")
    print(f"network stats: {network.stats}")
    flooded = network.stats.broker_hops
    print(
        f"  pruned routing: {flooded} broker hops instead of "
        f"{1_500 * 4} for naive flooding"
    )

    print("\nper-broker state:")
    for broker in network.brokers():
        pressure = broker.memory_pressure()
        print(
            f"  {broker.name:<8} subscriptions={broker.subscription_count:<3} "
            f"matched_events={broker.stats.events_matched:<5} "
            f"memory_pressure={pressure:6.2%}"
        )

    busiest = max(inboxes.items(), key=lambda item: len(item[1]))
    print(f"\nbusiest subscriber: {busiest[0]} with {len(busiest[1])} alerts")
    sample = busiest[1][0]
    print(f"  first alert: {dict(sample.event.items())} (home broker {sample.broker})")


if __name__ == "__main__":
    main()
