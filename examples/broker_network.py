"""Broker overlay: content-based routing across less-equipped peers.

The paper motivates filtering on "peer-to-peer networks of less equipped
machines, such as laptops and mobile devices" (§1).  This example builds
a five-broker tree declaratively — brokers are added by name with an
engine spec, subscribers hang collecting sinks off their handles — and
streams an auction feed in at one leaf through the batched overlay
pipeline.  Events travel only along branches with matching downstream
subscriptions; every broker filters with its own non-canonical engine,
and each models a small machine so the per-broker memory pressure is
visible.

Covering-based routing-table compaction is on by default: a broker
skips registering a subscription when a same-direction one already
covers it (the covered alerts ride the coverer's forwarding), so the
suppression ratio and per-broker routing-table sizes printed at the end
show how much engine state the overlay saved.

Topology:

            geneva (hub)
           /      |      \\
       tokyo   nairobi   lima
                            \\
                           cusco

Run:  python examples/broker_network.py
"""

from repro import BrokerNetwork, CollectingSink, SimulatedMachine
from repro.workloads import AuctionScenario

LAPTOP = SimulatedMachine(
    total_memory_bytes=8 * 1024 * 1024, os_reserved_bytes=1024 * 1024
)


def main() -> None:
    scenario = AuctionScenario(seed=7)
    network = BrokerNetwork()
    for name in ("geneva", "tokyo", "nairobi", "lima", "cusco"):
        network.add_broker(name, engine="noncanonical", machine=LAPTOP)
    for edge in (("geneva", "tokyo"), ("geneva", "nairobi"),
                 ("geneva", "lima"), ("lima", "cusco")):
        network.connect(*edge)

    # subscribers at the edges, one collecting sink each
    inboxes: dict[str, CollectingSink] = {}
    for site, count in (("tokyo", 6), ("nairobi", 4), ("cusco", 8)):
        for index in range(count):
            name = f"{site}-bidder{index}"
            inboxes[name] = CollectingSink()
            network.subscribe(
                site,
                scenario.subscription(name),
                subscriber=name,
                sink=inboxes[name],
            )
    print(f"{len(inboxes)} subscriptions registered across the overlay")

    # stream the auction feed in at one leaf (batched overlay routing)
    feed = (scenario.event() for _ in range(1_500))
    deliveries = sum(
        len(notified) for notified in network.stream("tokyo", feed, batch_size=64)
    )

    print(f"1,500 bids published at tokyo -> {deliveries} notifications\n")
    print(f"network stats: {network.stats}")
    flooded = network.stats.broker_hops
    print(
        f"  pruned routing: {flooded} grouped broker hops instead of "
        f"{1_500 * 4} single-event hops for naive flooding"
    )
    print(
        f"  covering: {network.stats.suppressed_registrations} of "
        f"{network.stats.hops_visited} remote registrations suppressed "
        f"(suppression ratio {network.suppression_ratio():.1%})"
    )

    print("\nper-broker state:")
    for broker in network.brokers():
        pressure = broker.memory_pressure()
        table = network.routing_report()[broker.name]
        print(
            f"  {broker.name:<8} subscriptions={broker.subscription_count:<3} "
            f"routing_table={table.entries:>2} entries "
            f"({table.suppressed} suppressed) "
            f"matched_events={broker.stats.events_matched:<5} "
            f"memory_pressure={pressure:6.2%}"
        )

    busiest = max(inboxes.items(), key=lambda item: item[1].delivered)
    print(f"\nbusiest subscriber: {busiest[0]} with {busiest[1].delivered} alerts")
    sample = busiest[1].notifications[0]
    print(f"  first alert: {dict(sample.event.items())} (home broker {sample.broker})")


if __name__ == "__main__":
    main()
