"""Reproduce one panel of the paper's Figure 3, programmatically.

The ``python -m repro.experiments.figure3`` CLI runs the full figure;
this example shows the harness API for a single custom sweep — panel (c)
shape (|p| = 10, the worst case for the canonical pipeline) at a small
scale — and prints the three curves plus the memory story.

Run:  python examples/paper_experiment.py
"""

from repro import SimulatedMachine
from repro.experiments import (
    ascii_plot,
    format_bytes,
    format_seconds,
    format_table,
    growth_ratio,
    normalized_slope,
    run_sweep,
)


def main() -> None:
    machine = SimulatedMachine(
        total_memory_bytes=420_000,  # the 512 MB machine, scaled ~1/1250
        os_reserved_bytes=53_000,
    )
    result = run_sweep(
        predicates_per_subscription=10,
        subscription_counts=[100, 400, 800, 1200, 1600, 2000],
        fulfilled_per_event=40,
        machine=machine,
        events_per_point=4,
        # engines are registry names — sweeping a different set is a
        # data change, not an import change
        engines=("noncanonical", "counting-variant", "counting"),
        seed=1,
    )

    rows = []
    for name, sweep in result.sweeps.items():
        for point in sweep.points:
            rows.append([
                name,
                f"{point.subscriptions:,}",
                f"{point.stored_subscriptions:,}",
                format_seconds(point.seconds),
                format_bytes(point.memory_bytes),
                f"{point.slowdown:.1f}x",
            ])
    print(format_table(
        ["engine", "originals", "stored", "time/event", "memory", "swap"],
        rows,
    ))

    print(ascii_plot(
        result.series_by_engine(),
        x_label="registered subscriptions",
        y_label="s/event",
        title="Fig. 3(c) shape: 10 predicates per subscription",
    ))

    print("\nshape summary:")
    for name, sweep in result.sweeps.items():
        series = sweep.series(adjusted=False)
        print(
            f"  {name:<17} normalized slope {normalized_slope(series):5.2f} "
            f"growth x{growth_ratio(series):5.1f} "
            f"(linear ~1.0, flat ~0.0)"
        )
    counting_bend = result.sweeps["counting"].first_thrashing_point()
    nc_bend = result.sweeps["non-canonical"].first_thrashing_point()
    if counting_bend:
        print(
            f"\ncounting exhausts the memory budget at "
            f"{counting_bend.subscriptions:,} subscriptions; "
            + (
                f"non-canonical at {nc_bend.subscriptions:,} "
                f"({nc_bend.subscriptions / counting_bend.subscriptions:.1f}x later)"
                if nc_bend
                else "non-canonical never does within this sweep"
            )
        )


if __name__ == "__main__":
    main()
