"""Quickstart: subscribe with arbitrary Boolean expressions, publish, match.

The point of the library (and the paper): you can register subscriptions
like

    (price > 100 or urgent = true) and not region = 'test'

*directly* — no rewriting into a disjunctive normal form, no multiplied
storage — and still get index-backed matching.

Run:  python examples/quickstart.py
"""

from repro import Broker, Event

def main() -> None:
    broker = Broker("quickstart")

    # --- subscribe ------------------------------------------------------
    # Subscriptions are arbitrary Boolean expressions over
    # attribute-operator-value predicates.
    alerts = []
    watch = broker.subscribe(
        "(price > 100 or urgent = true) and not region = 'test'",
        subscriber="alice",
        callback=alerts.append,
    )
    bargains = broker.subscribe(
        "symbol prefix 'AC' and price between [5, 20]",
        subscriber="bob",
    )
    print(f"registered: {watch}")
    print(f"registered: {bargains}")

    # --- publish --------------------------------------------------------
    events = [
        Event({"symbol": "ACME", "price": 120.0, "region": "eu"}),
        Event({"symbol": "ACME", "price": 12.0, "region": "eu"}),
        Event({"symbol": "ZORG", "price": 250.0, "region": "test"}),
        Event({"symbol": "ACE", "price": 7.5, "urgent": True}),
    ]
    for event in events:
        notifications = broker.publish(event)
        receivers = sorted({n.subscriber for n in notifications})
        print(f"{dict(event.items())!s:<58} -> {receivers or 'no match'}")

    # --- inspect --------------------------------------------------------
    print(f"\nalice received {len(alerts)} callback notifications")
    print(f"broker stats: {broker.stats}")
    breakdown = broker.engine.memory_breakdown()
    print(
        "engine memory (paper cost model): "
        + ", ".join(f"{k}={v}B" for k, v in breakdown.items())
    )

    # --- unsubscribe ----------------------------------------------------
    broker.unsubscribe(watch.subscription_id)
    print(f"after unsubscribe: {broker.subscription_count} subscription(s) left")


if __name__ == "__main__":
    main()
