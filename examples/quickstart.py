"""Quickstart: subscribe with arbitrary Boolean expressions, publish, match.

The point of the library (and the paper): you can register subscriptions
like

    (price > 100 or urgent = true) and not region = 'test'

*directly* — no rewriting into a disjunctive normal form, no multiplied
storage — and still get index-backed matching.

Everything here uses the public surface: engines are named through the
registry (no engine-class imports), ``subscribe`` returns a
``SubscriptionHandle`` that owns the subscription's lifecycle, delivery
goes through sinks, and one ``publish`` call takes events, mappings, or
whole batches.

Run:  python examples/quickstart.py
"""

from repro import Broker, CollectingSink, Event


def main() -> None:
    # engine choice is configuration, not an import
    broker = Broker("quickstart", engine="noncanonical")

    # --- subscribe ------------------------------------------------------
    # Subscriptions are arbitrary Boolean expressions over
    # attribute-operator-value predicates; each subscribe() returns a
    # handle owning the registration and its delivery sink.
    alerts = CollectingSink()
    watch = broker.subscribe(
        "(price > 100 or urgent = true) and not region = 'test'",
        subscriber="alice",
        sink=alerts,
    )
    bargains = broker.subscribe(
        "symbol prefix 'AC' and price between [5, 20]",
        subscriber="bob",
    )
    print(f"registered: {watch}")
    print(f"registered: {bargains}")

    # --- publish --------------------------------------------------------
    # One surface: single events, plain mappings, or whole batches.
    events = [
        Event({"symbol": "ACME", "price": 120.0, "region": "eu"}),
        {"symbol": "ACME", "price": 12.0, "region": "eu"},
        {"symbol": "ZORG", "price": 250.0, "region": "test"},
        {"symbol": "ACE", "price": 7.5, "urgent": True},
    ]
    for event, notifications in zip(events, broker.publish(events)):
        receivers = sorted({n.subscriber for n in notifications})
        print(f"{dict(event.items())!s:<58} -> {receivers or 'no match'}")

    # --- inspect --------------------------------------------------------
    print(f"\nalice received {alerts.delivered} sink notifications")
    print(f"broker stats: {broker.stats}")
    breakdown = broker.engine.memory_breakdown()
    print(
        "engine memory (paper cost model): "
        + ", ".join(f"{k}={v}B" for k, v in breakdown.items())
    )

    # --- pause / unsubscribe -------------------------------------------
    bargains.pause()
    broker.publish({"symbol": "ACRO", "price": 9.0})
    print(f"while paused, bob's handle delivered nothing: {bargains}")
    bargains.resume()

    watch.unsubscribe()
    print(f"after unsubscribe: {broker.subscription_count} subscription(s) left")


if __name__ == "__main__":
    main()
