"""Experiment harness: sweeps, the Figure 3 driver, reporting.

The Figure 3 driver itself lives in :mod:`repro.experiments.figure3`
(import it directly; keeping it out of this namespace lets
``python -m repro.experiments.figure3`` run without a double-import
warning).
"""

from .harness import (
    DEFAULT_BATCH_SIZES,
    DEFAULT_ENGINE_FACTORIES,
    DEFAULT_ENGINES,
    DEFAULT_SHARD_COUNTS,
    ShardScalingPoint,
    EngineSweep,
    SweepPoint,
    SweepResult,
    ThroughputPoint,
    crossover_subscriptions,
    growth_ratio,
    least_squares_slope,
    measure_throughput,
    normalized_slope,
    run_shard_sweep,
    run_sweep,
    run_throughput_sweep,
    time_subscription_matching,
)
from .parameters import (
    FULL_SCALE,
    PAPER_PARAMETERS,
    QUICK_SCALE,
    SCALES,
    PaperParameters,
    ScaleConfig,
)
from .profiling import (
    MatchingProfile,
    engine_comparison_summary,
    profile_matching,
)
from .report import ascii_plot, format_bytes, format_seconds, format_table
from .variance import Measurement, measure_until_stable

__all__ = [
    "DEFAULT_BATCH_SIZES",
    "DEFAULT_ENGINE_FACTORIES",
    "DEFAULT_ENGINES",
    "EngineSweep",
    "SweepPoint",
    "SweepResult",
    "ThroughputPoint",
    "crossover_subscriptions",
    "growth_ratio",
    "least_squares_slope",
    "measure_throughput",
    "normalized_slope",
    "run_sweep",
    "run_throughput_sweep",
    "time_subscription_matching",
    "DEFAULT_SHARD_COUNTS",
    "ShardScalingPoint",
    "run_shard_sweep",
    "FULL_SCALE",
    "PAPER_PARAMETERS",
    "QUICK_SCALE",
    "SCALES",
    "PaperParameters",
    "ScaleConfig",
    "MatchingProfile",
    "engine_comparison_summary",
    "profile_matching",
    "Measurement",
    "measure_until_stable",
    "ascii_plot",
    "format_bytes",
    "format_seconds",
    "format_table",
]
