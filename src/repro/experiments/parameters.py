"""Paper Table 1: the experiment parameters, and our scaled mapping.

The paper's numbers target a 1.8 GHz / 512 MB C-era machine with up to
five million registered subscriptions.  A pure-Python reproduction runs
the same algorithms at proportionally scaled subscription counts; this
module records both parameter sets side by side so every experiment can
print exactly what it ran (and EXPERIMENTS.md can cite it).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memory.model import MIB, SimulatedMachine


@dataclass(frozen=True)
class PaperParameters:
    """Verbatim contents of paper Table 1."""

    cpu_speed: str = "1.8 GHz"
    total_machine_memory: str = "512 MB"
    subscriptions: tuple[int, int] = (2_000, 5_000_000)
    predicates_per_subscription: tuple[int, int] = (6, 10)
    transformed_subscriptions_per_subscription: tuple[int, int] = (8, 32)
    boolean_operators: tuple[str, ...] = ("AND", "OR")
    matching_predicates_per_event: tuple[int, int] = (5_000, 10_000)

    def rows(self) -> list[tuple[str, str]]:
        """Table rows in the paper's order."""
        return [
            ("CPU speed", self.cpu_speed),
            ("Total machine memory", self.total_machine_memory),
            (
                "Number of subscriptions",
                f"{self.subscriptions[0]:,} - {self.subscriptions[1]:,}",
            ),
            (
                "Number of original (unique) predicates per subscription",
                f"{self.predicates_per_subscription[0]} to "
                f"{self.predicates_per_subscription[1]}",
            ),
            (
                "Number of subscriptions per subscription after transformation",
                f"{self.transformed_subscriptions_per_subscription[0]} to "
                f"{self.transformed_subscriptions_per_subscription[1]}",
            ),
            ("Used Boolean operators", ", ".join(self.boolean_operators)),
            (
                "Matching predicates per event",
                f"{self.matching_predicates_per_event[0]:,} - "
                f"{self.matching_predicates_per_event[1]:,}",
            ),
        ]


PAPER_PARAMETERS = PaperParameters()

#: Available memory on the paper's machine after OS overhead — the
#: default SimulatedMachine reproduces the bend positions of Fig. 3
#: (~1.6 M transformed subscriptions at |p| = 8, §4.1).
PAPER_AVAILABLE_BYTES = SimulatedMachine().available_bytes


@dataclass(frozen=True)
class ScaleConfig:
    """How a run scales the paper's parameters down to Python speed.

    Parameters
    ----------
    name:
        ``"quick"`` (benchmark-suite friendly) or ``"full"`` (the
        EXPERIMENTS.md numbers) or custom.
    subscription_divisor:
        Paper subscription counts are divided by this (sweep positions
        and memory budget alike, so bend positions stay at the same
        *relative* place on the x axis).
    fulfilled_divisor:
        Paper "matching predicates per event" are divided by this
        (kept larger than the subscription divisor so each measurement
        still does measurable work; DESIGN.md §3).
    events_per_point:
        Fulfilled-id sets sampled (and averaged over) per sweep point.
    points_per_curve:
        Sweep positions per panel.
    """

    name: str
    subscription_divisor: int
    fulfilled_divisor: int
    events_per_point: int = 5
    points_per_curve: int = 6
    seed: int = 20050610  # ICDCS 2005 workshop date

    def machine(self) -> SimulatedMachine:
        """The paper's machine scaled by ``subscription_divisor``.

        Memory scales with the subscription count, so dividing both keeps
        the exhaustion point at the same fraction of the sweep.
        """
        scaled_total = max(int(512 * MIB / self.subscription_divisor), 64 * 1024)
        scaled_reserved = max(int(96 * MIB / self.subscription_divisor), 12 * 1024)
        return SimulatedMachine(
            total_memory_bytes=scaled_total,
            os_reserved_bytes=scaled_reserved,
        )

    def subscriptions(self, paper_count: int) -> int:
        """Scale a paper subscription count."""
        return max(paper_count // self.subscription_divisor, 50)

    def fulfilled(self, paper_count: int) -> int:
        """Scale a paper matching-predicates-per-event count."""
        return max(paper_count // self.fulfilled_divisor, 10)


#: Fast enough for the pytest-benchmark suite (seconds per panel).
QUICK_SCALE = ScaleConfig(
    name="quick",
    subscription_divisor=1250,
    fulfilled_divisor=125,
    events_per_point=3,
    points_per_curve=5,
)

#: The EXPERIMENTS.md numbers (minutes per panel).
FULL_SCALE = ScaleConfig(
    name="full",
    subscription_divisor=250,
    fulfilled_divisor=50,
    events_per_point=5,
    points_per_curve=8,
)

SCALES = {scale.name: scale for scale in (QUICK_SCALE, FULL_SCALE)}
