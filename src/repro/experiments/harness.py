"""Experiment harness: sweeps, timing, and shape analysis.

Reproduces the paper's measurement protocol (§4):

* engines share one predicate registry and one phase-1 index manager, so
  fulfilled-predicate-id sets mean the same thing to every engine ("the
  first phases use the same indexes in the same way");
* only **phase 2** (subscription matching) is timed;
* the number of fulfilled predicates per event is controlled directly;
* the registered subscription count is swept upward, engines keep their
  state between checkpoints (registration cost is paid once per
  subscription, as in a live system);
* measured times are passed through the
  :class:`~repro.memory.model.SimulatedMachine` swap model using each
  engine's *measured* memory footprint, which reproduces the paper's
  sharp memory-exhaustion bends.

Shape-analysis helpers (least-squares slope, growth ratio, crossover
detection) back the claims benchmarks C2-C4.
"""

from __future__ import annotations

import functools
import random
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..core.base import FilterEngine
from ..core.registry import EngineSpec, build_engine
from ..events.event import Event
from ..indexes.manager import IndexManager
from ..memory.model import SimulatedMachine
from ..predicates.registry import PredicateRegistry
from ..workloads.generator import (
    EventGenerator,
    FulfilledPredicateSampler,
    PaperSubscriptionGenerator,
)

EngineFactory = Callable[..., FilterEngine]

#: The engines the paper's Figure 3 compares, as registry specs —
#: engine sweeps are data, not imports.
DEFAULT_ENGINES: tuple[str, ...] = (
    "noncanonical",
    "counting-variant",
    "counting",
)

#: Deprecated pre-registry spelling of :data:`DEFAULT_ENGINES`; kept one
#: release as real factory callables (the old contract: each entry is
#: called with ``registry=``/``indexes=``).
DEFAULT_ENGINE_FACTORIES: tuple[EngineFactory, ...] = tuple(
    functools.partial(build_engine, name) for name in DEFAULT_ENGINES
)


def _pick_engine_entries(
    engines: Sequence | None,
    engine_factories: Sequence[EngineFactory] | None,
) -> Sequence:
    """Resolve the ``engines``/``engine_factories`` pair of a sweep.

    ``engine_factories`` is the deprecated spelling; passing both is an
    error rather than a silent preference.
    """
    if engines is not None and engine_factories is not None:
        raise TypeError(
            "pass either engines= or the deprecated engine_factories=, "
            "not both"
        )
    if engine_factories is not None:
        warnings.warn(
            "engine_factories= is deprecated and will be removed next "
            "release; pass engines= (registry names, specs, or factories)",
            DeprecationWarning,
            stacklevel=3,
        )
        return engine_factories
    return engines if engines is not None else DEFAULT_ENGINES


def _materialize_engines(
    entries: Sequence,
    *,
    registry: PredicateRegistry,
    indexes: IndexManager,
) -> list[FilterEngine]:
    """Build one engine per entry on shared phase-1 state.

    Entries may be registry names, :class:`EngineSpec` instances, or
    factory callables; instances are rejected because a sweep *must*
    share the registry/index manager across its engines.
    """
    engines: list[FilterEngine] = []
    for entry in entries:
        if isinstance(entry, FilterEngine):
            raise TypeError(
                f"pass an engine name, spec, or factory, not the instance "
                f"{entry!r}: sweep engines must be constructed on the "
                "sweep's shared registry and index manager"
            )
        if isinstance(entry, (str, EngineSpec)):
            engines.append(
                build_engine(entry, registry=registry, indexes=indexes)
            )
        elif callable(entry):
            engines.append(entry(registry=registry, indexes=indexes))
        else:
            raise TypeError(
                f"expected an engine name, EngineSpec, or factory; "
                f"got {entry!r}"
            )
    return engines


@dataclass(frozen=True)
class SweepPoint:
    """One measurement: an engine at one registered-subscription count."""

    subscriptions: int            # original subscriptions registered
    stored_subscriptions: int     # post-transformation units
    raw_seconds: float            # measured phase-2 time per event
    memory_bytes: int             # engine working set (paper cost model)
    slowdown: float               # simulated-machine multiplier
    seconds: float                # raw_seconds * slowdown (Fig. 3 y value)


@dataclass
class EngineSweep:
    """All sweep points of one engine."""

    engine: str
    points: list[SweepPoint] = field(default_factory=list)

    def series(self, *, adjusted: bool = True) -> list[tuple[float, float]]:
        """(subscriptions, seconds) pairs for plotting/analysis."""
        if adjusted:
            return [(p.subscriptions, p.seconds) for p in self.points]
        return [(p.subscriptions, p.raw_seconds) for p in self.points]

    def memory_series(self) -> list[tuple[float, float]]:
        """(subscriptions, bytes) pairs."""
        return [(p.subscriptions, p.memory_bytes) for p in self.points]

    def first_thrashing_point(self) -> SweepPoint | None:
        """The first point where the machine model reports swapping."""
        for point in self.points:
            if point.slowdown > 1.0:
                return point
        return None


@dataclass
class SweepResult:
    """Outcome of one sweep (one figure panel)."""

    predicates_per_subscription: int
    fulfilled_per_event: int
    machine: SimulatedMachine
    sweeps: dict[str, EngineSweep] = field(default_factory=dict)

    def series_by_engine(self, *, adjusted: bool = True) -> dict[str, list]:
        """Engine name -> (x, y) series, ready for the ASCII plot."""
        return {
            name: sweep.series(adjusted=adjusted)
            for name, sweep in self.sweeps.items()
        }


def time_subscription_matching(
    engine: FilterEngine,
    fulfilled_sets: Sequence[set[int]],
    *,
    repeats: int = 3,
) -> float:
    """Seconds per event for phase 2, best of ``repeats`` batch runs.

    The paper reports per-event subscription-matching time with variance
    under 1%; best-of-batches over identical inputs is the standard way
    to get a stable point estimate from a timer.
    """
    if not fulfilled_sets:
        raise ValueError("need at least one fulfilled-id set")
    match = engine.match_fulfilled
    best = float("inf")
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        for fulfilled in fulfilled_sets:
            match(fulfilled)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best / len(fulfilled_sets)


def run_sweep(
    *,
    predicates_per_subscription: int,
    subscription_counts: Sequence[int],
    fulfilled_per_event: int,
    machine: SimulatedMachine,
    events_per_point: int = 5,
    engines: Sequence | None = None,
    engine_factories: Sequence[EngineFactory] | None = None,
    seed: int = 0,
    repeats: int = 3,
    verify_agreement: bool = True,
) -> SweepResult:
    """Run one panel's sweep across all engines.

    ``engines`` entries are registry names, engine specs, or factory
    callables (``engine_factories`` is the deprecated alias).
    ``subscription_counts`` must be ascending; registration is
    incremental so the total registration work equals one run at the
    largest count.
    """
    counts = list(subscription_counts)
    if counts != sorted(counts) or len(set(counts)) != len(counts):
        raise ValueError("subscription_counts must be strictly ascending")
    registry = PredicateRegistry()
    indexes = IndexManager()
    engines = _materialize_engines(
        _pick_engine_entries(engines, engine_factories),
        registry=registry,
        indexes=indexes,
    )
    generator = PaperSubscriptionGenerator(
        predicates_per_subscription=predicates_per_subscription, seed=seed
    )
    result = SweepResult(
        predicates_per_subscription=predicates_per_subscription,
        fulfilled_per_event=fulfilled_per_event,
        machine=machine,
        sweeps={engine.name: EngineSweep(engine.name) for engine in engines},
    )
    registered = 0
    for checkpoint_index, target in enumerate(counts):
        for subscription in generator.subscriptions(target - registered):
            for engine in engines:
                engine.register(subscription)
        registered = target
        universe = range(1, len(registry) + 1)  # ids are dense, no churn
        sampler = FulfilledPredicateSampler(
            predicate_ids=universe,
            fulfilled_per_event=fulfilled_per_event,
            seed=seed + 7919 * (checkpoint_index + 1),
        )
        fulfilled_sets = sampler.samples(events_per_point)
        if verify_agreement and checkpoint_index == 0:
            _assert_engines_agree(engines, fulfilled_sets[0])
        for engine in engines:
            raw = time_subscription_matching(
                engine, fulfilled_sets, repeats=repeats
            )
            memory = engine.memory_bytes()
            slowdown = machine.slowdown_factor(memory)
            result.sweeps[engine.name].points.append(
                SweepPoint(
                    subscriptions=target,
                    stored_subscriptions=engine.stored_subscription_count,
                    raw_seconds=raw,
                    memory_bytes=memory,
                    slowdown=slowdown,
                    seconds=raw * slowdown,
                )
            )
    return result


def _assert_engines_agree(
    engines: Sequence[FilterEngine], fulfilled: set[int]
) -> None:
    reference: set[int] | None = None
    reference_name = ""
    for engine in engines:
        answer = engine.match_fulfilled(fulfilled)
        if reference is None:
            reference, reference_name = answer, engine.name
        elif answer != reference:
            raise AssertionError(
                f"engine disagreement: {engine.name} != {reference_name} "
                f"({len(answer)} vs {len(reference)} matches)"
            )


# ----------------------------------------------------------------------
# batched throughput (events/sec at a given batch size)
# ----------------------------------------------------------------------
#: Batch sizes the batched sweep reports by default.
DEFAULT_BATCH_SIZES: tuple[int, ...] = (1, 32, 256)


@dataclass(frozen=True)
class ThroughputPoint:
    """Events/sec of one engine's full pipeline at one batch size.

    ``counters`` holds the engine's per-event phase-2 work averages over
    the measurement (``candidates_probed``, ``matches_found``; see
    :class:`~repro.core.base.MatchCounters`) — the quantities that
    explain *why* the wall-clock number is what it is.  ``None`` when
    the engine exposes no counters.
    """

    engine: str
    batch_size: int
    events: int                   # events matched per repeat
    seconds: float                # best-of-repeats wall time for them
    events_per_second: float
    counters: Mapping[str, float] | None = None
    memory_bytes: int = 0         # working set under the paper cost model


def measure_throughput(
    engine: FilterEngine,
    events: Sequence[Event],
    *,
    batch_size: int,
    repeats: int = 3,
) -> ThroughputPoint:
    """Full-pipeline (phase 1 + phase 2) events/sec at one batch size.

    ``batch_size == 1`` deliberately takes the historical one-event-at-a-
    time path (``engine.match`` per event) so it measures exactly the
    per-event dispatch overhead that batching amortizes; larger sizes
    chunk the stream through :meth:`FilterEngine.match_batch`.

    The engine's :class:`~repro.core.base.MatchCounters` are reset
    before and read after the timed repeats; the point reports them as
    per-event averages across all repeats.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    events = list(events)
    if not events:
        raise ValueError("need at least one event")
    chunks = [
        events[start:start + batch_size]
        for start in range(0, len(events), batch_size)
    ]
    repeats = max(repeats, 1)
    instrumented = hasattr(engine, "reset_counters")
    if instrumented:
        engine.reset_counters()
    best = float("inf")
    for _ in range(repeats):
        if batch_size == 1:
            match = engine.match
            start = time.perf_counter()
            for event in events:
                match(event)
            elapsed = time.perf_counter() - start
        else:
            match_batch = engine.match_batch
            start = time.perf_counter()
            for chunk in chunks:
                match_batch(chunk)
            elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    counters: dict[str, float] | None = None
    if instrumented:
        answered = max(len(events) * repeats, 1)
        counters = {
            key: value / answered
            for key, value in engine.counters.snapshot().items()
        }
    return ThroughputPoint(
        engine=engine.name,
        batch_size=batch_size,
        events=len(events),
        seconds=best,
        events_per_second=len(events) / best if best > 0 else float("inf"),
        counters=counters,
        memory_bytes=engine.memory_bytes(),
    )


def run_throughput_sweep(
    *,
    subscription_count: int,
    predicates_per_subscription: int = 6,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    event_count: int = 512,
    attribute_pool: int = 64,
    attributes_per_event: int = 16,
    value_range: int = 64,
    skew: float = 1.1,
    engines: Sequence | None = None,
    engine_factories: Sequence[EngineFactory] | None = None,
    seed: int = 0,
    repeats: int = 3,
    verify_agreement: bool = True,
) -> dict[str, list[ThroughputPoint]]:
    """The batched sweep: events/sec per engine per batch size.

    ``engines`` entries are registry names, engine specs, or factory
    callables (``engine_factories`` is the deprecated alias).  All
    engines share one registry and index manager (identical phase 1,
    as everywhere in the reproduction) and are loaded with the same
    paper-shaped subscription population.  The event stream is
    Zipf-skewed over a small value domain so attribute values repeat
    across a batch — the regime the phase-1 batch memoization targets.

    With ``verify_agreement`` every engine's ``match_batch`` output for
    the first batch is checked against its own per-event ``match``
    (batch-vs-sequential parity) and against the other engines
    (engine agreement) before anything is timed.
    """
    registry = PredicateRegistry()
    indexes = IndexManager()
    engines = _materialize_engines(
        _pick_engine_entries(engines, engine_factories),
        registry=registry,
        indexes=indexes,
    )
    try:
        names = [engine.name for engine in engines]
        if len(set(names)) != len(names):
            raise ValueError(
                f"engine factories must yield distinct engine names, got "
                f"{names}; results are keyed by name"
            )
        generator = PaperSubscriptionGenerator(
            predicates_per_subscription=predicates_per_subscription,
            attribute_pool=attribute_pool,
            seed=seed,
        )
        for subscription in generator.subscriptions(subscription_count):
            for engine in engines:
                engine.register(subscription)
        events = EventGenerator(
            attribute_pool=attribute_pool,
            attributes_per_event=attributes_per_event,
            value_range=value_range,
            skew=skew,
            seed=seed + 1,
        ).events(event_count)
        if verify_agreement:
            probe = events[:min(32, len(events))]
            reference: list[set[int]] | None = None
            reference_name = ""
            for engine in engines:
                batched = engine.match_batch(probe)
                sequential = [engine.match(event) for event in probe]
                if batched != sequential:
                    raise AssertionError(
                        f"{engine.name}: match_batch disagrees with "
                        "per-event match"
                    )
                if reference is None:
                    reference, reference_name = batched, engine.name
                elif batched != reference:
                    raise AssertionError(
                        f"engine disagreement: {engine.name} != "
                        f"{reference_name}"
                    )
        results: dict[str, list[ThroughputPoint]] = {
            engine.name: [] for engine in engines
        }
        for engine in engines:
            for batch_size in batch_sizes:
                results[engine.name].append(
                    measure_throughput(
                        engine, events, batch_size=batch_size, repeats=repeats
                    )
                )
        return results
    finally:
        # the sweep built these engines itself (instances are rejected),
        # so it owns their lifecycle — the paged engine holds a temp file
        for engine in engines:
            engine.close()


# ----------------------------------------------------------------------
# shard scaling (speedup versus shard count)
# ----------------------------------------------------------------------
#: Shard counts the scaling sweep reports by default.
DEFAULT_SHARD_COUNTS: tuple[int, ...] = (1, 2, 4)


@dataclass(frozen=True)
class ShardScalingPoint:
    """Events/sec of one engine partitioned across ``shards`` shards."""

    engine: str                   # inner-engine canonical spec name
    shards: int
    executor: str
    batch_size: int
    events: int                   # events matched per repeat
    seconds: float                # best-of-repeats wall time for them
    events_per_second: float
    speedup: float                # vs the single-shard serial baseline
    partitioner: str = "hash"     # placement strategy ("hash" at shards=1)
    counters: Mapping[str, float] | None = None  # per-event work averages
    memory_bytes: int = 0         # (aggregated) paper-cost-model bytes


def run_shard_sweep(
    *,
    subscription_count: int,
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    executor: str = "serial",
    partitioner: str = "hash",
    corpus: str = "paper",
    engines: Sequence | None = None,
    batch_size: int = 256,
    predicates_per_subscription: int = 6,
    event_count: int = 512,
    attribute_pool: int = 64,
    attributes_per_event: int = 16,
    value_range: int = 64,
    skew: float = 1.1,
    seed: int = 0,
    repeats: int = 3,
    verify_parity: bool = True,
) -> dict[str, list[ShardScalingPoint]]:
    """Speedup-versus-shard-count curves, one per engine.

    For each engine (registry names or specs; factories and instances
    are rejected because the sweep derives sharded variants from the
    spec), the same subscription population and event stream are matched
    by the **unsharded** engine — the single-shard serial baseline,
    reported as the ``shards=1`` point with ``speedup=1.0`` — and by a
    :class:`~repro.core.sharded.ShardedEngine` at every other shard
    count with the requested ``executor`` and ``partitioner``.  Speedups
    are relative to that baseline, so a curve above 1.0 means
    partitioning pays for its coordination.

    With the ``serial`` executor and the ``hash`` partitioner the curve
    isolates pure partitioning overhead (expect ≈1.0 or slightly below);
    the ``routed`` partitioner is where *serial* speedups appear, since
    pruned shards are never probed; ``thread`` adds GIL-bound
    concurrency; ``process`` is where multi-core speedups appear, since
    each fork worker matches its slice with both phases in parallel.

    ``corpus`` selects the workload: ``"paper"`` is the
    :class:`PaperSubscriptionGenerator`/:class:`EventGenerator` pair (as
    in every other sweep); ``"skew"`` is the hot-key scenario
    (:class:`~repro.workloads.scenarios.SkewedHotKeyScenario`) whose
    key-anchored subscriptions are the routed partitioner's target —
    ``subscription_count``/``event_count``/``seed`` apply, the
    paper-corpus shape knobs do not.

    With ``verify_parity``, each sharded configuration's ``match_batch``
    over the first events is checked against the unsharded engine before
    anything is timed.
    """
    counts = list(shard_counts)
    if counts != sorted(counts) or len(set(counts)) != len(counts):
        raise ValueError("shard_counts must be strictly ascending")
    if counts and counts[0] < 1:
        raise ValueError("shard counts must be at least 1")
    entries = engines if engines is not None else DEFAULT_ENGINES
    specs: list[EngineSpec] = []
    for entry in entries:
        if not isinstance(entry, (str, EngineSpec)):
            raise TypeError(
                f"expected an engine name or EngineSpec, got {entry!r}: "
                "the shard sweep derives sharded variants from the spec"
            )
        spec = EngineSpec(entry) if isinstance(entry, str) else entry
        if "shards" in spec.options:
            raise ValueError(
                f"pass the unsharded spec, not {spec!r}; shard counts "
                "come from shard_counts="
            )
        specs.append(spec)
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"engines must be distinct, got {names}")

    registry = PredicateRegistry()
    indexes = IndexManager()
    if corpus == "paper":
        subscriptions = PaperSubscriptionGenerator(
            predicates_per_subscription=predicates_per_subscription,
            attribute_pool=attribute_pool,
            seed=seed,
        ).subscriptions(subscription_count)
        events = EventGenerator(
            attribute_pool=attribute_pool,
            attributes_per_event=attributes_per_event,
            value_range=value_range,
            skew=skew,
            seed=seed + 1,
        ).events(event_count)
    elif corpus == "skew":
        from ..workloads.scenarios import SkewedHotKeyScenario

        scenario = SkewedHotKeyScenario(seed=seed)
        subscriptions = scenario.subscriptions(subscription_count)
        events = scenario.events(event_count)
    else:
        raise ValueError(f"unknown corpus {corpus!r}; use 'paper' or 'skew'")
    probe = events[:min(32, len(events))]

    def measure(
        name,
        engine,
        shards: int,
        executor_name: str,
        partitioner_name: str,
        speedup_base=None,
    ):
        point = measure_throughput(
            engine, events, batch_size=batch_size, repeats=repeats
        )
        return ShardScalingPoint(
            engine=name,
            shards=shards,
            executor=executor_name,
            batch_size=batch_size,
            events=point.events,
            seconds=point.seconds,
            events_per_second=point.events_per_second,
            speedup=(
                1.0
                if speedup_base is None
                else point.events_per_second / speedup_base
            ),
            partitioner=partitioner_name,
            counters=point.counters,
            memory_bytes=point.memory_bytes,
        )

    results: dict[str, list[ShardScalingPoint]] = {}
    for spec in specs:
        baseline_engine = spec.build(registry=registry, indexes=indexes)
        try:
            for subscription in subscriptions:
                baseline_engine.register(subscription)
            # the unsharded baseline has no placement; like its executor
            # field it is pinned to the defaults for record stability
            baseline = measure(spec.name, baseline_engine, 1, "serial", "hash")
            curve = [baseline]
            expected = (
                baseline_engine.match_batch(probe) if verify_parity else None
            )
            for shard_count in counts:
                if shard_count == 1:
                    continue  # the unsharded baseline is the shards=1 point
                sharded = spec.with_options(
                    shards=shard_count,
                    executor=executor,
                    partitioner=partitioner,
                ).build(registry=registry, indexes=indexes)
                try:
                    for subscription in subscriptions:
                        sharded.register(subscription)
                    if (
                        expected is not None
                        and sharded.match_batch(probe) != expected
                    ):
                        raise AssertionError(
                            f"{sharded.name} ({executor}) disagrees with the "
                            f"unsharded {spec.name} engine"
                        )
                    curve.append(
                        measure(
                            spec.name,
                            sharded,
                            shard_count,
                            executor,
                            partitioner,
                            speedup_base=baseline.events_per_second,
                        )
                    )
                finally:
                    sharded.close()
        finally:
            baseline_engine.close()
        results[spec.name] = curve
    return results


# ----------------------------------------------------------------------
# network routing (throughput and suppression across topologies)
# ----------------------------------------------------------------------
#: Topologies the network sweep measures by default.
DEFAULT_TOPOLOGIES: tuple[str, ...] = ("line", "star", "tree", "random")


@dataclass(frozen=True)
class NetworkSweepPoint:
    """One overlay measurement: a topology × covering configuration.

    Throughput covers the full overlay pipeline — per-broker matching,
    reverse-path forwarding, and home-broker delivery — for a batch
    stream injected round-robin at every broker.  Registration and
    suppression figures describe the table state after the subscription
    population is in place.
    """

    topology: str
    brokers: int
    covering: bool
    engine: str
    subscriptions: int
    events: int                   # events published per repeat
    seconds: float                # best-of-repeats wall time for them
    events_per_second: float
    deliveries: int               # notifications per pass
    broker_hops: int              # grouped transmissions per pass
    registrations_total: int      # engine registrations across brokers
    registrations_per_broker: float
    suppressed_registrations: int  # cumulative suppression events
    #: live-table compaction: suppressed entries / remote entries
    #: (BrokerNetwork.suppression_ratio(), always in [0, 1])
    suppression_ratio: float
    routing_bytes: int            # routing-table cost-model bytes
    memory_bytes: int             # engines + routing tables


def run_network_sweep(
    *,
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    broker_count: int = 8,
    subscription_count: int = 64,
    event_count: int = 256,
    batch_size: int = 64,
    engine: str = "noncanonical",
    covering: Sequence[bool] = (True, False),
    seed: int = 0,
    repeats: int = 3,
    verify_parity: bool = True,
) -> list[NetworkSweepPoint]:
    """Overlay routing sweep: topology × covering on/off.

    For each topology a fresh :class:`~repro.broker.network.BrokerNetwork`
    per covering mode is loaded with the same
    :class:`~repro.workloads.scenarios.NetworkChurnScenario` subscription
    population (homes chosen deterministically), then the same event
    batches are published round-robin across the brokers and timed
    best-of-``repeats``.

    With ``verify_parity`` the covering overlay's delivery trace for the
    first batch is checked against a flooding overlay before anything is
    timed — covering is a table compaction, never a delivery change.
    """
    from ..broker.network import BrokerNetwork
    from ..workloads.scenarios import NetworkChurnScenario, make_topology

    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    modes = list(dict.fromkeys(covering))
    points: list[NetworkSweepPoint] = []
    for topology_name in topologies:
        topology = make_topology(topology_name, broker_count, seed=seed)
        scenario = NetworkChurnScenario(seed=seed)
        subscriptions = scenario.subscriptions(subscription_count)
        events = [scenario.event() for _ in range(event_count)]
        placement_rng = random.Random(seed + 97)
        homes = [
            placement_rng.choice(topology.brokers) for _ in subscriptions
        ]
        publish_at = [
            topology.brokers[index % len(topology.brokers)]
            for index in range(0, event_count, batch_size)
        ]
        chunks = [
            events[start:start + batch_size]
            for start in range(0, event_count, batch_size)
        ]

        def build(covering_enabled: bool) -> BrokerNetwork:
            network = topology.build(
                BrokerNetwork(covering_enabled=covering_enabled),
                engine=engine,
            )
            for home, subscription in zip(homes, subscriptions):
                network.subscribe(
                    home, subscription, subscriber=subscription.subscriber
                )
            return network

        # the sweep builds every broker engine itself, so it owns their
        # lifecycle (the paged engine holds a temp file) — including the
        # throwaway flooding reference when only covering modes were
        # requested with verify_parity
        networks: dict[bool, BrokerNetwork] = {}
        owned: list[BrokerNetwork] = []
        try:
            for mode in modes:
                networks[mode] = build(mode)
                owned.append(networks[mode])
            if verify_parity:
                reference = networks.get(False)
                if reference is None:
                    reference = build(False)
                    owned.append(reference)
                for mode, network in networks.items():
                    if network is reference:
                        continue
                    got = _delivery_trace(
                        network.publish(publish_at[0], chunks[0])
                    )
                    expected = _delivery_trace(
                        reference.publish(publish_at[0], chunks[0])
                    )
                    if got != expected:
                        raise AssertionError(
                            f"covering={mode} delivery trace diverges from "
                            f"flooding on the {topology_name} topology"
                        )
            points.extend(
                _measure_network(
                    networks,
                    topology_name=topology_name,
                    broker_count=broker_count,
                    engine=engine,
                    subscription_count=subscription_count,
                    event_count=event_count,
                    publish_at=publish_at,
                    chunks=chunks,
                    repeats=repeats,
                    brokers=topology.brokers,
                )
            )
        finally:
            for network in owned:
                for broker in network.brokers():
                    broker.engine.close()
    return points


def _measure_network(
    networks,
    *,
    topology_name,
    broker_count,
    engine,
    subscription_count,
    event_count,
    publish_at,
    chunks,
    repeats,
    brokers,
) -> "list[NetworkSweepPoint]":
    points: list[NetworkSweepPoint] = []
    for mode, network in networks.items():
        registrations = sum(
            broker.subscription_count for broker in network.brokers()
        )
        suppressed = network.stats.suppressed_registrations
        ratio = network.suppression_ratio()
        routing_bytes = sum(
            network.routing_table(name).memory_bytes() for name in brokers
        )
        memory = routing_bytes + sum(
            broker.engine.memory_bytes() for broker in network.brokers()
        )
        best = float("inf")
        deliveries = 0
        for _ in range(max(repeats, 1)):
            delivered = 0
            hops_before = network.stats.broker_hops
            start = time.perf_counter()
            for origin, chunk in zip(publish_at, chunks):
                for notifications in network.publish(origin, chunk):
                    delivered += len(notifications)
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
            deliveries = delivered
        points.append(
            NetworkSweepPoint(
                topology=topology_name,
                brokers=broker_count,
                covering=mode,
                engine=engine,
                subscriptions=subscription_count,
                events=event_count,
                seconds=best,
                events_per_second=(
                    event_count / best if best > 0 else float("inf")
                ),
                deliveries=deliveries,
                broker_hops=network.stats.broker_hops - hops_before,
                registrations_total=registrations,
                registrations_per_broker=registrations / broker_count,
                suppressed_registrations=suppressed,
                suppression_ratio=ratio,
                routing_bytes=routing_bytes,
                memory_bytes=memory,
            )
        )
    return points


def _delivery_trace(batched_notifications) -> list[frozenset]:
    """Per-event delivery identity sets, order-insensitive within events."""
    return [
        frozenset(
            (n.subscriber, n.subscription_id, n.broker)
            for n in notifications
        )
        for notifications in batched_notifications
    ]


# ----------------------------------------------------------------------
# shape analysis (claims C2-C4)
# ----------------------------------------------------------------------
def least_squares_slope(series: Sequence[tuple[float, float]]) -> tuple[float, float]:
    """(slope, r_squared) of a y-on-x least-squares fit."""
    n = len(series)
    if n < 2:
        raise ValueError("need at least two points")
    mean_x = sum(x for x, _ in series) / n
    mean_y = sum(y for _, y in series) / n
    ss_xx = sum((x - mean_x) ** 2 for x, _ in series)
    ss_xy = sum((x - mean_x) * (y - mean_y) for x, y in series)
    ss_yy = sum((y - mean_y) ** 2 for _, y in series)
    if ss_xx == 0:
        raise ValueError("degenerate x values")
    slope = ss_xy / ss_xx
    r_squared = 0.0 if ss_yy == 0 else (ss_xy * ss_xy) / (ss_xx * ss_yy)
    return slope, r_squared


def growth_ratio(series: Sequence[tuple[float, float]]) -> float:
    """y(last) / y(first) — how much the curve rises across the sweep."""
    if len(series) < 2:
        raise ValueError("need at least two points")
    ordered = sorted(series)
    first, last = ordered[0][1], ordered[-1][1]
    if first <= 0:
        raise ValueError("non-positive starting value")
    return last / first


def normalized_slope(series: Sequence[tuple[float, float]]) -> float:
    """Slope after normalizing x and y to their final values.

    A curve linear in x has normalized slope ~1; a flat curve ~0.  Used
    to classify counting (≈1) versus the variant and the non-canonical
    engine (≈0) independent of scale.
    """
    ordered = sorted(series)
    x_max = ordered[-1][0] or 1.0
    y_max = max(y for _, y in ordered) or 1.0
    scaled = [(x / x_max, y / y_max) for x, y in ordered]
    slope, _ = least_squares_slope(scaled)
    return slope


def crossover_subscriptions(
    slow_at_scale: Sequence[tuple[float, float]],
    fast_at_scale: Sequence[tuple[float, float]],
) -> float | None:
    """x position where ``fast_at_scale`` becomes cheaper, or ``None``.

    Both series must share x positions (the harness guarantees it).
    Linear interpolation between the two bracketing sweep points —
    mirrors the paper's "except for small subscription quantities"
    observation about where counting stops winning.
    """
    a = sorted(slow_at_scale)
    b = sorted(fast_at_scale)
    if [x for x, _ in a] != [x for x, _ in b]:
        raise ValueError("series are not aligned on x")
    deltas = [
        (x, y_slow - y_fast)  # positive once the fast engine wins
        for (x, y_slow), (_, y_fast) in zip(a, b)
    ]
    if deltas[0][1] >= 0:
        return deltas[0][0]  # fast engine wins from the start
    for (x0, d0), (x1, d1) in zip(deltas, deltas[1:]):
        if d0 < 0 <= d1:
            span = d1 - d0
            t = -d0 / span if span else 0.0
            return x0 + t * (x1 - x0)
    return None
