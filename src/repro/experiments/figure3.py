"""Figure 3 reproduction: all six panels, plus Table 1.

Paper Fig. 3 plots subscription-matching time per event against the
number of registered subscriptions for three engines (non-canonical,
counting variant, counting) across six panels:

====== ============= ======================
panel  |p|           fulfilled predicates
====== ============= ======================
(a)    6             5,000
(b)    8             5,000
(c)    10            5,000
(d)    6             10,000
(e)    8             10,000
(f)    10            10,000
====== ============= ======================

Run from the command line::

    python -m repro.experiments.figure3 --panel all --scale quick
    python -m repro.experiments.figure3 --panel c --scale full
    python -m repro.experiments.figure3 --table1

Subscription counts, fulfilled-predicate counts and the memory budget
are scaled per :class:`~repro.experiments.parameters.ScaleConfig`;
shapes (who wins, growth laws, bend positions relative to the sweep) are
the reproduction target, not absolute seconds (DESIGN.md §3).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Sequence, TextIO

from ..memory.model import MIB, SimulatedMachine
from .harness import SweepResult, run_sweep
from .parameters import PAPER_PARAMETERS, SCALES, ScaleConfig
from .report import ascii_plot, format_bytes, format_seconds, format_table


@dataclass(frozen=True)
class Panel:
    """One Fig. 3 panel: workload shape plus paper sweep range."""

    panel_id: str
    predicates_per_subscription: int
    fulfilled_paper: int
    paper_max_subscriptions: int

    @property
    def title(self) -> str:
        return (
            f"Fig. 3({self.panel_id}): {self.predicates_per_subscription} "
            f"predicates, {self.fulfilled_paper} fulfilled ones"
        )


PANELS: dict[str, Panel] = {
    "a": Panel("a", 6, 5_000, 5_000_000),
    "b": Panel("b", 8, 5_000, 4_000_000),
    "c": Panel("c", 10, 5_000, 2_500_000),
    "d": Panel("d", 6, 10_000, 5_000_000),
    "e": Panel("e", 8, 10_000, 4_000_000),
    "f": Panel("f", 10, 10_000, 2_500_000),
}


def sweep_positions(panel: Panel, scale: ScaleConfig) -> list[int]:
    """Ascending subscription checkpoints for a panel under a scale.

    Includes the scaled version of the paper's smallest population
    (2,000 subscriptions) so the small-N region — where the counting
    algorithm "behaves most efficient" (§4.1) — stays in frame.
    """
    maximum = scale.subscriptions(panel.paper_max_subscriptions)
    points = scale.points_per_curve
    positions = {max(round(maximum * (index + 1) / points), 50)
                 for index in range(points)}
    positions.add(scale.subscriptions(2_000))
    return sorted(positions)


def machine_for(scale: ScaleConfig) -> SimulatedMachine:
    """The scaled 512 MB machine (see ScaleConfig.machine calibration)."""
    divisor = scale.subscription_divisor
    return SimulatedMachine(
        total_memory_bytes=max(int(512 * MIB / divisor), 64 * 1024),
        os_reserved_bytes=max(int(64 * MIB / divisor), 8 * 1024),
    )


def run_panel(panel: Panel, scale: ScaleConfig, **overrides) -> SweepResult:
    """Run one panel; ``overrides`` forward to :func:`run_sweep`."""
    kwargs = dict(
        predicates_per_subscription=panel.predicates_per_subscription,
        subscription_counts=sweep_positions(panel, scale),
        fulfilled_per_event=scale.fulfilled(panel.fulfilled_paper),
        machine=machine_for(scale),
        events_per_point=scale.events_per_point,
        seed=scale.seed,
    )
    kwargs.update(overrides)
    return run_sweep(**kwargs)


def render_panel(
    panel: Panel, scale: ScaleConfig, result: SweepResult, *, plot: bool = True
) -> str:
    """Text report for one panel: a data table and an ASCII plot."""
    parts = [panel.title, "=" * len(panel.title)]
    parts.append(
        f"scale={scale.name}: subscriptions /{scale.subscription_divisor}, "
        f"fulfilled /{scale.fulfilled_divisor} "
        f"(=> {result.fulfilled_per_event} per event), "
        f"memory budget {format_bytes(result.machine.available_bytes).strip()}"
    )
    headers = ["engine", "subscriptions", "stored", "time/event", "memory", "swap x"]
    rows = []
    for name, sweep in result.sweeps.items():
        for point in sweep.points:
            rows.append(
                [
                    name,
                    f"{point.subscriptions:,}",
                    f"{point.stored_subscriptions:,}",
                    format_seconds(point.seconds),
                    format_bytes(point.memory_bytes),
                    f"{point.slowdown:5.1f}",
                ]
            )
    parts.append(format_table(headers, rows))
    if plot:
        parts.append(
            ascii_plot(
                result.series_by_engine(),
                x_label="registered subscriptions",
                y_label="seconds per event (swap-adjusted)",
                title=panel.title,
            )
        )
    return "\n".join(parts)


def render_table1() -> str:
    """Paper Table 1 next to the scaled runtime parameter sets."""
    parts = ["Table 1. Parameters in experiments (paper)"]
    parts.append(
        format_table(["Parameter", "Value"], PAPER_PARAMETERS.rows())
    )
    for scale in SCALES.values():
        rows = [
            ("subscription divisor", f"/{scale.subscription_divisor}"),
            (
                "number of subscriptions",
                f"{scale.subscriptions(2_000):,} - "
                f"{scale.subscriptions(5_000_000):,}",
            ),
            (
                "matching predicates per event",
                f"{scale.fulfilled(5_000):,} - {scale.fulfilled(10_000):,}",
            ),
            (
                "memory budget",
                format_bytes(machine_for(scale).available_bytes).strip(),
            ),
            ("events per sweep point", str(scale.events_per_point)),
        ]
        parts.append(f"Scaled parameters ({scale.name}):")
        parts.append(format_table(["Parameter", "Value"], rows))
    return "\n".join(parts)


def main(argv: Sequence[str] | None = None, out: TextIO | None = None) -> int:
    """CLI entry point (``python -m repro.experiments.figure3``)."""
    stream = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro.experiments.figure3",
        description="Reproduce paper Fig. 3 (and print Table 1).",
    )
    parser.add_argument(
        "--panel",
        default="all",
        choices=[*PANELS.keys(), "all"],
        help="which Fig. 3 panel to run (default: all)",
    )
    parser.add_argument(
        "--scale",
        default="quick",
        choices=list(SCALES.keys()),
        help="parameter scaling (quick: seconds; full: minutes)",
    )
    parser.add_argument(
        "--table1", action="store_true", help="print Table 1 and exit"
    )
    parser.add_argument(
        "--no-plot", action="store_true", help="tables only, no ASCII plots"
    )
    arguments = parser.parse_args(argv)
    if arguments.table1:
        print(render_table1(), file=stream)
        return 0
    scale = SCALES[arguments.scale]
    panel_ids = list(PANELS) if arguments.panel == "all" else [arguments.panel]
    for panel_id in panel_ids:
        panel = PANELS[panel_id]
        result = run_panel(panel, scale)
        print(
            render_panel(panel, scale, result, plot=not arguments.no_plot),
            file=stream,
        )
        print(file=stream)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
