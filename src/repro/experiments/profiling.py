"""Matching-behaviour profiling: candidate sets, match rates, workloads.

The paper's §4.1 analysis reasons about *why* the curves look the way
they do — "its performance ... is more dependent on the number of
fulfilled predicates per subscription than the performance from the
original counting approach.  This results out of the different handling
of non-candidate subscriptions."  This module measures exactly those
quantities so the reasoning can be checked, not just the totals.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Sequence

from ..core.base import FilterEngine
from ..core.noncanonical import NonCanonicalEngine


@dataclass(frozen=True)
class MatchingProfile:
    """Per-event matching behaviour aggregated over a sample of events."""

    events: int
    mean_fulfilled: float       # phase-1 output size
    mean_candidates: float      # subscriptions examined in phase 2
    mean_matches: float         # subscriptions notified
    candidate_fraction: float   # candidates / registered subscriptions
    selectivity: float          # matches / candidates (0 when no candidates)

    def __str__(self) -> str:
        return (
            f"events={self.events} fulfilled={self.mean_fulfilled:.1f} "
            f"candidates={self.mean_candidates:.1f} "
            f"({self.candidate_fraction:.2%} of registered) "
            f"matches={self.mean_matches:.1f} "
            f"(selectivity {self.selectivity:.2%})"
        )


def profile_matching(
    engine: NonCanonicalEngine,
    fulfilled_sets: Sequence[set[int]],
) -> MatchingProfile:
    """Profile phase-2 behaviour of a non-canonical engine.

    Uses the engine's ``candidates_for`` instrumentation; the candidate
    set is the paper's key quantity — phase-2 work is proportional to it
    rather than to the registered subscription count.
    """
    if not fulfilled_sets:
        raise ValueError("need at least one fulfilled-id set")
    candidate_counts = []
    match_counts = []
    fulfilled_counts = []
    for fulfilled in fulfilled_sets:
        fulfilled_counts.append(len(fulfilled))
        candidates = engine.candidates_for(fulfilled)
        candidate_counts.append(len(candidates))
        match_counts.append(len(engine.match_fulfilled(fulfilled)))
    registered = max(engine.subscription_count, 1)
    mean_candidates = statistics.fmean(candidate_counts)
    mean_matches = statistics.fmean(match_counts)
    return MatchingProfile(
        events=len(fulfilled_sets),
        mean_fulfilled=statistics.fmean(fulfilled_counts),
        mean_candidates=mean_candidates,
        mean_matches=mean_matches,
        candidate_fraction=mean_candidates / registered,
        selectivity=(mean_matches / mean_candidates) if mean_candidates else 0.0,
    )


def engine_comparison_summary(
    engines: Sequence[FilterEngine],
) -> list[tuple[str, int, int, int]]:
    """(name, originals, stored units, phase-2 bytes) per engine —
    the storage-side table the paper's §4 narrative walks through."""
    return [
        (
            engine.name,
            engine.subscription_count,
            engine.stored_subscription_count,
            engine.memory_bytes(),
        )
        for engine in engines
    ]
