"""Plain-text rendering of experiment results: tables and ASCII plots.

The paper presents line plots (Fig. 3) and a parameter table (Table 1);
this module renders both shapes on a terminal so ``python -m
repro.experiments.figure3`` output is self-contained.
"""

from __future__ import annotations

from typing import Mapping, Sequence

Series = Sequence[tuple[float, float]]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """A boxed, column-aligned text table."""
    columns = [len(str(h)) for h in headers]
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            columns[index] = max(columns[index], len(cell))
    def line(char: str = "-") -> str:
        return "+" + "+".join(char * (width + 2) for width in columns) + "+"
    def render(cells: Sequence[str]) -> str:
        padded = [
            f" {cell}{' ' * (columns[i] - len(cell))} "
            for i, cell in enumerate(cells)
        ]
        return "|" + "|".join(padded) + "|"
    parts = [line("="), render([str(h) for h in headers]), line("=")]
    for row in rendered_rows:
        parts.append(render(row))
    parts.append(line())
    return "\n".join(parts)


_MARKERS = "*o+x#@%&"


def ascii_plot(
    series: Mapping[str, Series],
    *,
    width: int = 72,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
) -> str:
    """Render multiple (x, y) series as a character-grid line plot.

    Each series gets a marker from ``*o+x...``; a legend follows the
    grid.  Axis ranges span all series jointly.
    """
    points = [(x, y) for values in series.values() for x, y in values]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(min(ys), 0.0), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]

    def locate(x: float, y: float) -> tuple[int, int]:
        column = int((x - x_min) / x_span * (width - 1))
        row = height - 1 - int((y - y_min) / y_span * (height - 1))
        return row, column

    for index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        ordered = sorted(values)
        # draw straight segments between consecutive points
        for (x0, y0), (x1, y1) in zip(ordered, ordered[1:]):
            steps = max(width // max(len(ordered) - 1, 1), 2)
            for step in range(steps + 1):
                t = step / steps
                row, column = locate(x0 + (x1 - x0) * t, y0 + (y1 - y0) * t)
                if grid[row][column] == " ":
                    grid[row][column] = "."
        for x, y in ordered:
            row, column = locate(x, y)
            grid[row][column] = marker

    lines = []
    if title:
        lines.append(title.center(width + 10))
    top_label = f"{y_max:.4g}"
    bottom_label = f"{y_min:.4g}"
    gutter = max(len(top_label), len(bottom_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(gutter)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * gutter + "+" + "-" * width)
    x_axis = f"{x_min:.4g}".ljust(width - 8) + f"{x_max:.4g}"
    lines.append(" " * (gutter + 1) + x_axis)
    lines.append(" " * (gutter + 1) + f"[{x_label}]  vs  [{y_label}]")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * (gutter + 1) + legend)
    return "\n".join(lines)


def format_seconds(seconds: float) -> str:
    """Human-readable seconds with stable width for tables."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:8.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:8.2f} ms"
    return f"{seconds:8.3f} s "


def format_bytes(count: int) -> str:
    """Human-readable byte count."""
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:7.1f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")
