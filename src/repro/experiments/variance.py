"""Variance-controlled measurement.

"We have run our experiments several times in order to obtain variances
under 1%.  Hence, it is not required to present variances in our
results." (paper §4)

:func:`measure_until_stable` reproduces that protocol: a timed callable
is repeated until the coefficient of variation of the collected
measurements drops below a target (default 1%), or a run cap is hit —
in which case the instability is *reported*, never hidden.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class Measurement:
    """Outcome of a variance-controlled timing run."""

    mean_seconds: float
    stdev_seconds: float
    runs: int
    stable: bool          # coefficient of variation reached the target
    samples: tuple[float, ...]

    @property
    def coefficient_of_variation(self) -> float:
        """stdev / mean — the paper's "variance" stability criterion."""
        if self.mean_seconds == 0:
            return 0.0
        return self.stdev_seconds / self.mean_seconds


def measure_until_stable(
    operation: Callable[[], object],
    *,
    target_cv: float = 0.01,
    min_runs: int = 3,
    max_runs: int = 50,
    discard_warmup: int = 1,
    clock: Callable[[], float] = time.perf_counter,
) -> Measurement:
    """Time ``operation`` repeatedly until measurements stabilize.

    Parameters
    ----------
    operation:
        The callable to time (one full measurement per call).
    target_cv:
        Stop once ``stdev/mean`` of the retained samples falls below
        this (paper: 1%).
    min_runs / max_runs:
        Bounds on the number of *retained* measurements.
    discard_warmup:
        Leading runs thrown away (cache warm-up, lazy initialization).
    clock:
        Injectable time source (tests use a deterministic fake).

    Returns
    -------
    Measurement
        With ``stable=False`` when ``max_runs`` was exhausted before the
        target was met.
    """
    if min_runs < 2:
        raise ValueError("min_runs must be at least 2")
    if max_runs < min_runs:
        raise ValueError("max_runs must be >= min_runs")
    if target_cv <= 0:
        raise ValueError("target_cv must be positive")
    for _ in range(max(discard_warmup, 0)):
        operation()
    samples: list[float] = []
    while len(samples) < max_runs:
        start = clock()
        operation()
        samples.append(clock() - start)
        if len(samples) >= min_runs:
            mean = statistics.fmean(samples)
            stdev = statistics.stdev(samples)
            if mean > 0 and stdev / mean <= target_cv:
                return Measurement(
                    mean_seconds=mean,
                    stdev_seconds=stdev,
                    runs=len(samples),
                    stable=True,
                    samples=tuple(samples),
                )
    mean = statistics.fmean(samples)
    stdev = statistics.stdev(samples)
    return Measurement(
        mean_seconds=mean,
        stdev_seconds=stdev,
        runs=len(samples),
        stable=mean > 0 and stdev / mean <= target_cv,
        samples=tuple(samples),
    )
