"""Predicate operators.

The paper defines predicates as attribute-operator-value triples.  This
module enumerates the supported operators and implements their evaluation
semantics against event attribute values.

Operators fall into families that determine which one-dimensional index
structure serves them in predicate matching (paper §3.2):

* **point** operators (``EQ``, ``NE``, ``IN``, ``BOOL``-style equality) are
  served by hash indexes;
* **range** operators (``LT``, ``LE``, ``GT``, ``GE``, ``BETWEEN``) are
  served by B+ trees / interval indexes;
* **string** operators (``PREFIX``, ``SUFFIX``, ``CONTAINS``) are served
  by tries (prefix/suffix) or scan lists (contains).
"""

from __future__ import annotations

import enum
from typing import Any


class OperatorArity(enum.Enum):
    """How many value operands an operator takes."""

    UNARY = 1      # EXISTS
    BINARY = 2     # attribute ? value
    TERNARY = 3    # BETWEEN takes (low, high)


class IndexFamily(enum.Enum):
    """Which index structure serves an operator during predicate matching."""

    HASH = "hash"
    BTREE = "btree"
    INTERVAL = "interval"
    TRIE = "trie"
    SCAN = "scan"


class Operator(enum.Enum):
    """The comparison operators usable in predicates."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    BETWEEN = "between"   # value is an inclusive (low, high) pair
    IN = "in"             # value is a frozenset of alternatives
    PREFIX = "prefix"     # string starts-with
    SUFFIX = "suffix"     # string ends-with
    CONTAINS = "contains" # string substring
    EXISTS = "exists"     # attribute is present, value ignored

    @property
    def index_family(self) -> IndexFamily:
        """The index structure that serves this operator (paper §3.2)."""
        return _INDEX_FAMILY[self]

    @property
    def arity(self) -> OperatorArity:
        """Number of value operands the operator expects."""
        if self is Operator.EXISTS:
            return OperatorArity.UNARY
        if self is Operator.BETWEEN:
            return OperatorArity.TERNARY
        return OperatorArity.BINARY

    @property
    def is_numeric_range(self) -> bool:
        """True for operators requiring an ordered (numeric) domain."""
        return self in (
            Operator.LT,
            Operator.LE,
            Operator.GT,
            Operator.GE,
            Operator.BETWEEN,
        )

    @property
    def is_string_only(self) -> bool:
        """True for operators defined only on string attributes."""
        return self in (Operator.PREFIX, Operator.SUFFIX, Operator.CONTAINS)

    def evaluate(self, attribute_value: Any, operand: Any) -> bool:
        """Apply this operator to an event attribute value.

        Parameters
        ----------
        attribute_value:
            The value the event carries for the predicate's attribute.
        operand:
            The predicate's value operand: a scalar for comparisons, an
            inclusive ``(low, high)`` tuple for ``BETWEEN``, a frozenset
            for ``IN``, ignored for ``EXISTS``.

        Returns
        -------
        bool
            Whether the predicate is fulfilled.  Type mismatches (e.g. a
            string event value under a numeric operator) evaluate to
            ``False`` rather than raising, matching the permissive
            semantics of schema-less pub/sub systems.
        """
        evaluator = _EVALUATORS[self]
        try:
            return evaluator(attribute_value, operand)
        except TypeError:
            return False

    @classmethod
    def from_symbol(cls, symbol: str) -> "Operator":
        """Parse an operator from its textual symbol.

        Accepts the canonical symbols (``=``, ``!=``, ``<``, ...) plus the
        common aliases ``==`` and ``<>``.
        """
        normalized = symbol.strip().lower()
        aliases = {"==": "=", "<>": "!="}
        normalized = aliases.get(normalized, normalized)
        for op in cls:
            if op.value == normalized:
                return op
        raise ValueError(f"unknown operator symbol {symbol!r}")


def _comparable(a: Any, b: Any) -> bool:
    """Whether ``a`` and ``b`` live in the same ordered domain."""
    if isinstance(a, bool) or isinstance(b, bool):
        return isinstance(a, bool) and isinstance(b, bool)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return True
    return isinstance(a, str) and isinstance(b, str)


def _eval_eq(v: Any, o: Any) -> bool:
    if isinstance(v, bool) != isinstance(o, bool):
        return False
    return v == o


def _eval_ne(v: Any, o: Any) -> bool:
    if isinstance(v, bool) != isinstance(o, bool):
        return False
    return v != o


def _eval_lt(v: Any, o: Any) -> bool:
    return _comparable(v, o) and v < o


def _eval_le(v: Any, o: Any) -> bool:
    return _comparable(v, o) and v <= o


def _eval_gt(v: Any, o: Any) -> bool:
    return _comparable(v, o) and v > o


def _eval_ge(v: Any, o: Any) -> bool:
    return _comparable(v, o) and v >= o


def _eval_between(v: Any, o: Any) -> bool:
    low, high = o
    return _comparable(v, low) and _comparable(v, high) and low <= v <= high


def _eval_in(v: Any, o: Any) -> bool:
    return v in o


def _eval_prefix(v: Any, o: Any) -> bool:
    return isinstance(v, str) and isinstance(o, str) and v.startswith(o)


def _eval_suffix(v: Any, o: Any) -> bool:
    return isinstance(v, str) and isinstance(o, str) and v.endswith(o)


def _eval_contains(v: Any, o: Any) -> bool:
    return isinstance(v, str) and isinstance(o, str) and o in v


def _eval_exists(v: Any, o: Any) -> bool:
    return True  # reaching evaluation means the attribute was present


_EVALUATORS = {
    Operator.EQ: _eval_eq,
    Operator.NE: _eval_ne,
    Operator.LT: _eval_lt,
    Operator.LE: _eval_le,
    Operator.GT: _eval_gt,
    Operator.GE: _eval_ge,
    Operator.BETWEEN: _eval_between,
    Operator.IN: _eval_in,
    Operator.PREFIX: _eval_prefix,
    Operator.SUFFIX: _eval_suffix,
    Operator.CONTAINS: _eval_contains,
    Operator.EXISTS: _eval_exists,
}

_INDEX_FAMILY = {
    Operator.EQ: IndexFamily.HASH,
    Operator.NE: IndexFamily.HASH,
    Operator.IN: IndexFamily.HASH,
    Operator.EXISTS: IndexFamily.HASH,
    Operator.LT: IndexFamily.BTREE,
    Operator.LE: IndexFamily.BTREE,
    Operator.GT: IndexFamily.BTREE,
    Operator.GE: IndexFamily.BTREE,
    Operator.BETWEEN: IndexFamily.INTERVAL,
    Operator.PREFIX: IndexFamily.TRIE,
    Operator.SUFFIX: IndexFamily.TRIE,
    Operator.CONTAINS: IndexFamily.SCAN,
}
