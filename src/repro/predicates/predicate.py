"""Predicates: attribute-operator-value triples.

A predicate is the atomic filter unit of the subscription language
(paper §3.1).  Predicates are *structural* values — two predicates with
the same attribute, operator and operand are the same predicate and are
deduplicated by the :class:`~repro.predicates.registry.PredicateRegistry`,
which also assigns the integer identifiers ``id(p)`` the engines and the
byte-level subscription encoding work with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from ..events.event import Event
from .operators import Operator


class InvalidPredicateError(ValueError):
    """Raised when a predicate triple is malformed."""


def _normalize_operand(operator: Operator, value: Any) -> Any:
    """Validate and canonicalize a predicate operand for ``operator``.

    ``BETWEEN`` operands become ``(low, high)`` tuples, ``IN`` operands
    become frozensets; scalars pass through unchanged.
    """
    if operator is Operator.EXISTS:
        if value is not None:
            raise InvalidPredicateError("EXISTS predicates take no operand")
        return None
    if operator is Operator.BETWEEN:
        if not isinstance(value, (tuple, list)) or len(value) != 2:
            raise InvalidPredicateError(
                f"BETWEEN operand must be a (low, high) pair, got {value!r}"
            )
        low, high = value
        for bound in (low, high):
            if isinstance(bound, bool) or not isinstance(bound, (int, float, str)):
                raise InvalidPredicateError(
                    f"BETWEEN bounds must be numbers or strings, got {bound!r}"
                )
        if isinstance(low, str) != isinstance(high, str):
            raise InvalidPredicateError("BETWEEN bounds must share a domain")
        if low > high:
            raise InvalidPredicateError(
                f"BETWEEN bounds out of order: {low!r} > {high!r}"
            )
        return (low, high)
    if operator is Operator.IN:
        if isinstance(value, (str, bytes)) or not isinstance(value, Iterable):
            raise InvalidPredicateError(
                f"IN operand must be an iterable of alternatives, got {value!r}"
            )
        alternatives = frozenset(value)
        if not alternatives:
            raise InvalidPredicateError("IN operand must be non-empty")
        return alternatives
    if operator.is_string_only and not isinstance(value, str):
        raise InvalidPredicateError(
            f"{operator.name} operand must be a string, got {value!r}"
        )
    if operator.is_numeric_range and isinstance(value, bool):
        raise InvalidPredicateError(
            f"{operator.name} operand must not be a bool"
        )
    if value is None:
        raise InvalidPredicateError("predicate operand must not be None")
    return value


@dataclass(frozen=True)
class Predicate:
    """An attribute-operator-value filter triple.

    Examples
    --------
    >>> p = Predicate("price", Operator.GT, 10)
    >>> p.matches(Event({"price": 12}))
    True
    >>> p.matches(Event({"price": 9}))
    False
    >>> p.matches(Event({"volume": 100}))   # attribute absent
    False
    """

    attribute: str
    operator: Operator
    value: Any = None

    def __post_init__(self) -> None:
        if not isinstance(self.attribute, str) or not self.attribute:
            raise InvalidPredicateError(
                f"attribute must be a non-empty string, got {self.attribute!r}"
            )
        object.__setattr__(
            self, "value", _normalize_operand(self.operator, self.value)
        )

    def matches(self, event: Event) -> bool:
        """Evaluate this predicate against ``event``.

        A predicate on an attribute the event does not carry is *not
        fulfilled* — including ``NE`` predicates, which follow the usual
        content-based semantics of constraining a present attribute.
        """
        if self.attribute not in event:
            return False
        return self.operator.evaluate(event[self.attribute], self.value)

    def negated(self) -> "Predicate":
        """Return the complementary predicate, when one exists.

        Used by the DNF transformation to push ``NOT`` into the leaves
        (e.g. ``NOT (a > 5)`` becomes ``a <= 5``).

        Raises
        ------
        ValueError
            For operators without a single-predicate complement
            (``BETWEEN``, ``IN``, string operators, ``EXISTS``) — callers
            must keep an explicit NOT node instead.
        """
        complements = {
            Operator.EQ: Operator.NE,
            Operator.NE: Operator.EQ,
            Operator.LT: Operator.GE,
            Operator.GE: Operator.LT,
            Operator.GT: Operator.LE,
            Operator.LE: Operator.GT,
        }
        try:
            flipped = complements[self.operator]
        except KeyError:
            raise ValueError(
                f"operator {self.operator.name} has no single-predicate complement"
            ) from None
        return Predicate(self.attribute, flipped, self.value)

    def __str__(self) -> str:
        if self.operator is Operator.EXISTS:
            return f"exists({self.attribute})"
        if self.operator is Operator.BETWEEN:
            low, high = self.value
            return f"{self.attribute} between [{low!r}, {high!r}]"
        if self.operator is Operator.IN:
            inner = ", ".join(repr(v) for v in sorted(self.value, key=repr))
            return f"{self.attribute} in {{{inner}}}"
        return f"{self.attribute} {self.operator.value} {self.value!r}"
