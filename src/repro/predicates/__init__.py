"""Predicate language: attribute-operator-value triples and their registry."""

from .operators import IndexFamily, Operator, OperatorArity
from .predicate import InvalidPredicateError, Predicate
from .registry import PredicateRegistry, UnknownPredicateError

__all__ = [
    "IndexFamily",
    "Operator",
    "OperatorArity",
    "InvalidPredicateError",
    "Predicate",
    "PredicateRegistry",
    "UnknownPredicateError",
]
