"""Predicate registry: structural deduplication and identifier assignment.

The engines never handle :class:`~repro.predicates.predicate.Predicate`
objects during matching — they work with dense integer identifiers
``id(p)`` (paper §3.1).  The registry is the single authority mapping
predicates to identifiers.  Structurally identical predicates registered
by different subscriptions share one identifier; a reference count tracks
how many subscriptions use each predicate so unsubscription can retire
identifiers that are no longer needed.
"""

from __future__ import annotations

from typing import Iterator

from .predicate import Predicate


class UnknownPredicateError(KeyError):
    """Raised when an identifier or predicate is not in the registry."""


class PredicateRegistry:
    """Assigns dense integer identifiers to predicates.

    Identifiers start at 1 (identifier 0 is reserved as a sentinel in the
    byte-level subscription encoding) and retired identifiers are recycled
    so identifier space stays dense under churn.

    Example
    -------
    >>> registry = PredicateRegistry()
    >>> p = Predicate("price", Operator.GT, 10)
    >>> pid = registry.register(p)
    >>> registry.register(Predicate("price", Operator.GT, 10)) == pid
    True
    >>> registry.predicate(pid) is not None
    True
    """

    def __init__(self) -> None:
        self._by_predicate: dict[Predicate, int] = {}
        self._by_id: dict[int, Predicate] = {}
        self._refcounts: dict[int, int] = {}
        self._next_id = 1
        self._free_ids: list[int] = []

    def register(self, predicate: Predicate) -> int:
        """Register ``predicate`` (or bump its refcount) and return its id."""
        existing = self._by_predicate.get(predicate)
        if existing is not None:
            self._refcounts[existing] += 1
            return existing
        pid = self._free_ids.pop() if self._free_ids else self._allocate()
        self._by_predicate[predicate] = pid
        self._by_id[pid] = predicate
        self._refcounts[pid] = 1
        return pid

    def _allocate(self) -> int:
        pid = self._next_id
        self._next_id += 1
        return pid

    def release(self, predicate_id: int) -> bool:
        """Drop one reference to ``predicate_id``.

        Returns
        -------
        bool
            ``True`` when the predicate was retired (refcount reached
            zero) — callers must then remove it from their indexes.
        """
        if predicate_id not in self._by_id:
            raise UnknownPredicateError(predicate_id)
        self._refcounts[predicate_id] -= 1
        if self._refcounts[predicate_id] > 0:
            return False
        predicate = self._by_id.pop(predicate_id)
        del self._by_predicate[predicate]
        del self._refcounts[predicate_id]
        self._free_ids.append(predicate_id)
        return True

    def predicate(self, predicate_id: int) -> Predicate:
        """Return the predicate registered under ``predicate_id``."""
        try:
            return self._by_id[predicate_id]
        except KeyError:
            raise UnknownPredicateError(predicate_id) from None

    def identifier(self, predicate: Predicate) -> int:
        """Return the id of a registered predicate."""
        try:
            return self._by_predicate[predicate]
        except KeyError:
            raise UnknownPredicateError(predicate) from None

    def refcount(self, predicate_id: int) -> int:
        """How many registrations currently reference ``predicate_id``."""
        if predicate_id not in self._refcounts:
            raise UnknownPredicateError(predicate_id)
        return self._refcounts[predicate_id]

    def __contains__(self, predicate: Predicate) -> bool:
        return predicate in self._by_predicate

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[tuple[int, Predicate]]:
        return iter(self._by_id.items())
