"""Domain scenarios for the example applications.

The paper's introduction motivates filtering on "less equipped machines,
such as laptops and mobile devices" in peer-to-peer settings.  These
scenarios provide realistic schemas, subscription templates and event
streams for three such domains:

* **stock ticker** — trade events; subscriptions combine price bands,
  symbols and volumes with real Boolean structure;
* **auction monitor** — bid events; sniping/outbid alert subscriptions;
* **news alerts** — headline events with string predicates.

Two further scenarios exist to stress the **sharded runtime** rather
than to model a domain:

* **skewed hot keys** — a handful of keys receive most of the events
  *and* most of the subscriptions, so candidate work concentrates
  instead of spreading evenly (the adversarial case for a partitioner);
* **subscribe/unsubscribe churn** — a deterministic interleaving of
  registrations, withdrawals and publications, the workload that
  exercises partition routing and worker mirroring under mutation.

The **network tier** adds overlay topology generators (line, star,
balanced tree, random connected tree — the shapes broker deployments
actually take) and :class:`NetworkChurnScenario`, a churn stream whose
subscriptions *nest* (narrow value bands inside wider ones on the same
key), the structure that makes covering-based routing-table compaction
bite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Union

from ..events.event import Event
from ..events.schema import AttributeSpec, AttributeType, EventSchema
from ..subscriptions.subscription import Subscription
from .distributions import make_rng, zipf_weights

STOCK_SYMBOLS = (
    "ACME", "GLOBEX", "INITECH", "UMBRELLA", "HOOLI",
    "STARK", "WAYNE", "WONKA", "TYRELL", "CYBERDYNE",
)

STOCK_SCHEMA = EventSchema(
    "trade",
    [
        AttributeSpec("symbol", AttributeType.STRING, required=True),
        AttributeSpec("price", AttributeType.FLOAT, required=True),
        AttributeSpec("volume", AttributeType.INT, required=True),
        AttributeSpec("exchange", AttributeType.STRING),
        AttributeSpec("halted", AttributeType.BOOL),
    ],
)

AUCTION_SCHEMA = EventSchema(
    "bid",
    [
        AttributeSpec("item", AttributeType.STRING, required=True),
        AttributeSpec("bid", AttributeType.FLOAT, required=True),
        AttributeSpec("bidder", AttributeType.STRING, required=True),
        AttributeSpec("seconds_left", AttributeType.INT),
    ],
)

NEWS_SCHEMA = EventSchema(
    "headline",
    [
        AttributeSpec("source", AttributeType.STRING, required=True),
        AttributeSpec("topic", AttributeType.STRING, required=True),
        AttributeSpec("headline", AttributeType.STRING, required=True),
        AttributeSpec("urgency", AttributeType.INT),
    ],
)


@dataclass
class StockScenario:
    """Trade event stream and trader subscriptions."""

    seed: int | None = 0
    _rng: object = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = make_rng(self.seed)

    def event(self) -> Event:
        """One random trade conforming to :data:`STOCK_SCHEMA`."""
        rng = self._rng
        event = Event(
            {
                "symbol": rng.choice(STOCK_SYMBOLS),
                "price": round(rng.uniform(1.0, 500.0), 2),
                "volume": rng.randint(1, 50_000),
                "exchange": rng.choice(("NYSE", "NASDAQ", "LSE")),
                "halted": rng.random() < 0.01,
            }
        )
        STOCK_SCHEMA.validate(event)
        return event

    def subscription(self, subscriber: str) -> Subscription:
        """A trader's alert: a watchlist in the paper's AND-of-ORs shape.

        "Either of my two symbols, crossing out of its band, on a large
        or urgent print" — three OR-groups under one AND, the exact
        non-DNF structure whose canonical transformation multiplies
        (2 x 2 x 2 = 8 conjunctive clauses per alert).
        """
        rng = self._rng
        first, second = self._rng.sample(STOCK_SYMBOLS, 2)
        low = round(rng.uniform(10.0, 80.0), 2)
        high = round(rng.uniform(300.0, 490.0), 2)
        block = rng.randint(30_000, 48_000)
        exchange = rng.choice(("NYSE", "NASDAQ", "LSE"))
        text = (
            f"(symbol = '{first}' or symbol = '{second}') "
            f"and (price <= {low} or price >= {high}) "
            f"and (volume >= {block} or exchange = '{exchange}')"
        )
        return Subscription.from_text(text, subscriber=subscriber)


@dataclass
class AuctionScenario:
    """Bid event stream and sniping-alert subscriptions."""

    seed: int | None = 0
    items: tuple[str, ...] = (
        "clock", "violin", "stamp", "comic", "lamp", "atlas", "coin", "mask",
    )

    def __post_init__(self) -> None:
        self._rng = make_rng(self.seed)

    def event(self) -> Event:
        """One random bid conforming to :data:`AUCTION_SCHEMA`."""
        rng = self._rng
        event = Event(
            {
                "item": rng.choice(self.items),
                "bid": round(rng.uniform(1.0, 900.0), 2),
                "bidder": f"user{rng.randint(1, 200):03d}",
                "seconds_left": rng.randint(0, 3600),
            }
        )
        AUCTION_SCHEMA.validate(event)
        return event

    def subscription(self, subscriber: str) -> Subscription:
        """An outbid/sniping alert over one watched item."""
        rng = self._rng
        item = rng.choice(self.items)
        ceiling = round(rng.uniform(50.0, 800.0), 2)
        text = (
            f"item = '{item}' and (bid > {ceiling} "
            f"or (seconds_left < 120 and bid > {round(ceiling * 0.8, 2)}))"
        )
        return Subscription.from_text(text, subscriber=subscriber)


@dataclass
class NewsScenario:
    """Headline stream with string-operator subscriptions."""

    seed: int | None = 0
    sources: tuple[str, ...] = ("reuters", "ap", "afp", "dpa")
    topics: tuple[str, ...] = (
        "markets", "politics", "science", "sports", "technology",
    )
    _words: tuple[str, ...] = (
        "election", "merger", "quake", "launch", "discovery",
        "strike", "record", "summit", "verdict", "rally",
    )

    def __post_init__(self) -> None:
        self._rng = make_rng(self.seed)

    def event(self) -> Event:
        """One random headline conforming to :data:`NEWS_SCHEMA`."""
        rng = self._rng
        words = [rng.choice(self._words) for _ in range(3)]
        event = Event(
            {
                "source": rng.choice(self.sources),
                "topic": rng.choice(self.topics),
                "headline": " ".join(words),
                "urgency": rng.randint(1, 5),
            }
        )
        NEWS_SCHEMA.validate(event)
        return event

    def subscription(self, subscriber: str) -> Subscription:
        """A keyword/topic alert with urgency escalation."""
        rng = self._rng
        topic = rng.choice(self.topics)
        word = rng.choice(self._words)
        text = (
            f"(topic = '{topic}' and headline contains '{word}') "
            f"or urgency >= 5"
        )
        return Subscription.from_text(text, subscriber=subscriber)


HOTKEY_SCHEMA = EventSchema(
    "update",
    [
        AttributeSpec("key", AttributeType.STRING, required=True),
        AttributeSpec("value", AttributeType.INT, required=True),
        AttributeSpec("region", AttributeType.STRING),
    ],
)


@dataclass
class SkewedHotKeyScenario:
    """Zipf-skewed key popularity: the partitioner's adversarial case.

    A small set of *hot* keys receives most of the event traffic and
    most of the subscription interest (both drawn from the same Zipf
    distribution over key ranks).  Under uniform hashing the hot
    subscriptions still spread across shards — which is exactly the
    property the shard-parity and scaling suites verify with this
    scenario — but per-event candidate sets are large and highly
    overlapping, so load per shard is dominated by a few keys.

    Parameters
    ----------
    keys:
        Size of the key universe.
    skew:
        Zipf exponent over key ranks; 0 degenerates to uniform traffic.
    value_range:
        Values are uniform ints in ``[0, value_range)``.
    """

    seed: int | None = 0
    keys: int = 64
    skew: float = 1.2
    value_range: int = 1000
    regions: tuple[str, ...] = ("us", "eu", "apac")

    def __post_init__(self) -> None:
        self._rng = make_rng(self.seed)
        self._keys = [f"k{index:03d}" for index in range(self.keys)]
        self._weights = zipf_weights(self.keys, self.skew)

    def _pick_key(self) -> str:
        return self._rng.choices(self._keys, weights=self._weights, k=1)[0]

    def event(self) -> Event:
        """One update on a popularity-skewed key."""
        rng = self._rng
        event = Event(
            {
                "key": self._pick_key(),
                "value": rng.randrange(self.value_range),
                "region": rng.choice(self.regions),
            }
        )
        HOTKEY_SCHEMA.validate(event)
        return event

    def events(self, count: int) -> list[Event]:
        """A batch of ``count`` skewed events."""
        return [self.event() for _ in range(count)]

    def subscription(self, subscriber: str) -> Subscription:
        """Interest in a (skew-chosen) key: a value band, optionally
        escalating on a second hot key — OR structure, so the canonical
        engines pay their transformation here too."""
        rng = self._rng
        key = self._pick_key()
        low = rng.randrange(self.value_range // 2)
        high = low + rng.randrange(1, self.value_range // 2)
        if rng.random() < 0.5:
            other = self._pick_key()
            region = rng.choice(self.regions)
            text = (
                f"(key = '{key}' and value >= {low} and value <= {high}) "
                f"or (key = '{other}' and region = '{region}')"
            )
        else:
            text = f"key = '{key}' and value >= {low} and value <= {high}"
        return Subscription.from_text(text, subscriber=subscriber)

    def subscriptions(self, count: int) -> list[Subscription]:
        """A batch of ``count`` skew-targeted subscriptions."""
        return [
            self.subscription(f"subscriber{index:04d}")
            for index in range(count)
        ]


#: One churn operation: ``("subscribe", Subscription)``,
#: ``("unsubscribe", int)`` or ``("publish", Event)``.
ChurnOp = tuple[str, Union[Subscription, int, Event]]


@dataclass
class ChurnScenario:
    """Deterministic subscribe/unsubscribe churn interleaved with traffic.

    Produces an operation stream over a base scenario (default
    :class:`SkewedHotKeyScenario`): warm-up registrations, then a mix of
    publications, fresh subscriptions, and withdrawals of a *random
    live* subscription.  The stream is a pure function of the seed, so
    two engines fed the same stream must produce identical match sets —
    the property the sharded-parity churn suite asserts.

    Parameters
    ----------
    warmup_subscriptions:
        Registrations emitted before any other operation.
    subscribe_weight / unsubscribe_weight / publish_weight:
        Relative frequencies of the three operation kinds after warm-up.
    """

    seed: int | None = 0
    base: object | None = None
    warmup_subscriptions: int = 20
    subscribe_weight: float = 1.0
    unsubscribe_weight: float = 1.0
    publish_weight: float = 3.0

    def __post_init__(self) -> None:
        self._rng = make_rng(self.seed)
        if self.base is None:
            self.base = SkewedHotKeyScenario(seed=self.seed)

    def ops(self, count: int) -> Iterator[ChurnOp]:
        """Yield ``count`` post-warm-up operations (plus the warm-up).

        Withdrawals target a random live subscription; when none is
        live, a registration is emitted instead, so the stream is always
        applicable.
        """
        rng = self._rng
        live: list[int] = []
        serial = 0

        def fresh() -> Subscription:
            nonlocal serial
            subscription = self.base.subscription(f"churn{serial:05d}")
            serial += 1
            live.append(subscription.subscription_id)
            return subscription

        for _ in range(self.warmup_subscriptions):
            yield ("subscribe", fresh())
        kinds = ("subscribe", "unsubscribe", "publish")
        weights = (
            self.subscribe_weight,
            self.unsubscribe_weight,
            self.publish_weight,
        )
        for _ in range(count):
            kind = rng.choices(kinds, weights=weights, k=1)[0]
            if kind == "unsubscribe" and not live:
                kind = "subscribe"
            if kind == "subscribe":
                yield ("subscribe", fresh())
            elif kind == "unsubscribe":
                victim = live.pop(rng.randrange(len(live)))
                yield ("unsubscribe", victim)
            else:
                yield ("publish", self.base.event())

    def apply(self, engine, ops: Iterator[ChurnOp]) -> list[set[int]]:
        """Drive ``engine`` through an operation stream.

        Returns the matched-id set of every publish, in stream order —
        the comparable trace of the run.  The same ``ops`` sequence must
        be materialized once and fed to every engine under comparison
        (the stream carries live :class:`Subscription` objects).
        """
        trace: list[set[int]] = []
        for kind, payload in ops:
            if kind == "subscribe":
                engine.register(payload)
            elif kind == "unsubscribe":
                engine.unregister(payload)
            else:
                trace.append(engine.match(payload))
        return trace


# ----------------------------------------------------------------------
# overlay topologies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Topology:
    """A named broker overlay shape: node names plus tree edges.

    Overlays must stay acyclic (reverse-path routing), so every
    generator emits a tree; ``build`` instantiates it on a
    :class:`~repro.broker.network.BrokerNetwork`.
    """

    name: str
    brokers: tuple[str, ...]
    edges: tuple[tuple[str, str], ...]

    def build(self, network, **add_broker_options):
        """Add this topology's brokers and links to ``network``.

        ``add_broker_options`` (``engine=``, ``schema=``, ``machine=``)
        are forwarded to every
        :meth:`~repro.broker.network.BrokerNetwork.add_broker` call.
        Returns ``network`` for chaining.
        """
        for name in self.brokers:
            network.add_broker(name, **add_broker_options)
        for left, right in self.edges:
            network.connect(left, right)
        return network


def _broker_names(count: int) -> tuple[str, ...]:
    if count < 1:
        raise ValueError("a topology needs at least one broker")
    return tuple(f"b{index:02d}" for index in range(count))


def line_topology(brokers: int = 8) -> Topology:
    """A chain — the worst diameter, every hop sees most traffic."""
    names = _broker_names(brokers)
    return Topology("line", names, tuple(zip(names, names[1:])))


def star_topology(brokers: int = 8) -> Topology:
    """One hub with ``brokers - 1`` leaves — diameter 2, hot center."""
    names = _broker_names(brokers)
    hub = names[0]
    return Topology(
        "star", names, tuple((hub, leaf) for leaf in names[1:])
    )


def tree_topology(brokers: int = 8, *, fanout: int = 2) -> Topology:
    """A balanced ``fanout``-ary tree (node ``i`` hangs off
    ``(i - 1) // fanout``) — the deployment shape broker overlays
    usually approximate."""
    if fanout < 1:
        raise ValueError("fanout must be at least 1")
    names = _broker_names(brokers)
    edges = tuple(
        (names[(index - 1) // fanout], names[index])
        for index in range(1, brokers)
    )
    return Topology("tree", names, edges)


def random_topology(brokers: int = 8, *, seed: int | None = 0) -> Topology:
    """A uniformly random connected tree (each node attaches to a
    random earlier node) — the unplanned-growth overlay."""
    rng = make_rng(seed)
    names = _broker_names(brokers)
    edges = tuple(
        (names[rng.randrange(index)], names[index])
        for index in range(1, brokers)
    )
    return Topology("random", names, edges)


#: Topology generators by name — sweep and bench configuration is data.
TOPOLOGY_BUILDERS = {
    "line": line_topology,
    "star": star_topology,
    "tree": tree_topology,
    "random": random_topology,
}


def make_topology(name: str, brokers: int = 8, *, seed: int | None = 0) -> Topology:
    """Build a registered topology by name."""
    try:
        builder = TOPOLOGY_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; registered: "
            f"{', '.join(TOPOLOGY_BUILDERS)}"
        ) from None
    if name == "random":
        return builder(brokers, seed=seed)
    return builder(brokers)


# ----------------------------------------------------------------------
# network churn
# ----------------------------------------------------------------------
#: One network operation: ``("subscribe", broker, Subscription)``,
#: ``("unsubscribe", subscription_id)`` or ``("publish", broker, Event)``.
NetworkOp = tuple


@dataclass
class NetworkChurnScenario:
    """Deterministic overlay churn with covering-friendly structure.

    Events and subscriptions live on the :data:`HOTKEY_SCHEMA` domain
    (Zipf-popular keys, integer values).  Subscriptions come in three
    shapes chosen per draw:

    * a **wide** key watch (``key = 'k…'`` alone) with probability
      ``wide_probability`` — covers every band on that key;
    * a **nested** band with probability ``nesting`` — a strict
      sub-band of a previously issued subscription on the same key,
      guaranteeing covering pairs throughout the stream;
    * a fresh random band otherwise.

    The operation stream (:meth:`ops`) interleaves registrations at
    random brokers, withdrawals of random live subscriptions, and
    publications at random brokers, all as a pure function of the seed —
    replaying one materialized stream against two overlay configurations
    must produce identical delivery traces (:meth:`apply` returns the
    comparable trace).
    """

    seed: int | None = 0
    keys: int = 24
    skew: float = 1.1
    value_range: int = 1_000
    regions: tuple[str, ...] = ("us", "eu", "apac")
    nesting: float = 0.4
    wide_probability: float = 0.1
    warmup_subscriptions: int = 24
    subscribe_weight: float = 1.0
    unsubscribe_weight: float = 1.0
    publish_weight: float = 3.0

    def __post_init__(self) -> None:
        self._rng = make_rng(self.seed)
        self._keys = [f"k{index:03d}" for index in range(self.keys)]
        self._weights = zipf_weights(self.keys, self.skew)
        #: issued bands, the nesting pool: (key, low, high)
        self._bands: list[tuple[str, int, int]] = []

    def _pick_key(self) -> str:
        return self._rng.choices(self._keys, weights=self._weights, k=1)[0]

    def event(self) -> Event:
        """One update on a popularity-skewed key."""
        rng = self._rng
        event = Event(
            {
                "key": self._pick_key(),
                "value": rng.randrange(self.value_range),
                "region": rng.choice(self.regions),
            }
        )
        HOTKEY_SCHEMA.validate(event)
        return event

    def subscription(self, subscriber: str) -> Subscription:
        """One wide / nested / fresh subscription (see class docs)."""
        rng = self._rng
        roll = rng.random()
        if roll < self.wide_probability:
            key = self._pick_key()
            self._bands.append((key, 0, self.value_range - 1))
            text = f"key = '{key}'"
        elif roll < self.wide_probability + self.nesting and self._bands:
            key, low, high = self._bands[rng.randrange(len(self._bands))]
            span = high - low
            shrink = max(span // 4, 1)
            new_low = low + rng.randrange(shrink) if span else low
            new_high = max(high - rng.randrange(shrink), new_low) if span else high
            self._bands.append((key, new_low, new_high))
            text = f"key = '{key}' and value between [{new_low}, {new_high}]"
        else:
            key = self._pick_key()
            low = rng.randrange(self.value_range // 2)
            high = low + rng.randrange(1, self.value_range // 2)
            self._bands.append((key, low, high))
            text = f"key = '{key}' and value between [{low}, {high}]"
        return Subscription.from_text(text, subscriber=subscriber)

    def subscriptions(self, count: int) -> list[Subscription]:
        """A batch of ``count`` covering-friendly subscriptions."""
        return [
            self.subscription(f"subscriber{index:04d}")
            for index in range(count)
        ]

    def ops(
        self, count: int, brokers: Sequence[str]
    ) -> Iterator[NetworkOp]:
        """Yield the warm-up plus ``count`` churn operations.

        Withdrawals target a random live subscription; when none is
        live a registration is emitted instead.
        """
        if not brokers:
            raise ValueError("need at least one broker name")
        rng = self._rng
        brokers = list(brokers)
        live: list[int] = []
        serial = 0

        def fresh() -> Subscription:
            nonlocal serial
            subscription = self.subscription(f"peer{serial:05d}")
            serial += 1
            live.append(subscription.subscription_id)
            return subscription

        for _ in range(self.warmup_subscriptions):
            yield ("subscribe", rng.choice(brokers), fresh())
        kinds = ("subscribe", "unsubscribe", "publish")
        weights = (
            self.subscribe_weight,
            self.unsubscribe_weight,
            self.publish_weight,
        )
        for _ in range(count):
            kind = rng.choices(kinds, weights=weights, k=1)[0]
            if kind == "unsubscribe" and not live:
                kind = "subscribe"
            if kind == "subscribe":
                yield ("subscribe", rng.choice(brokers), fresh())
            elif kind == "unsubscribe":
                victim = live.pop(rng.randrange(len(live)))
                yield ("unsubscribe", victim)
            else:
                yield ("publish", rng.choice(brokers), self.event())

    @staticmethod
    def apply(network, ops) -> list[frozenset]:
        """Drive a :class:`~repro.broker.network.BrokerNetwork` through
        an operation stream.

        Returns one ``frozenset`` of ``(subscriber, subscription_id,
        broker)`` triples per publish, in stream order — the comparable
        delivery trace (identical for any two configurations routing
        the same stream, covering on or off).
        """
        trace: list[frozenset] = []
        for op in ops:
            if op[0] == "subscribe":
                _, broker, subscription = op
                network.subscribe(
                    broker, subscription, subscriber=subscription.subscriber
                )
            elif op[0] == "unsubscribe":
                network.unsubscribe(op[1])
            else:
                _, broker, event = op
                deliveries = network.publish(broker, event)
                trace.append(
                    frozenset(
                        (n.subscriber, n.subscription_id, n.broker)
                        for n in deliveries
                    )
                )
        return trace
