"""Domain scenarios for the example applications.

The paper's introduction motivates filtering on "less equipped machines,
such as laptops and mobile devices" in peer-to-peer settings.  These
scenarios provide realistic schemas, subscription templates and event
streams for three such domains:

* **stock ticker** — trade events; subscriptions combine price bands,
  symbols and volumes with real Boolean structure;
* **auction monitor** — bid events; sniping/outbid alert subscriptions;
* **news alerts** — headline events with string predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..events.event import Event
from ..events.schema import AttributeSpec, AttributeType, EventSchema
from ..subscriptions.subscription import Subscription
from .distributions import make_rng

STOCK_SYMBOLS = (
    "ACME", "GLOBEX", "INITECH", "UMBRELLA", "HOOLI",
    "STARK", "WAYNE", "WONKA", "TYRELL", "CYBERDYNE",
)

STOCK_SCHEMA = EventSchema(
    "trade",
    [
        AttributeSpec("symbol", AttributeType.STRING, required=True),
        AttributeSpec("price", AttributeType.FLOAT, required=True),
        AttributeSpec("volume", AttributeType.INT, required=True),
        AttributeSpec("exchange", AttributeType.STRING),
        AttributeSpec("halted", AttributeType.BOOL),
    ],
)

AUCTION_SCHEMA = EventSchema(
    "bid",
    [
        AttributeSpec("item", AttributeType.STRING, required=True),
        AttributeSpec("bid", AttributeType.FLOAT, required=True),
        AttributeSpec("bidder", AttributeType.STRING, required=True),
        AttributeSpec("seconds_left", AttributeType.INT),
    ],
)

NEWS_SCHEMA = EventSchema(
    "headline",
    [
        AttributeSpec("source", AttributeType.STRING, required=True),
        AttributeSpec("topic", AttributeType.STRING, required=True),
        AttributeSpec("headline", AttributeType.STRING, required=True),
        AttributeSpec("urgency", AttributeType.INT),
    ],
)


@dataclass
class StockScenario:
    """Trade event stream and trader subscriptions."""

    seed: int | None = 0
    _rng: object = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = make_rng(self.seed)

    def event(self) -> Event:
        """One random trade conforming to :data:`STOCK_SCHEMA`."""
        rng = self._rng
        event = Event(
            {
                "symbol": rng.choice(STOCK_SYMBOLS),
                "price": round(rng.uniform(1.0, 500.0), 2),
                "volume": rng.randint(1, 50_000),
                "exchange": rng.choice(("NYSE", "NASDAQ", "LSE")),
                "halted": rng.random() < 0.01,
            }
        )
        STOCK_SCHEMA.validate(event)
        return event

    def subscription(self, subscriber: str) -> Subscription:
        """A trader's alert: a watchlist in the paper's AND-of-ORs shape.

        "Either of my two symbols, crossing out of its band, on a large
        or urgent print" — three OR-groups under one AND, the exact
        non-DNF structure whose canonical transformation multiplies
        (2 x 2 x 2 = 8 conjunctive clauses per alert).
        """
        rng = self._rng
        first, second = self._rng.sample(STOCK_SYMBOLS, 2)
        low = round(rng.uniform(10.0, 80.0), 2)
        high = round(rng.uniform(300.0, 490.0), 2)
        block = rng.randint(30_000, 48_000)
        exchange = rng.choice(("NYSE", "NASDAQ", "LSE"))
        text = (
            f"(symbol = '{first}' or symbol = '{second}') "
            f"and (price <= {low} or price >= {high}) "
            f"and (volume >= {block} or exchange = '{exchange}')"
        )
        return Subscription.from_text(text, subscriber=subscriber)


@dataclass
class AuctionScenario:
    """Bid event stream and sniping-alert subscriptions."""

    seed: int | None = 0
    items: tuple[str, ...] = (
        "clock", "violin", "stamp", "comic", "lamp", "atlas", "coin", "mask",
    )

    def __post_init__(self) -> None:
        self._rng = make_rng(self.seed)

    def event(self) -> Event:
        """One random bid conforming to :data:`AUCTION_SCHEMA`."""
        rng = self._rng
        event = Event(
            {
                "item": rng.choice(self.items),
                "bid": round(rng.uniform(1.0, 900.0), 2),
                "bidder": f"user{rng.randint(1, 200):03d}",
                "seconds_left": rng.randint(0, 3600),
            }
        )
        AUCTION_SCHEMA.validate(event)
        return event

    def subscription(self, subscriber: str) -> Subscription:
        """An outbid/sniping alert over one watched item."""
        rng = self._rng
        item = rng.choice(self.items)
        ceiling = round(rng.uniform(50.0, 800.0), 2)
        text = (
            f"item = '{item}' and (bid > {ceiling} "
            f"or (seconds_left < 120 and bid > {round(ceiling * 0.8, 2)}))"
        )
        return Subscription.from_text(text, subscriber=subscriber)


@dataclass
class NewsScenario:
    """Headline stream with string-operator subscriptions."""

    seed: int | None = 0
    sources: tuple[str, ...] = ("reuters", "ap", "afp", "dpa")
    topics: tuple[str, ...] = (
        "markets", "politics", "science", "sports", "technology",
    )
    _words: tuple[str, ...] = (
        "election", "merger", "quake", "launch", "discovery",
        "strike", "record", "summit", "verdict", "rally",
    )

    def __post_init__(self) -> None:
        self._rng = make_rng(self.seed)

    def event(self) -> Event:
        """One random headline conforming to :data:`NEWS_SCHEMA`."""
        rng = self._rng
        words = [rng.choice(self._words) for _ in range(3)]
        event = Event(
            {
                "source": rng.choice(self.sources),
                "topic": rng.choice(self.topics),
                "headline": " ".join(words),
                "urgency": rng.randint(1, 5),
            }
        )
        NEWS_SCHEMA.validate(event)
        return event

    def subscription(self, subscriber: str) -> Subscription:
        """A keyword/topic alert with urgency escalation."""
        rng = self._rng
        topic = rng.choice(self.topics)
        word = rng.choice(self._words)
        text = (
            f"(topic = '{topic}' and headline contains '{word}') "
            f"or urgency >= 5"
        )
        return Subscription.from_text(text, subscriber=subscriber)
