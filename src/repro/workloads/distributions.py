"""Sampling helpers for workload generation.

All generators take an explicit :class:`random.Random` so every workload
is reproducible from a seed — experiment configurations record the seed
and EXPERIMENTS.md results can be regenerated bit-identically.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

T = TypeVar("T")


def make_rng(seed: int | None) -> random.Random:
    """A dedicated RNG; ``None`` derives entropy from the system."""
    return random.Random(seed)


def zipf_weights(n: int, skew: float = 1.0) -> list[float]:
    """Normalized Zipf weights for ranks ``1..n``.

    ``skew=0`` degenerates to uniform; larger values concentrate mass on
    the first ranks.  Used to model popularity-skewed attribute and value
    choices (shared-predicate ablation A4).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    raw = [1.0 / (rank ** skew) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def zipf_choice(
    rng: random.Random, items: Sequence[T], weights: Sequence[float]
) -> T:
    """Draw one item under precomputed (e.g. Zipf) weights."""
    return rng.choices(items, weights=weights, k=1)[0]


def sample_without_replacement(
    rng: random.Random, population: Sequence[T], count: int
) -> list[T]:
    """``count`` distinct items; raises if the population is too small."""
    if count > len(population):
        raise ValueError(
            f"cannot draw {count} distinct items from {len(population)}"
        )
    return rng.sample(population, count)
