"""Workload generators reproducing the paper's experimental setup (§4).

Three generators cover the evaluation and the tests:

* :class:`PaperSubscriptionGenerator` — subscriptions with ``|p| = 2k``
  *unique* predicates arranged as an AND of ``k`` binary ORs.  This is
  the non-DNF shape whose transformation yields exactly ``2**(|p|/2)``
  conjunctive subscriptions with ``|p|/2`` predicates each, matching
  Table 1's "number of subscriptions per subscription after
  transformation: 8 to 32" for ``|p| ∈ {6, 8, 10}``;
* :class:`GeneralSubscriptionGenerator` — random arbitrary Boolean
  expressions (AND/OR/NOT, configurable shape) for property tests and
  robustness checks;
* :class:`EventGenerator` / :class:`FulfilledPredicateSampler` — event
  streams.  The paper measures phase 2 in isolation and controls "the
  number of matching predicates per event" directly (5,000–10,000); the
  sampler reproduces exactly that by drawing the fulfilled predicate id
  set, while the event generator produces real events for full-pipeline
  tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..events.event import Event
from ..predicates.operators import Operator
from ..predicates.predicate import Predicate
from ..subscriptions.ast import (
    And,
    BooleanExpression,
    Not,
    Or,
    PredicateLeaf,
)
from ..subscriptions.subscription import Subscription
from .distributions import make_rng, zipf_weights


@dataclass
class PaperSubscriptionGenerator:
    """Paper-shaped subscriptions: AND of ``k`` binary ORs, unique predicates.

    Parameters
    ----------
    predicates_per_subscription:
        The paper's ``|p|`` (6, 8 or 10 in the experiments); must be even.
    attribute_pool:
        Number of distinct attribute names to spread predicates over.
    shared_predicate_fraction:
        0.0 reproduces the paper ("we avoid the usage of shared
        predicates"); > 0 reuses already-issued predicates with that
        probability (ablation A4).
    seed:
        RNG seed for reproducibility.
    """

    predicates_per_subscription: int = 6
    attribute_pool: int = 64
    shared_predicate_fraction: float = 0.0
    seed: int | None = 0
    _rng: object = field(init=False, repr=False)
    _counter: Iterator[int] = field(init=False, repr=False)
    _issued: list[Predicate] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.predicates_per_subscription < 2:
            raise ValueError("need at least 2 predicates per subscription")
        if self.predicates_per_subscription % 2:
            raise ValueError("the paper's workload uses even |p| (= 2k)")
        if not 0.0 <= self.shared_predicate_fraction < 1.0:
            raise ValueError("shared_predicate_fraction must be in [0, 1)")
        self._rng = make_rng(self.seed)
        self._counter = itertools.count()
        self._issued = []

    def _fresh_predicate(self) -> Predicate:
        """A globally unique predicate (distinct operand value).

        Values are drawn from a large integer domain — "domains are
        supposed to have relatively large sizes and subscribers are
        interested in different events" (§4).
        """
        serial = next(self._counter)
        attribute = f"attr{serial % self.attribute_pool:03d}"
        # Unique value per serial; alternate operators across the
        # hash/B+ tree families so phase 1 exercises both index types.
        value = serial * 7 + 13
        operator = (Operator.EQ, Operator.GT, Operator.LE)[serial % 3]
        return Predicate(attribute, operator, value)

    def _next_predicate(self) -> Predicate:
        if (
            self._issued
            and self.shared_predicate_fraction > 0.0
            and self._rng.random() < self.shared_predicate_fraction
        ):
            return self._rng.choice(self._issued)
        predicate = self._fresh_predicate()
        self._issued.append(predicate)
        return predicate

    def subscription(self, *, subscriber: str | None = None) -> Subscription:
        """One subscription: AND of ``|p|/2`` binary OR groups."""
        k = self.predicates_per_subscription // 2
        groups = []
        for _ in range(k):
            left = PredicateLeaf(self._next_predicate())
            right = PredicateLeaf(self._next_predicate())
            groups.append(Or((left, right)))
        expression: BooleanExpression = groups[0] if k == 1 else And(tuple(groups))
        return Subscription(expression=expression, subscriber=subscriber)

    def subscriptions(self, count: int) -> list[Subscription]:
        """``count`` independent subscriptions."""
        return [self.subscription() for _ in range(count)]


@dataclass
class GeneralSubscriptionGenerator:
    """Random arbitrary Boolean expressions for tests and robustness runs.

    Generates expression trees with configurable depth and fan-out over a
    mixed-operator predicate pool (equality, comparisons, between, in,
    string operators) so the whole index zoo is exercised.

    Parameters
    ----------
    max_depth:
        Maximum nesting depth of operator nodes.
    max_fanout:
        Maximum children of an AND/OR node.
    allow_not:
        Include NOT nodes (the counting engines reject the resulting
        negative literals unless operator complementing is enabled).
    numeric_attributes / string_attributes:
        Attribute name pools.
    value_range:
        Bound for numeric operand values.
    """

    max_depth: int = 3
    max_fanout: int = 3
    allow_not: bool = True
    numeric_attributes: Sequence[str] = ("price", "volume", "qty", "score")
    string_attributes: Sequence[str] = ("symbol", "category")
    value_range: int = 100
    seed: int | None = 0

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if self.max_fanout < 2:
            raise ValueError("max_fanout must be at least 2")
        self._rng = make_rng(self.seed)

    def predicate(self) -> Predicate:
        """One random predicate over the configured attribute pools."""
        rng = self._rng
        if rng.random() < 0.75:
            attribute = rng.choice(list(self.numeric_attributes))
            operator = rng.choice(
                [Operator.EQ, Operator.NE, Operator.LT, Operator.LE,
                 Operator.GT, Operator.GE, Operator.BETWEEN, Operator.IN]
            )
            if operator is Operator.BETWEEN:
                low = rng.randint(0, self.value_range - 1)
                high = rng.randint(low, self.value_range)
                return Predicate(attribute, operator, (low, high))
            if operator is Operator.IN:
                count = rng.randint(1, 4)
                values = {rng.randint(0, self.value_range) for _ in range(count)}
                return Predicate(attribute, operator, values)
            return Predicate(attribute, operator, rng.randint(0, self.value_range))
        attribute = rng.choice(list(self.string_attributes))
        operator = rng.choice(
            [Operator.EQ, Operator.NE, Operator.PREFIX,
             Operator.SUFFIX, Operator.CONTAINS]
        )
        word = "".join(rng.choice("abcde") for _ in range(rng.randint(1, 4)))
        return Predicate(attribute, operator, word)

    def expression(self, depth: int | None = None) -> BooleanExpression:
        """One random Boolean expression."""
        rng = self._rng
        if depth is None:
            depth = self.max_depth
        if depth <= 0 or rng.random() < 0.3:
            leaf = PredicateLeaf(self.predicate())
            if self.allow_not and rng.random() < 0.15:
                return Not(leaf)
            return leaf
        fanout = rng.randint(2, self.max_fanout)
        children = tuple(self.expression(depth - 1) for _ in range(fanout))
        node: BooleanExpression = (
            And(children) if rng.random() < 0.5 else Or(children)
        )
        if self.allow_not and rng.random() < 0.1:
            return Not(node)
        return node

    def subscription(self, *, subscriber: str | None = None) -> Subscription:
        """One subscription with a random expression."""
        return Subscription(expression=self.expression(), subscriber=subscriber)

    def subscriptions(self, count: int) -> list[Subscription]:
        """``count`` independent subscriptions."""
        return [self.subscription() for _ in range(count)]


@dataclass
class EventGenerator:
    """Random events over the generators' attribute spaces.

    Parameters
    ----------
    attribute_pool:
        Number of ``attrNNN`` attributes (match the subscription
        generator's pool).
    attributes_per_event:
        How many attributes each event carries.
    value_range:
        Values are drawn uniformly from ``[0, value_range)``.
    skew:
        Zipf skew over attribute popularity (0 = uniform).
    """

    attribute_pool: int = 64
    attributes_per_event: int = 16
    value_range: int = 1_000_000
    skew: float = 0.0
    seed: int | None = 0

    def __post_init__(self) -> None:
        if not 0 < self.attributes_per_event <= self.attribute_pool:
            raise ValueError(
                "attributes_per_event must be in (0, attribute_pool]"
            )
        self._rng = make_rng(self.seed)
        self._names = [f"attr{i:03d}" for i in range(self.attribute_pool)]
        self._weights = (
            zipf_weights(self.attribute_pool, self.skew) if self.skew else None
        )

    def event(self) -> Event:
        """One random event."""
        rng = self._rng
        if self._weights is None:
            chosen = rng.sample(self._names, self.attributes_per_event)
        else:
            chosen_set: dict[str, None] = {}
            while len(chosen_set) < self.attributes_per_event:
                name = rng.choices(self._names, weights=self._weights, k=1)[0]
                chosen_set[name] = None
            chosen = list(chosen_set)
        return Event(
            {name: rng.randrange(self.value_range) for name in chosen}
        )

    def events(self, count: int) -> list[Event]:
        """``count`` independent events."""
        return [self.event() for _ in range(count)]


@dataclass
class FulfilledPredicateSampler:
    """Draws phase-1 outputs directly: sets of fulfilled predicate ids.

    The paper's experiments fix "matching predicates per event" at 5,000
    or 10,000 and time phase 2 only.  Sampling the fulfilled id set from
    the registered predicate universe reproduces that measurement exactly
    (DESIGN.md §3 records this substitution).
    """

    predicate_ids: Sequence[int]
    fulfilled_per_event: int
    seed: int | None = 0

    def __post_init__(self) -> None:
        if self.fulfilled_per_event <= 0:
            raise ValueError("fulfilled_per_event must be positive")
        self._rng = make_rng(self.seed)
        self._universe = list(self.predicate_ids)

    def sample(self) -> set[int]:
        """One event's fulfilled predicate id set.

        When the universe is smaller than ``fulfilled_per_event`` the
        whole universe is returned (small-scale smoke runs).
        """
        count = min(self.fulfilled_per_event, len(self._universe))
        return set(self._rng.sample(self._universe, count))

    def samples(self, count: int) -> list[set[int]]:
        """``count`` independent fulfilled-id sets."""
        return [self.sample() for _ in range(count)]
