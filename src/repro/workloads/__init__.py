"""Workload generation: paper-shaped subscriptions, events, scenarios."""

from .distributions import (
    make_rng,
    sample_without_replacement,
    zipf_choice,
    zipf_weights,
)
from .generator import (
    EventGenerator,
    FulfilledPredicateSampler,
    GeneralSubscriptionGenerator,
    PaperSubscriptionGenerator,
)
from .scenarios import (
    AUCTION_SCHEMA,
    HOTKEY_SCHEMA,
    NEWS_SCHEMA,
    STOCK_SCHEMA,
    STOCK_SYMBOLS,
    AuctionScenario,
    ChurnScenario,
    NewsScenario,
    SkewedHotKeyScenario,
    StockScenario,
)

__all__ = [
    "make_rng",
    "sample_without_replacement",
    "zipf_choice",
    "zipf_weights",
    "EventGenerator",
    "FulfilledPredicateSampler",
    "GeneralSubscriptionGenerator",
    "PaperSubscriptionGenerator",
    "AUCTION_SCHEMA",
    "HOTKEY_SCHEMA",
    "NEWS_SCHEMA",
    "STOCK_SCHEMA",
    "STOCK_SYMBOLS",
    "AuctionScenario",
    "ChurnScenario",
    "NewsScenario",
    "SkewedHotKeyScenario",
    "StockScenario",
]
