"""Common interface of the one-dimensional predicate indexes.

Every index maps *predicate operands* to *predicate identifiers* and
answers one question during phase-1 matching: given the value an event
carries for an attribute, which predicate ids over that attribute are
fulfilled?
"""

from __future__ import annotations

import abc
from typing import Any, Iterable


class PredicateIndex(abc.ABC):
    """Base class for operand-keyed predicate indexes."""

    @abc.abstractmethod
    def insert(self, operand: Any, predicate_id: int) -> None:
        """Index ``predicate_id`` under ``operand``."""

    @abc.abstractmethod
    def remove(self, operand: Any, predicate_id: int) -> bool:
        """Remove the pair; returns ``True`` when it existed."""

    @abc.abstractmethod
    def match(self, value: Any) -> Iterable[int]:
        """Ids of predicates fulfilled by an event value ``value``."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of indexed (operand, id) pairs."""

    @property
    def is_empty(self) -> bool:
        """Whether the index holds no entries."""
        return len(self) == 0
