"""One-dimensional predicate indexes (phase-1 matching)."""

from .base import PredicateIndex
from .bplus_tree import BPlusTree
from .hash_index import EqualityIndex, ExistsIndex, MembershipIndex, NotEqualIndex
from .interval_index import IntervalIndex
from .manager import AttributeIndexes, IndexManager
from .trie import ContainsScanList, PrefixTrie, SuffixTrie

__all__ = [
    "PredicateIndex",
    "BPlusTree",
    "EqualityIndex",
    "ExistsIndex",
    "MembershipIndex",
    "NotEqualIndex",
    "IntervalIndex",
    "AttributeIndexes",
    "IndexManager",
    "ContainsScanList",
    "PrefixTrie",
    "SuffixTrie",
]
