"""A from-scratch in-memory B+ tree.

The paper's phase-1 predicate matching deploys "one-dimensional index
structures such as hash tables or B+ trees ... point predicates utilise
hash tables, for range predicates we deploy B+ trees" (§3.2).  This is
that B+ tree: keys are predicate operand values, and each key holds a
*bucket* — the set of predicate identifiers whose predicates carry that
operand.

Design notes
------------
* classic order-``b`` B+ tree: internal nodes hold up to ``b`` children,
  leaves hold up to ``b - 1`` keys, all data lives in the leaf level,
  leaves are doubly linked for range scans;
* deletion implements full rebalancing (borrow from siblings, merge on
  underflow) so the tree stays height-balanced under churn;
* keys must be mutually comparable — the index manager keeps separate
  trees per value domain (numeric vs. string) to guarantee that.

The structure is validated by property-based tests against a sorted-dict
reference model, including the internal invariants (`_check_invariants`).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Optional


class _Node:
    __slots__ = ("keys",)


class _Leaf(_Node):
    __slots__ = ("buckets", "next", "prev")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.buckets: list[set[int]] = []
        self.next: Optional["_Leaf"] = None
        self.prev: Optional["_Leaf"] = None


class _Internal(_Node):
    __slots__ = ("children",)

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.children: list[_Node] = []


class BPlusTree:
    """An order-``b`` B+ tree mapping comparable keys to id buckets.

    Parameters
    ----------
    order:
        Maximum number of children of an internal node (≥ 3).  Leaves
        hold at most ``order - 1`` keys.

    Example
    -------
    >>> tree = BPlusTree(order=4)
    >>> tree.insert(10, 1)
    >>> tree.insert(20, 2)
    >>> sorted(tree.range_search(low=5, high=15))
    [10]
    """

    def __init__(self, order: int = 32) -> None:
        if order < 3:
            raise ValueError("B+ tree order must be at least 3")
        self._order = order
        self._root: _Node = _Leaf()
        self._size = 0          # number of distinct keys
        self._entry_count = 0   # number of (key, id) pairs

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """The tree's branching factor."""
        return self._order

    def __len__(self) -> int:
        """Number of distinct keys."""
        return self._size

    @property
    def entry_count(self) -> int:
        """Total number of (key, id) pairs across all buckets."""
        return self._entry_count

    def height(self) -> int:
        """Number of levels (a lone leaf has height 1)."""
        level = 1
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
            level += 1
        return level

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _find_leaf(self, key: Any) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
        assert isinstance(node, _Leaf)
        return node

    def get(self, key: Any) -> frozenset[int]:
        """The bucket stored under ``key`` (empty when absent)."""
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return frozenset(leaf.buckets[index])
        return frozenset()

    def __contains__(self, key: Any) -> bool:
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        return index < len(leaf.keys) and leaf.keys[index] == key

    def items(self) -> Iterator[tuple[Any, frozenset[int]]]:
        """All (key, bucket) pairs in ascending key order."""
        leaf = self._leftmost_leaf()
        while leaf is not None:
            for key, bucket in zip(leaf.keys, leaf.buckets):
                yield key, frozenset(bucket)
            leaf = leaf.next

    def keys(self) -> Iterator[Any]:
        """All keys in ascending order."""
        for key, _ in self.items():
            yield key

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        return node  # type: ignore[return-value]

    def range_items(
        self,
        low: Any = None,
        high: Any = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[tuple[Any, frozenset[int]]]:
        """(key, bucket) pairs with ``low ? key ? high``.

        ``None`` bounds are open-ended.  Inclusivity of each bound is
        controlled independently — range predicate matching needs all
        four combinations (``<`` vs ``<=`` on either side).
        """
        if low is not None:
            leaf = self._find_leaf(low)
        else:
            leaf = self._leftmost_leaf()
        while leaf is not None:
            for key, bucket in zip(leaf.keys, leaf.buckets):
                if low is not None:
                    if key < low or (not include_low and key == low):
                        continue
                if high is not None:
                    if key > high or (not include_high and key == high):
                        return
                yield key, frozenset(bucket)
            leaf = leaf.next

    def range_search(
        self,
        low: Any = None,
        high: Any = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[Any]:
        """Keys within the bounds (see :meth:`range_items`)."""
        for key, _ in self.range_items(
            low, high, include_low=include_low, include_high=include_high
        ):
            yield key

    def range_ids(
        self,
        low: Any = None,
        high: Any = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[int]:
        """Union of all bucket ids within the bounds, streamed."""
        for _, bucket in self.range_items(
            low, high, include_low=include_low, include_high=include_high
        ):
            yield from bucket

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, key: Any, identifier: int) -> None:
        """Add ``identifier`` to the bucket of ``key`` (creating it)."""
        result = self._insert(self._root, key, identifier)
        if result is not None:
            separator, right = result
            new_root = _Internal()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root

    def _insert(
        self, node: _Node, key: Any, identifier: int
    ) -> Optional[tuple[Any, _Node]]:
        """Insert into the subtree; return (separator, new right node) on split."""
        if isinstance(node, _Leaf):
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                if identifier not in node.buckets[index]:
                    node.buckets[index].add(identifier)
                    self._entry_count += 1
                return None
            node.keys.insert(index, key)
            node.buckets.insert(index, {identifier})
            self._size += 1
            self._entry_count += 1
            if len(node.keys) <= self._order - 1:
                return None
            return self._split_leaf(node)
        assert isinstance(node, _Internal)
        child_index = bisect.bisect_right(node.keys, key)
        result = self._insert(node.children[child_index], key, identifier)
        if result is None:
            return None
        separator, right = result
        node.keys.insert(child_index, separator)
        node.children.insert(child_index + 1, right)
        if len(node.children) <= self._order:
            return None
        return self._split_internal(node)

    def _split_leaf(self, leaf: _Leaf) -> tuple[Any, _Leaf]:
        middle = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[middle:]
        right.buckets = leaf.buckets[middle:]
        leaf.keys = leaf.keys[:middle]
        leaf.buckets = leaf.buckets[:middle]
        right.next = leaf.next
        if right.next is not None:
            right.next.prev = right
        right.prev = leaf
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal) -> tuple[Any, _Internal]:
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _Internal()
        right.keys = node.keys[middle + 1:]
        right.children = node.children[middle + 1:]
        node.keys = node.keys[:middle]
        node.children = node.children[:middle + 1]
        return separator, right

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------
    def remove(self, key: Any, identifier: int) -> bool:
        """Remove ``identifier`` from ``key``'s bucket.

        The key itself is deleted (with rebalancing) once its bucket
        empties.  Returns ``True`` when the pair existed.
        """
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return False
        bucket = leaf.buckets[index]
        if identifier not in bucket:
            return False
        bucket.discard(identifier)
        self._entry_count -= 1
        if bucket:
            return True
        self._delete_key(key)
        return True

    def discard_key(self, key: Any) -> bool:
        """Delete ``key`` and its whole bucket; returns ``True`` if present."""
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return False
        self._entry_count -= len(leaf.buckets[index])
        self._delete_key(key)
        return True

    def _delete_key(self, key: Any) -> None:
        self._delete(self._root, key)
        self._size -= 1
        if isinstance(self._root, _Internal) and len(self._root.children) == 1:
            self._root = self._root.children[0]

    def _min_leaf_keys(self) -> int:
        return (self._order - 1) // 2 if self._order > 3 else 1

    def _min_children(self) -> int:
        return (self._order + 1) // 2

    def _delete(self, node: _Node, key: Any) -> None:
        """Delete ``key`` from the subtree; callers fix child underflow."""
        if isinstance(node, _Leaf):
            index = bisect.bisect_left(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                raise KeyError(key)
            node.keys.pop(index)
            node.buckets.pop(index)
            return
        assert isinstance(node, _Internal)
        child_index = bisect.bisect_right(node.keys, key)
        child = node.children[child_index]
        self._delete(child, key)
        self._fix_underflow(node, child_index)

    def _fix_underflow(self, parent: _Internal, child_index: int) -> None:
        child = parent.children[child_index]
        if isinstance(child, _Leaf):
            if len(child.keys) >= self._min_leaf_keys() or parent is None:
                self._refresh_separator(parent, child_index)
                return
            self._rebalance_leaf(parent, child_index)
        else:
            assert isinstance(child, _Internal)
            if len(child.children) >= self._min_children():
                self._refresh_separator(parent, child_index)
                return
            self._rebalance_internal(parent, child_index)

    def _refresh_separator(self, parent: _Internal, child_index: int) -> None:
        """Keep separators equal to the smallest key of the right subtree."""
        if child_index > 0:
            smallest = self._smallest_key(parent.children[child_index])
            if smallest is not None:
                parent.keys[child_index - 1] = smallest

    def _smallest_key(self, node: _Node) -> Any:
        while isinstance(node, _Internal):
            node = node.children[0]
        leaf = node
        return leaf.keys[0] if leaf.keys else None  # type: ignore[union-attr]

    def _rebalance_leaf(self, parent: _Internal, index: int) -> None:
        leaf: _Leaf = parent.children[index]  # type: ignore[assignment]
        minimum = self._min_leaf_keys()
        left: Optional[_Leaf] = parent.children[index - 1] if index > 0 else None  # type: ignore[assignment]
        right: Optional[_Leaf] = (
            parent.children[index + 1] if index + 1 < len(parent.children) else None  # type: ignore[assignment]
        )
        if left is not None and len(left.keys) > minimum:
            leaf.keys.insert(0, left.keys.pop())
            leaf.buckets.insert(0, left.buckets.pop())
            parent.keys[index - 1] = leaf.keys[0]
            return
        if right is not None and len(right.keys) > minimum:
            leaf.keys.append(right.keys.pop(0))
            leaf.buckets.append(right.buckets.pop(0))
            parent.keys[index] = right.keys[0]
            self._refresh_separator(parent, index)
            return
        if left is not None:
            self._merge_leaves(parent, index - 1)
        elif right is not None:
            self._merge_leaves(parent, index)

    def _merge_leaves(self, parent: _Internal, left_index: int) -> None:
        left: _Leaf = parent.children[left_index]  # type: ignore[assignment]
        right: _Leaf = parent.children[left_index + 1]  # type: ignore[assignment]
        left.keys.extend(right.keys)
        left.buckets.extend(right.buckets)
        left.next = right.next
        if right.next is not None:
            right.next.prev = left
        parent.keys.pop(left_index)
        parent.children.pop(left_index + 1)

    def _rebalance_internal(self, parent: _Internal, index: int) -> None:
        node: _Internal = parent.children[index]  # type: ignore[assignment]
        minimum = self._min_children()
        left: Optional[_Internal] = parent.children[index - 1] if index > 0 else None  # type: ignore[assignment]
        right: Optional[_Internal] = (
            parent.children[index + 1] if index + 1 < len(parent.children) else None  # type: ignore[assignment]
        )
        if left is not None and len(left.children) > minimum:
            node.keys.insert(0, parent.keys[index - 1])
            parent.keys[index - 1] = left.keys.pop()
            node.children.insert(0, left.children.pop())
            return
        if right is not None and len(right.children) > minimum:
            node.keys.append(parent.keys[index])
            parent.keys[index] = right.keys.pop(0)
            node.children.append(right.children.pop(0))
            return
        if left is not None:
            self._merge_internals(parent, index - 1)
        elif right is not None:
            self._merge_internals(parent, index)

    def _merge_internals(self, parent: _Internal, left_index: int) -> None:
        left: _Internal = parent.children[left_index]  # type: ignore[assignment]
        right: _Internal = parent.children[left_index + 1]  # type: ignore[assignment]
        left.keys.append(parent.keys[left_index])
        left.keys.extend(right.keys)
        left.children.extend(right.children)
        parent.keys.pop(left_index)
        parent.children.pop(left_index + 1)

    # ------------------------------------------------------------------
    # validation (used by tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert structural invariants; raises AssertionError on violation.

        Checks: sorted keys everywhere, balanced leaf depth, node fill
        bounds (root exempt), leaf chain consistency and key/bucket
        parity.
        """
        depths: set[int] = set()
        self._check_node(self._root, depth=1, depths=depths, is_root=True,
                         low=None, high=None)
        assert len(depths) == 1, f"leaves at different depths: {depths}"
        # leaf chain must visit exactly the keys in order
        chained = [k for k, _ in self.items()]
        assert chained == sorted(chained), "leaf chain out of order"
        assert len(chained) == self._size, (
            f"size {self._size} != chained key count {len(chained)}"
        )

    def _check_node(
        self, node: _Node, depth: int, depths: set[int], is_root: bool,
        low: Any, high: Any,
    ) -> None:
        assert node.keys == sorted(node.keys), "unsorted node keys"
        for key in node.keys:
            if low is not None:
                assert key >= low, f"key {key!r} below separator {low!r}"
            if high is not None:
                assert key < high, f"key {key!r} not below separator {high!r}"
        if isinstance(node, _Leaf):
            depths.add(depth)
            assert len(node.keys) == len(node.buckets), "key/bucket mismatch"
            assert all(node.buckets), "empty bucket retained"
            if not is_root:
                assert len(node.keys) >= self._min_leaf_keys(), "leaf underflow"
            assert len(node.keys) <= self._order - 1, "leaf overflow"
            return
        assert isinstance(node, _Internal)
        assert len(node.children) == len(node.keys) + 1, "child/key mismatch"
        if not is_root:
            assert len(node.children) >= self._min_children(), "internal underflow"
        else:
            assert len(node.children) >= 2, "root must have >= 2 children"
        assert len(node.children) <= self._order, "internal overflow"
        bounds = [low, *node.keys, high]
        for i, child in enumerate(node.children):
            self._check_node(
                child, depth + 1, depths, is_root=False,
                low=bounds[i], high=bounds[i + 1],
            )
