"""String predicate indexes: tries for prefix/suffix, a scan list for contains.

A prefix predicate ``attr prefix 'abc'`` is fulfilled by event value
``v`` iff ``'abc'`` is a prefix of ``v``.  Storing all prefix operands in
a character trie answers the question for *all* prefix predicates in one
walk of ``v``: every trie node visited along ``v``'s characters whose
path spells a complete operand contributes its predicate ids.

Suffix predicates use the same structure over reversed strings.
``contains`` has no sublinear one-dimensional index without heavier
machinery (suffix automata); a scan list is honest about that cost and
keeps the engine comparison fair.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from .base import PredicateIndex


class _TrieNode:
    __slots__ = ("children", "ids")

    def __init__(self) -> None:
        self.children: dict[str, "_TrieNode"] = {}
        self.ids: set[int] = set()


class PrefixTrie(PredicateIndex):
    """Character trie over prefix operands.

    ``match(value)`` returns the ids of every indexed operand that is a
    prefix of ``value`` — a single O(len(value)) walk.
    """

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._entries = 0

    def insert(self, operand: Any, predicate_id: int) -> None:
        node = self._root
        for char in operand:
            node = node.children.setdefault(char, _TrieNode())
        if predicate_id not in node.ids:
            node.ids.add(predicate_id)
            self._entries += 1

    def remove(self, operand: Any, predicate_id: int) -> bool:
        path: list[tuple[_TrieNode, str]] = []
        node = self._root
        for char in operand:
            child = node.children.get(char)
            if child is None:
                return False
            path.append((node, char))
            node = child
        if predicate_id not in node.ids:
            return False
        node.ids.discard(predicate_id)
        self._entries -= 1
        # prune now-empty branches bottom-up
        for parent, char in reversed(path):
            child = parent.children[char]
            if child.ids or child.children:
                break
            del parent.children[char]
        return True

    def match(self, value: Any) -> Iterator[int]:
        if not isinstance(value, str):
            return
        node = self._root
        yield from node.ids  # the empty prefix matches everything
        for char in value:
            node = node.children.get(char)
            if node is None:
                return
            yield from node.ids

    def __len__(self) -> int:
        return self._entries


class SuffixTrie(PredicateIndex):
    """Suffix predicates via a :class:`PrefixTrie` over reversed strings."""

    def __init__(self) -> None:
        self._trie = PrefixTrie()

    def insert(self, operand: Any, predicate_id: int) -> None:
        self._trie.insert(operand[::-1], predicate_id)

    def remove(self, operand: Any, predicate_id: int) -> bool:
        return self._trie.remove(operand[::-1], predicate_id)

    def match(self, value: Any) -> Iterable[int]:
        if not isinstance(value, str):
            return ()
        return self._trie.match(value[::-1])

    def __len__(self) -> int:
        return len(self._trie)


class ContainsScanList(PredicateIndex):
    """Substring predicates, answered by scanning all operands.

    Deliberately linear — documenting that ``contains`` falls outside
    what one-dimensional indexes accelerate (paper §2.1's trade-off
    discussion).
    """

    def __init__(self) -> None:
        self._operands: dict[int, str] = {}

    def insert(self, operand: Any, predicate_id: int) -> None:
        self._operands[predicate_id] = operand

    def remove(self, operand: Any, predicate_id: int) -> bool:
        stored = self._operands.get(predicate_id)
        if stored is None or stored != operand:
            return False
        del self._operands[predicate_id]
        return True

    def match(self, value: Any) -> Iterator[int]:
        if not isinstance(value, str):
            return
        for predicate_id, needle in self._operands.items():
            if needle in value:
                yield predicate_id

    def __len__(self) -> int:
        return len(self._operands)
