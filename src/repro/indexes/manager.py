"""Phase-1 predicate matching: the per-attribute index manager.

"In the first step of event filtering (predicate matching) all predicates
matching an event e are determined ... accomplished by the application of
one-dimensional index structures such as hash tables or B+ trees ...
applied based on operators used in predicates" (paper §3.2).

The :class:`IndexManager` owns one :class:`AttributeIndexes` bundle per
attribute name; each bundle holds the operator-family structures that
attribute's predicates need (created lazily).  ``match(event)`` walks the
event's attributes once — "applying indexes means to evaluate each
attribute only once" (§2.1) — and returns the full set of fulfilled
predicate identifiers, which is the input every engine's phase 2
consumes.  ``match_batch(events)`` is the throughput-oriented entry
point: it memoizes per-attribute probes across the batch so every
distinct ``(attribute, value)`` pair is evaluated once per batch, no
matter how many events repeat it (Zipf workloads repeat heavily).

Operator dispatch is declarative: :data:`OPERATOR_SLOTS` binds each
:class:`~repro.predicates.operators.Operator` to the bundle slot that
stores its predicates, and :data:`VALUE_PROBES` lists the probes
``match`` runs against an event value.  Registering a new operator means
adding one slot entry (and, if it introduces a new structure, one probe)
— ``add``, ``remove`` and ``_match_attribute`` need no changes.

All engines share this phase; the paper's comparison (and ours) is about
what happens *after* it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from ..events.event import Event
from ..predicates.operators import Operator
from ..predicates.predicate import Predicate
from .bplus_tree import BPlusTree
from .hash_index import EqualityIndex, ExistsIndex, MembershipIndex, NotEqualIndex
from .interval_index import IntervalIndex
from .trie import ContainsScanList, PrefixTrie, SuffixTrie

_NUMERIC = "numeric"
_STRING = "string"


def _domain(value) -> str:
    """Order-comparison domain of an operand or event value."""
    return _STRING if isinstance(value, str) else _NUMERIC


class AttributeIndexes:
    """All index structures for one attribute, created on first use."""

    __slots__ = (
        "equality", "not_equal", "membership", "exists",
        "order_trees", "intervals", "prefix", "suffix", "contains",
    )

    def __init__(self) -> None:
        self.equality: EqualityIndex | None = None
        self.not_equal: NotEqualIndex | None = None
        self.membership: MembershipIndex | None = None
        self.exists: ExistsIndex | None = None
        #: {(operator, domain): BPlusTree} for LT/LE/GT/GE predicates
        self.order_trees: dict[tuple[Operator, str], BPlusTree] = {}
        #: {domain: IntervalIndex} for BETWEEN predicates
        self.intervals: dict[str, IntervalIndex] = {}
        self.prefix: PrefixTrie | None = None
        self.suffix: SuffixTrie | None = None
        self.contains: ContainsScanList | None = None

    def is_empty(self) -> bool:
        """Whether every structure is absent or empty."""
        simple = (
            self.equality, self.not_equal, self.membership, self.exists,
            self.prefix, self.suffix, self.contains,
        )
        if any(index is not None and len(index) > 0 for index in simple):
            return False
        if any(len(tree) > 0 for tree in self.order_trees.values()):
            return False
        return all(len(iv) == 0 for iv in self.intervals.values())


# ----------------------------------------------------------------------
# declarative operator -> slot dispatch
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OperatorSlot:
    """Where one operator family stores its predicates.

    ``find`` returns the existing structure for a predicate (or ``None``
    when absent), ``create`` builds and attaches a fresh one, and ``key``
    maps the predicate to the value inserted into / removed from the
    structure.  ``add`` and ``remove`` are generic over these three
    callables.
    """

    find: Callable[[AttributeIndexes, Predicate], object | None]
    create: Callable[["IndexManager", AttributeIndexes, Predicate], object]
    key: Callable[[Predicate], object]


def _attribute_slot(
    attribute: str, factory: Callable[[], object], *, key=lambda p: p.value
) -> OperatorSlot:
    """A slot living in a plain ``AttributeIndexes`` attribute."""

    def find(bundle: AttributeIndexes, predicate: Predicate):
        return getattr(bundle, attribute)

    def create(manager: "IndexManager", bundle: AttributeIndexes, predicate):
        index = factory()
        setattr(bundle, attribute, index)
        return index

    return OperatorSlot(find=find, create=create, key=key)


def _order_slot(operator: Operator) -> OperatorSlot:
    """A slot keyed by (operator, operand domain) in ``order_trees``."""

    def find(bundle: AttributeIndexes, predicate: Predicate):
        return bundle.order_trees.get((operator, _domain(predicate.value)))

    def create(manager: "IndexManager", bundle: AttributeIndexes, predicate):
        tree = BPlusTree(order=manager._btree_order)
        bundle.order_trees[(operator, _domain(predicate.value))] = tree
        return tree

    return OperatorSlot(find=find, create=create, key=lambda p: p.value)


def _interval_slot() -> OperatorSlot:
    """The BETWEEN slot, keyed by the bounds' domain in ``intervals``."""

    def find(bundle: AttributeIndexes, predicate: Predicate):
        return bundle.intervals.get(_domain(predicate.value[0]))

    def create(manager: "IndexManager", bundle: AttributeIndexes, predicate):
        index = IntervalIndex()
        bundle.intervals[_domain(predicate.value[0])] = index
        return index

    return OperatorSlot(find=find, create=create, key=lambda p: p.value)


#: The dispatch registry: one entry per supported operator.  New
#: operators plug in here without touching ``add``/``remove``/matching.
OPERATOR_SLOTS: dict[Operator, OperatorSlot] = {
    Operator.EQ: _attribute_slot("equality", EqualityIndex),
    Operator.NE: _attribute_slot("not_equal", NotEqualIndex),
    Operator.IN: _attribute_slot("membership", MembershipIndex),
    Operator.EXISTS: _attribute_slot("exists", ExistsIndex, key=lambda p: None),
    Operator.LT: _order_slot(Operator.LT),
    Operator.LE: _order_slot(Operator.LE),
    Operator.GT: _order_slot(Operator.GT),
    Operator.GE: _order_slot(Operator.GE),
    Operator.BETWEEN: _interval_slot(),
    Operator.PREFIX: _attribute_slot("prefix", PrefixTrie),
    Operator.SUFFIX: _attribute_slot("suffix", SuffixTrie),
    Operator.CONTAINS: _attribute_slot("contains", ContainsScanList),
}


# ----------------------------------------------------------------------
# declarative value -> probe dispatch (the match side)
# ----------------------------------------------------------------------
# Guards select which probes apply to an event value: every value hits
# the hash-family probes; orderable values (everything but bool) hit the
# order/interval probes; strings additionally hit the trie probes.
_GUARD_ALL = "all"
_GUARD_ORDERED = "ordered"
_GUARD_STRING = "string"


def _simple_probe(attribute: str):
    def probe(bundle: AttributeIndexes, value) -> Iterable[int]:
        index = getattr(bundle, attribute)
        return index.match(value) if index is not None else ()

    return probe


def _order_probe(operator: Operator, bound: str, inclusive: bool):
    # attr < v is fulfilled iff v > value: scan (value, +inf); similarly
    # for the other comparison operators.
    def probe(bundle: AttributeIndexes, value) -> Iterable[int]:
        tree = bundle.order_trees.get((operator, _domain(value)))
        if tree is None:
            return ()
        if bound == "low":
            return tree.range_ids(low=value, include_low=inclusive)
        return tree.range_ids(high=value, include_high=inclusive)

    return probe


def _interval_probe(bundle: AttributeIndexes, value) -> Iterable[int]:
    index = bundle.intervals.get(_domain(value))
    return index.match(value) if index is not None else ()


#: (guard, probe) pairs; ``_match_attribute`` runs the probes whose guard
#: admits the event value and unions their ids.
VALUE_PROBES: tuple[tuple[str, Callable], ...] = (
    (_GUARD_ALL, _simple_probe("equality")),
    (_GUARD_ALL, _simple_probe("not_equal")),
    (_GUARD_ALL, _simple_probe("membership")),
    (_GUARD_ALL, _simple_probe("exists")),
    (_GUARD_ORDERED, _order_probe(Operator.LT, "low", False)),
    (_GUARD_ORDERED, _order_probe(Operator.LE, "low", True)),
    (_GUARD_ORDERED, _order_probe(Operator.GT, "high", False)),
    (_GUARD_ORDERED, _order_probe(Operator.GE, "high", True)),
    (_GUARD_ORDERED, _interval_probe),
    (_GUARD_STRING, _simple_probe("prefix")),
    (_GUARD_STRING, _simple_probe("suffix")),
    (_GUARD_STRING, _simple_probe("contains")),
)

_PROBES_BOOL = tuple(p for g, p in VALUE_PROBES if g == _GUARD_ALL)
_PROBES_NUMERIC = tuple(
    p for g, p in VALUE_PROBES if g in (_GUARD_ALL, _GUARD_ORDERED)
)
_PROBES_STRING = tuple(p for _, p in VALUE_PROBES)

_CACHE_MISS = object()

#: The persistent probe cache is cleared when it exceeds this many
#: distinct ``(attribute, type, value)`` entries — a safety valve for
#: adversarial value streams; the curated workloads stay far below it.
_PROBE_CACHE_LIMIT = 65536


def _probes_for(value) -> tuple[Callable, ...]:
    """The probe tuple admitted by ``value``'s type (bool before int)."""
    if isinstance(value, bool):
        return _PROBES_BOOL
    if isinstance(value, str):
        return _PROBES_STRING
    return _PROBES_NUMERIC


class IndexManager:
    """Registers predicates into per-attribute indexes and matches events."""

    def __init__(self, *, btree_order: int = 64) -> None:
        if btree_order < 3:
            raise ValueError("btree_order must be at least 3")
        self._btree_order = btree_order
        self._attributes: dict[str, AttributeIndexes] = {}
        self._registered: dict[int, Predicate] = {}
        #: bumped on every add/remove; guards the probe cache
        self._version = 0
        #: (attribute, value type, value) -> fulfilled id set (None when
        #: the attribute has no indexes); persists across batches until
        #: the predicate population changes
        self._probe_cache: dict[tuple[str, type, object], set[int] | None] = {}
        self._probe_cache_version = 0
        #: predicate-id -> bit-position layout (lazy; see core.bitset)
        self._layout = None

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def add(self, predicate: Predicate, predicate_id: int) -> None:
        """Index ``predicate`` under ``predicate_id``.

        Idempotent per id: re-adding an id already indexed is a no-op
        (predicates are shared across subscriptions and refcounted by the
        registry; the index holds each live predicate exactly once).
        """
        if predicate_id in self._registered:
            return
        slot = OPERATOR_SLOTS.get(predicate.operator)
        if slot is None:  # pragma: no cover - exhaustive over Operator
            raise NotImplementedError(predicate.operator)
        bundle = self._attributes.setdefault(predicate.attribute, AttributeIndexes())
        index = slot.find(bundle, predicate)
        if index is None:
            index = slot.create(self, bundle, predicate)
        index.insert(slot.key(predicate), predicate_id)
        self._registered[predicate_id] = predicate
        self._version += 1
        self.bit_layout.assign(predicate_id)

    def remove(self, predicate_id: int) -> bool:
        """Drop ``predicate_id`` from its index; returns ``True`` if present."""
        predicate = self._registered.pop(predicate_id, None)
        if predicate is None:
            return False
        slot = OPERATOR_SLOTS[predicate.operator]
        bundle = self._attributes[predicate.attribute]
        slot.find(bundle, predicate).remove(slot.key(predicate), predicate_id)
        if bundle.is_empty():
            del self._attributes[predicate.attribute]
        self._version += 1
        if self._layout is not None:
            self._layout.release(predicate_id)
        return True

    # ------------------------------------------------------------------
    # bit layout (phase-2 kernel support)
    # ------------------------------------------------------------------
    @property
    def bit_layout(self):
        """The manager-owned predicate-id -> bit-position layout.

        Created lazily (the import is deferred: ``core`` imports this
        module at package init, so a top-level import of
        :mod:`repro.core.bitset` would cycle).  Every id this manager
        indexes has a bit here — ``add`` assigns, ``remove`` releases —
        so engines sharing the manager agree on bit positions and
        recycled bits can never sit in a live requirement mask.
        """
        layout = self._layout
        if layout is None:
            from ..core.bitset import BitLayout

            layout = self._layout = BitLayout()
        return layout

    @property
    def version(self) -> int:
        """Mutation counter: bumped by every ``add`` and ``remove``."""
        return self._version

    def _live_probe_cache(self) -> dict[tuple[str, type, object], set[int] | None]:
        """The probe cache, cleared if stale or oversized."""
        if (
            self._probe_cache_version != self._version
            or len(self._probe_cache) > _PROBE_CACHE_LIMIT
        ):
            self._probe_cache = {}
            self._probe_cache_version = self._version
        return self._probe_cache

    # ------------------------------------------------------------------
    # matching (phase 1)
    # ------------------------------------------------------------------
    def match(self, event: Event) -> set[int]:
        """All predicate ids fulfilled by ``event`` — the phase-1 output."""
        fulfilled: set[int] = set()
        attributes = self._attributes
        for attribute, value in event.items():
            bundle = attributes.get(attribute)
            if bundle is None:
                continue
            self._match_attribute(bundle, value, fulfilled)
        return fulfilled

    def match_batch(self, events: Sequence[Event]) -> list[set[int]]:
        """Phase 1 over a batch: one probe per distinct attribute value.

        Events' attribute values are grouped so each per-attribute bundle
        is probed once per distinct ``(attribute, value)`` pair; repeated
        values (heavy under Zipf-skewed workloads) reuse the memoized id
        set.  The cache *persists across batches* and is invalidated by
        any ``add``/``remove`` — the per-pair fulfilled set is a pure
        function of the indexed predicate population, never of the event
        stream.  The cache key includes the value's concrete type because
        matching distinguishes ``True`` from ``1`` (and the string and
        numeric domains) even though they hash equally.
        """
        results: list[set[int]] = []
        cache = self._live_probe_cache()
        attributes = self._attributes
        for event in events:
            fulfilled: set[int] = set()
            for attribute, value in event.items():
                key = (attribute, value.__class__, value)
                hit = cache.get(key, _CACHE_MISS)
                if hit is _CACHE_MISS:
                    bundle = attributes.get(attribute)
                    if bundle is None:
                        hit = None
                    else:
                        hit = set()
                        self._match_attribute(bundle, value, hit)
                    cache[key] = hit
                if hit:
                    fulfilled |= hit
            results.append(fulfilled)
        return results

    def match_batch_bits(self, events: Sequence[Event]):
        """Phase 1 over a batch, in the kernel's column-major bit form.

        Returns a :class:`~repro.core.bitset.FulfilledMatrix`: one
        event-space integer column per fulfilled predicate bit.  The
        probes (and their persistent cache) are shared with
        :meth:`match_batch`; the only difference is the output encoding —
        instead of unioning each pair's id set into per-event Python
        sets, every id's column gets the pair's event mask OR-ed in, one
        int operation per (distinct pair, fulfilled id).
        """
        from ..core.bitset import FulfilledMatrix

        layout = self.bit_layout
        cache = self._live_probe_cache()
        attributes = self._attributes
        # distinct (attribute, type, value) -> mask of events carrying it
        pair_events: dict[tuple[str, type, object], int] = {}
        event_bit = 1
        for event in events:
            for attribute, value in event.items():
                key = (attribute, value.__class__, value)
                prev = pair_events.get(key)
                pair_events[key] = (
                    event_bit if prev is None else prev | event_bit
                )
            event_bit <<= 1
        columns = [0] * layout.capacity
        active_bits: list[int] = []
        bit_of = layout.bits
        for key, event_mask in pair_events.items():
            hit = cache.get(key, _CACHE_MISS)
            if hit is _CACHE_MISS:
                bundle = attributes.get(key[0])
                if bundle is None:
                    hit = None
                else:
                    hit = set()
                    self._match_attribute(bundle, key[2], hit)
                cache[key] = hit
            if hit:
                for pid in hit:
                    bit = bit_of[pid]
                    if not columns[bit]:
                        active_bits.append(bit)
                    columns[bit] |= event_mask
        return FulfilledMatrix(layout, columns, active_bits, len(events))

    def _match_attribute(
        self, bundle: AttributeIndexes, value, fulfilled: set[int]
    ) -> None:
        for probe in _probes_for(value):
            ids = probe(bundle, value)
            if ids:
                fulfilled.update(ids)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of indexed predicates."""
        return len(self._registered)

    def __contains__(self, predicate_id: int) -> bool:
        return predicate_id in self._registered

    def attributes(self) -> Iterator[str]:
        """Attribute names with at least one indexed predicate."""
        return iter(self._attributes)

    def predicate(self, predicate_id: int) -> Predicate:
        """The predicate indexed under ``predicate_id``."""
        return self._registered[predicate_id]
