"""Phase-1 predicate matching: the per-attribute index manager.

"In the first step of event filtering (predicate matching) all predicates
matching an event e are determined ... accomplished by the application of
one-dimensional index structures such as hash tables or B+ trees ...
applied based on operators used in predicates" (paper §3.2).

The :class:`IndexManager` owns one :class:`AttributeIndexes` bundle per
attribute name; each bundle holds the operator-family structures that
attribute's predicates need (created lazily).  ``match(event)`` walks the
event's attributes once — "applying indexes means to evaluate each
attribute only once" (§2.1) — and returns the full set of fulfilled
predicate identifiers, which is the input every engine's phase 2
consumes.

All engines share this phase; the paper's comparison (and ours) is about
what happens *after* it.
"""

from __future__ import annotations

from typing import Iterator

from ..events.event import Event
from ..predicates.operators import Operator
from ..predicates.predicate import Predicate
from .bplus_tree import BPlusTree
from .hash_index import EqualityIndex, ExistsIndex, MembershipIndex, NotEqualIndex
from .interval_index import IntervalIndex
from .trie import ContainsScanList, PrefixTrie, SuffixTrie

_NUMERIC = "numeric"
_STRING = "string"


def _domain(value) -> str:
    """Order-comparison domain of an operand or event value."""
    return _STRING if isinstance(value, str) else _NUMERIC


class AttributeIndexes:
    """All index structures for one attribute, created on first use."""

    __slots__ = (
        "equality", "not_equal", "membership", "exists",
        "order_trees", "intervals", "prefix", "suffix", "contains",
    )

    def __init__(self) -> None:
        self.equality: EqualityIndex | None = None
        self.not_equal: NotEqualIndex | None = None
        self.membership: MembershipIndex | None = None
        self.exists: ExistsIndex | None = None
        #: {(operator, domain): BPlusTree} for LT/LE/GT/GE predicates
        self.order_trees: dict[tuple[Operator, str], BPlusTree] = {}
        #: {domain: IntervalIndex} for BETWEEN predicates
        self.intervals: dict[str, IntervalIndex] = {}
        self.prefix: PrefixTrie | None = None
        self.suffix: SuffixTrie | None = None
        self.contains: ContainsScanList | None = None

    def is_empty(self) -> bool:
        """Whether every structure is absent or empty."""
        simple = (
            self.equality, self.not_equal, self.membership, self.exists,
            self.prefix, self.suffix, self.contains,
        )
        if any(index is not None and len(index) > 0 for index in simple):
            return False
        if any(len(tree) > 0 for tree in self.order_trees.values()):
            return False
        return all(len(iv) == 0 for iv in self.intervals.values())


class IndexManager:
    """Registers predicates into per-attribute indexes and matches events."""

    def __init__(self, *, btree_order: int = 64) -> None:
        if btree_order < 3:
            raise ValueError("btree_order must be at least 3")
        self._btree_order = btree_order
        self._attributes: dict[str, AttributeIndexes] = {}
        self._registered: dict[int, Predicate] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def add(self, predicate: Predicate, predicate_id: int) -> None:
        """Index ``predicate`` under ``predicate_id``.

        Idempotent per id: re-adding an id already indexed is a no-op
        (predicates are shared across subscriptions and refcounted by the
        registry; the index holds each live predicate exactly once).
        """
        if predicate_id in self._registered:
            return
        bundle = self._attributes.setdefault(predicate.attribute, AttributeIndexes())
        operator = predicate.operator
        if operator is Operator.EQ:
            if bundle.equality is None:
                bundle.equality = EqualityIndex()
            bundle.equality.insert(predicate.value, predicate_id)
        elif operator is Operator.NE:
            if bundle.not_equal is None:
                bundle.not_equal = NotEqualIndex()
            bundle.not_equal.insert(predicate.value, predicate_id)
        elif operator is Operator.IN:
            if bundle.membership is None:
                bundle.membership = MembershipIndex()
            bundle.membership.insert(predicate.value, predicate_id)
        elif operator is Operator.EXISTS:
            if bundle.exists is None:
                bundle.exists = ExistsIndex()
            bundle.exists.insert(None, predicate_id)
        elif operator in (Operator.LT, Operator.LE, Operator.GT, Operator.GE):
            key = (operator, _domain(predicate.value))
            tree = bundle.order_trees.get(key)
            if tree is None:
                tree = BPlusTree(order=self._btree_order)
                bundle.order_trees[key] = tree
            tree.insert(predicate.value, predicate_id)
        elif operator is Operator.BETWEEN:
            domain = _domain(predicate.value[0])
            index = bundle.intervals.get(domain)
            if index is None:
                index = IntervalIndex()
                bundle.intervals[domain] = index
            index.insert(predicate.value, predicate_id)
        elif operator is Operator.PREFIX:
            if bundle.prefix is None:
                bundle.prefix = PrefixTrie()
            bundle.prefix.insert(predicate.value, predicate_id)
        elif operator is Operator.SUFFIX:
            if bundle.suffix is None:
                bundle.suffix = SuffixTrie()
            bundle.suffix.insert(predicate.value, predicate_id)
        elif operator is Operator.CONTAINS:
            if bundle.contains is None:
                bundle.contains = ContainsScanList()
            bundle.contains.insert(predicate.value, predicate_id)
        else:  # pragma: no cover - exhaustive over Operator
            raise NotImplementedError(operator)
        self._registered[predicate_id] = predicate

    def remove(self, predicate_id: int) -> bool:
        """Drop ``predicate_id`` from its index; returns ``True`` if present."""
        predicate = self._registered.pop(predicate_id, None)
        if predicate is None:
            return False
        bundle = self._attributes[predicate.attribute]
        operator = predicate.operator
        if operator is Operator.EQ:
            bundle.equality.remove(predicate.value, predicate_id)
        elif operator is Operator.NE:
            bundle.not_equal.remove(predicate.value, predicate_id)
        elif operator is Operator.IN:
            bundle.membership.remove(predicate.value, predicate_id)
        elif operator is Operator.EXISTS:
            bundle.exists.remove(None, predicate_id)
        elif operator in (Operator.LT, Operator.LE, Operator.GT, Operator.GE):
            key = (operator, _domain(predicate.value))
            bundle.order_trees[key].remove(predicate.value, predicate_id)
        elif operator is Operator.BETWEEN:
            domain = _domain(predicate.value[0])
            bundle.intervals[domain].remove(predicate.value, predicate_id)
        elif operator is Operator.PREFIX:
            bundle.prefix.remove(predicate.value, predicate_id)
        elif operator is Operator.SUFFIX:
            bundle.suffix.remove(predicate.value, predicate_id)
        elif operator is Operator.CONTAINS:
            bundle.contains.remove(predicate.value, predicate_id)
        if bundle.is_empty():
            del self._attributes[predicate.attribute]
        return True

    # ------------------------------------------------------------------
    # matching (phase 1)
    # ------------------------------------------------------------------
    def match(self, event: Event) -> set[int]:
        """All predicate ids fulfilled by ``event`` — the phase-1 output."""
        fulfilled: set[int] = set()
        for attribute, value in event.items():
            bundle = self._attributes.get(attribute)
            if bundle is None:
                continue
            self._match_attribute(bundle, value, fulfilled)
        return fulfilled

    def _match_attribute(
        self, bundle: AttributeIndexes, value, fulfilled: set[int]
    ) -> None:
        is_bool = isinstance(value, bool)
        if bundle.equality is not None:
            fulfilled.update(bundle.equality.match(value))
        if bundle.not_equal is not None:
            fulfilled.update(bundle.not_equal.match(value))
        if bundle.membership is not None:
            fulfilled.update(bundle.membership.match(value))
        if bundle.exists is not None:
            fulfilled.update(bundle.exists.match(value))
        if not is_bool:
            domain = _domain(value)
            # attr < v fulfilled iff v > value: scan (value, +inf); similarly
            # for the other comparison operators.
            scans = (
                (Operator.LT, dict(low=value, include_low=False)),
                (Operator.LE, dict(low=value, include_low=True)),
                (Operator.GT, dict(high=value, include_high=False)),
                (Operator.GE, dict(high=value, include_high=True)),
            )
            for operator, bounds in scans:
                tree = bundle.order_trees.get((operator, domain))
                if tree is not None:
                    fulfilled.update(tree.range_ids(**bounds))
            interval_index = bundle.intervals.get(domain)
            if interval_index is not None:
                fulfilled.update(interval_index.match(value))
        if isinstance(value, str):
            if bundle.prefix is not None:
                fulfilled.update(bundle.prefix.match(value))
            if bundle.suffix is not None:
                fulfilled.update(bundle.suffix.match(value))
            if bundle.contains is not None:
                fulfilled.update(bundle.contains.match(value))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of indexed predicates."""
        return len(self._registered)

    def __contains__(self, predicate_id: int) -> bool:
        return predicate_id in self._registered

    def attributes(self) -> Iterator[str]:
        """Attribute names with at least one indexed predicate."""
        return iter(self._attributes)

    def predicate(self, predicate_id: int) -> Predicate:
        """The predicate indexed under ``predicate_id``."""
        return self._registered[predicate_id]
