"""Interval index for BETWEEN predicates.

A ``attr between [low, high]`` predicate is fulfilled by event value
``x`` iff ``low <= x <= high`` — a *stabbing query* over the set of
registered intervals.

Implementation: a **centered interval tree** (static, median-split) with
a lazy rebuild policy.  Insertions land in a small pending buffer and
removals in a tombstone set; once either outgrows a fraction of the tree
the structure is rebuilt from scratch.  This amortized scheme is simpler
and — for registration-heavy, query-heavy pub/sub workloads — as fast in
practice as a fully dynamic augmented tree, while keeping queries
O(log n + answer).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional

from .base import PredicateIndex


class _IntervalNode:
    __slots__ = ("center", "by_low", "by_high", "left", "right")

    def __init__(
        self,
        center: Any,
        by_low: list[tuple[Any, Any, int]],
        by_high: list[tuple[Any, Any, int]],
        left: Optional["_IntervalNode"],
        right: Optional["_IntervalNode"],
    ) -> None:
        self.center = center
        self.by_low = by_low      # intervals containing center, ascending low
        self.by_high = by_high    # same intervals, descending high
        self.left = left
        self.right = right


def _build(intervals: list[tuple[Any, Any, int]]) -> Optional[_IntervalNode]:
    if not intervals:
        return None
    endpoints = sorted(
        {low for low, _, _ in intervals} | {high for _, high, _ in intervals}
    )
    center = endpoints[len(endpoints) // 2]
    here: list[tuple[Any, Any, int]] = []
    lefts: list[tuple[Any, Any, int]] = []
    rights: list[tuple[Any, Any, int]] = []
    for interval in intervals:
        low, high, _ = interval
        if high < center:
            lefts.append(interval)
        elif low > center:
            rights.append(interval)
        else:
            here.append(interval)
    by_low = sorted(here, key=lambda iv: iv[0])
    by_high = sorted(here, key=lambda iv: iv[1], reverse=True)
    return _IntervalNode(center, by_low, by_high, _build(lefts), _build(rights))


def _stab(node: Optional[_IntervalNode], x: Any, out: set[int]) -> None:
    while node is not None:
        if x < node.center:
            for low, _, pid in node.by_low:
                if low > x:
                    break
                out.add(pid)
            node = node.left
        elif x > node.center:
            for _, high, pid in node.by_high:
                if high < x:
                    break
                out.add(pid)
            node = node.right
        else:
            for _, _, pid in node.by_low:
                out.add(pid)
            return


class IntervalIndex(PredicateIndex):
    """Stabbing index over (low, high, predicate_id) intervals.

    Parameters
    ----------
    rebuild_fraction:
        Rebuild once pending inserts plus tombstones exceed this fraction
        of the built tree's interval count (minimum 16 entries before the
        fraction kicks in, so small indexes never thrash).
    """

    def __init__(self, *, rebuild_fraction: float = 0.25) -> None:
        if not 0.0 < rebuild_fraction <= 1.0:
            raise ValueError("rebuild_fraction must be in (0, 1]")
        self._rebuild_fraction = rebuild_fraction
        self._root: Optional[_IntervalNode] = None
        self._built: dict[int, tuple[Any, Any]] = {}
        self._pending: dict[int, tuple[Any, Any]] = {}
        self._tombstones: set[int] = set()

    def insert(self, operand: Any, predicate_id: int) -> None:
        low, high = operand
        if predicate_id in self._tombstones:
            if self._built.get(predicate_id) == (low, high):
                # pure resurrection of the identical interval
                self._tombstones.discard(predicate_id)
                return
            # the registry recycled this id for *different* bounds: the
            # tombstone must keep masking the stale built entry while the
            # new bounds ride the pending buffer until the next rebuild
            self._pending[predicate_id] = (low, high)
            self._maybe_rebuild()
            return
        if predicate_id in self._built or predicate_id in self._pending:
            return
        self._pending[predicate_id] = (low, high)
        self._maybe_rebuild()

    def remove(self, operand: Any, predicate_id: int) -> bool:
        low, high = operand
        if predicate_id in self._pending:
            if self._pending[predicate_id] != (low, high):
                return False
            del self._pending[predicate_id]
            return True
        if predicate_id in self._built and predicate_id not in self._tombstones:
            if self._built[predicate_id] != (low, high):
                return False
            self._tombstones.add(predicate_id)
            self._maybe_rebuild()
            return True
        return False

    def match(self, value: Any) -> Iterable[int]:
        result: set[int] = set()
        try:
            _stab(self._root, value, result)
        except TypeError:
            return ()  # value not comparable with this index's domain
        result -= self._tombstones
        for predicate_id, (low, high) in self._pending.items():
            try:
                if low <= value <= high:
                    result.add(predicate_id)
            except TypeError:
                continue
        return result

    def __len__(self) -> int:
        return len(self._built) - len(self._tombstones) + len(self._pending)

    def _maybe_rebuild(self) -> None:
        churn = len(self._pending) + len(self._tombstones)
        if churn < 16:
            return
        if churn <= self._rebuild_fraction * max(len(self._built), 1):
            return
        self.rebuild()

    def rebuild(self) -> None:
        """Force integration of pending inserts and tombstones."""
        merged = {
            pid: bounds
            for pid, bounds in self._built.items()
            if pid not in self._tombstones
        }
        merged.update(self._pending)
        self._built = merged
        self._pending = {}
        self._tombstones = set()
        self._root = _build([(low, high, pid) for pid, (low, high) in merged.items()])

    def intervals(self) -> Iterator[tuple[Any, Any, int]]:
        """All live (low, high, predicate_id) triples."""
        for pid, (low, high) in self._built.items():
            if pid not in self._tombstones:
                yield (low, high, pid)
        for pid, (low, high) in self._pending.items():
            yield (low, high, pid)
