"""Hash-based indexes for point predicates.

"Point predicates utilise hash tables" (paper §3.2).  Four flavours:

* :class:`EqualityIndex` — ``attr = v`` predicates;
* :class:`NotEqualIndex` — ``attr != v`` predicates (matched by
  complement: all NE predicates minus those whose operand equals the
  event value);
* :class:`MembershipIndex` — ``attr in {v1, ...}`` predicates, indexed
  once per alternative;
* :class:`ExistsIndex` — ``exists(attr)`` predicates, fulfilled by any
  event carrying the attribute.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from .base import PredicateIndex


class EqualityIndex(PredicateIndex):
    """operand value → ids of ``= value`` predicates."""

    def __init__(self) -> None:
        self._buckets: dict[Any, set[int]] = {}
        self._entries = 0

    def insert(self, operand: Any, predicate_id: int) -> None:
        bucket = self._buckets.setdefault(operand, set())
        if predicate_id not in bucket:
            bucket.add(predicate_id)
            self._entries += 1

    def remove(self, operand: Any, predicate_id: int) -> bool:
        bucket = self._buckets.get(operand)
        if bucket is None or predicate_id not in bucket:
            return False
        bucket.discard(predicate_id)
        self._entries -= 1
        if not bucket:
            del self._buckets[operand]
        return True

    def match(self, value: Any) -> Iterable[int]:
        return self._buckets.get(value, ())

    def __len__(self) -> int:
        return self._entries

    def operands(self) -> Iterator[Any]:
        """Distinct indexed operand values."""
        return iter(self._buckets)


class NotEqualIndex(PredicateIndex):
    """Ids of ``!= value`` predicates, matched by complement.

    An event value ``x`` fulfils every NE predicate except those whose
    operand equals ``x`` — one hash lookup plus a set difference.
    """

    def __init__(self) -> None:
        self._buckets: dict[Any, set[int]] = {}
        self._all: set[int] = set()

    def insert(self, operand: Any, predicate_id: int) -> None:
        if predicate_id in self._all:
            return
        self._buckets.setdefault(operand, set()).add(predicate_id)
        self._all.add(predicate_id)

    def remove(self, operand: Any, predicate_id: int) -> bool:
        bucket = self._buckets.get(operand)
        if bucket is None or predicate_id not in bucket:
            return False
        bucket.discard(predicate_id)
        self._all.discard(predicate_id)
        if not bucket:
            del self._buckets[operand]
        return True

    def match(self, value: Any) -> Iterable[int]:
        excluded = self._buckets.get(value)
        if not excluded:
            return set(self._all)
        return self._all - excluded

    def __len__(self) -> int:
        return len(self._all)


class MembershipIndex(PredicateIndex):
    """``attr in {alternatives}`` predicates, indexed per alternative.

    ``insert`` takes the *full* frozenset operand and fans out.
    """

    def __init__(self) -> None:
        self._buckets: dict[Any, set[int]] = {}
        self._ids: set[int] = set()

    def insert(self, operand: Any, predicate_id: int) -> None:
        if predicate_id in self._ids:
            return
        for alternative in operand:
            self._buckets.setdefault(alternative, set()).add(predicate_id)
        self._ids.add(predicate_id)

    def remove(self, operand: Any, predicate_id: int) -> bool:
        if predicate_id not in self._ids:
            return False
        for alternative in operand:
            bucket = self._buckets.get(alternative)
            if bucket is not None:
                bucket.discard(predicate_id)
                if not bucket:
                    del self._buckets[alternative]
        self._ids.discard(predicate_id)
        return True

    def match(self, value: Any) -> Iterable[int]:
        return self._buckets.get(value, ())

    def __len__(self) -> int:
        return len(self._ids)


class ExistsIndex(PredicateIndex):
    """``exists(attr)`` predicates — fulfilled by any value."""

    def __init__(self) -> None:
        self._ids: set[int] = set()

    def insert(self, operand: Any, predicate_id: int) -> None:
        self._ids.add(predicate_id)

    def remove(self, operand: Any, predicate_id: int) -> bool:
        if predicate_id not in self._ids:
            return False
        self._ids.discard(predicate_id)
        return True

    def match(self, value: Any) -> Iterable[int]:
        return set(self._ids)

    def __len__(self) -> int:
        return len(self._ids)
