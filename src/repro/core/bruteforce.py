"""Brute-force (non-indexing) engine — correctness oracle and foil.

Paper §2.1's first category: approaches applying **no index structures**
(Elvin [16], BDD-based filtering [4]).  Every subscription's expression
is evaluated against every event, predicates are re-evaluated per
subscription ("without indexes several evaluations per attribute are
performed"), so matching time grows linearly with the number of
subscriptions with a steep gradient — which is why the paper rules these
out for large subscription counts despite their expressiveness.

In this repository the engine doubles as the *oracle*: its answers are
definitionally correct (direct evaluation of the user's expression), and
every other engine is property-tested against it.
"""

from __future__ import annotations

from typing import AbstractSet, Mapping, Sequence

from ..events.event import Event
from ..indexes.manager import IndexManager
from ..memory.cost_model import DEFAULT_COST_MODEL, CostModel
from ..predicates.registry import PredicateRegistry
from ..subscriptions.subscription import Subscription
from ..subscriptions.tree import SubscriptionTree
from .base import FilterEngine, UnknownSubscriptionError


class BruteForceEngine(FilterEngine):
    """Evaluate every registered subscription directly."""

    name = "brute-force"

    def __init__(
        self,
        *,
        registry: PredicateRegistry | None = None,
        indexes: IndexManager | None = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        super().__init__(registry=registry, indexes=indexes)
        self._cost_model = cost_model
        self._subscriptions: dict[int, Subscription] = {}
        #: compiled trees so match_fulfilled() can run phase-2-only
        #: comparisons in the benchmarks (ids resolved via the registry)
        self._trees: dict[int, SubscriptionTree] = {}

    def register(self, subscription: Subscription) -> None:
        sid = subscription.subscription_id
        if sid in self._subscriptions:
            raise ValueError(f"subscription id {sid} already registered")
        tree = SubscriptionTree.from_expression(
            subscription.expression, self._register_and_index
        )
        self._subscriptions[sid] = subscription
        self._trees[sid] = tree

    def _register_and_index(self, predicate) -> int:
        pid = self.registry.register(predicate)
        self.indexes.add(predicate, pid)
        return pid

    def unregister(self, subscription_id: int) -> None:
        subscription = self._subscriptions.pop(subscription_id, None)
        if subscription is None:
            raise UnknownSubscriptionError(subscription_id)
        tree = self._trees.pop(subscription_id)
        for pid in tree.root.predicate_ids():
            self._release_predicate(pid)

    @property
    def subscription_count(self) -> int:
        return len(self._subscriptions)

    def subscription_ids(self) -> frozenset[int]:
        return frozenset(self._subscriptions)

    def match(self, event: Event) -> set[int]:
        """True non-index matching: evaluate each expression on the event.

        Predicates are re-evaluated once per occurrence per subscription,
        deliberately — that is what "no index structures" costs.
        """
        matched = {
            sid
            for sid, subscription in self._subscriptions.items()
            if subscription.matches(event)
        }
        counters = self._counters
        counters.phase2_calls += 1
        counters.candidates_probed += len(self._subscriptions)
        counters.matches_found += len(matched)
        return matched

    def match_batch(self, events: Sequence[Event]) -> list[set[int]]:
        """Per-event direct evaluation — this engine's ``match`` bypasses
        the shared indexes, so its batch path must too."""
        return [self.match(event) for event in events]

    def match_fulfilled(self, fulfilled_ids: AbstractSet[int]) -> set[int]:
        """Phase-2-only mode: evaluate every tree, no candidate selection."""
        matched = {
            sid
            for sid, tree in self._trees.items()
            if tree.evaluate(fulfilled_ids)
        }
        counters = self._counters
        counters.phase2_calls += 1
        counters.candidates_probed += len(self._trees)
        counters.matches_found += len(matched)
        return matched

    def match_fulfilled_batch(
        self, fulfilled_sets: Sequence[AbstractSet[int]]
    ) -> list[set[int]]:
        """Batch phase-2-only mode: identical assignments evaluate once."""
        memo: dict[frozenset[int], set[int]] = {}
        results: list[set[int]] = []
        counters = self._counters
        for fulfilled_ids in fulfilled_sets:
            key = frozenset(fulfilled_ids)
            cached = memo.get(key)
            if cached is None:
                cached = memo[key] = self.match_fulfilled(key)
            else:
                # memo hit: answered without evaluating any tree
                counters.phase2_calls += 1
                counters.matches_found += len(cached)
            results.append(set(cached))
        return results

    def memory_breakdown(self) -> Mapping[str, int]:
        """Tree bytes under the basic encoding cost model (no tables).

        Non-index approaches "show the best space efficiency" (§2.1):
        subscriptions only, no association or location tables.
        """
        from ..subscriptions.encoding import BasicTreeCodec

        codec = BasicTreeCodec()
        return {
            "subscription_trees": sum(
                codec.encoded_size(tree) for tree in self._trees.values()
            ),
        }
