"""The paper's contribution: the non-canonical filtering engine (§3).

Subscriptions are stored *as registered* — arbitrary Boolean expressions
compiled to compacted n-ary trees and kept in a byte arena.  Matching an
event involves the four data structures of paper Fig. 2:

1. the one-dimensional **indexes** (shared phase 1) produce the set of
   fulfilled predicate ids ``{id(p)}``;
2. the **predicate subscription association table** maps each fulfilled
   predicate to the subscriptions referencing it, yielding the candidate
   set ``{id(s)}``;
3. the **subscription location table** maps each candidate to ``loc(s)``,
   the offset of its encoded tree in the arena;
4. the candidate's **subscription tree** is evaluated directly on the
   encoded bytes with the fulfilled-id set as the truth assignment.

No transformation ever happens, so memory stays linear in the original
expression sizes, and phase-2 work is proportional to the *candidate*
count — not the registered subscription count.
"""

from __future__ import annotations

from typing import AbstractSet, Mapping, Sequence

from ..indexes.manager import IndexManager
from ..memory.cost_model import DEFAULT_COST_MODEL, CostModel
from ..predicates.registry import PredicateRegistry
from ..subscriptions.compiler import (
    MODE_ANY,
    MODE_DNF,
    MODE_GROUPS,
    CompiledTree,
    compile_tree,
)
from ..events.event import Event
from ..subscriptions.encoding import BasicTreeCodec, TreeArena, VarintTreeCodec
from ..subscriptions.subscription import Subscription
from ..subscriptions.tree import SubscriptionTree
from .base import FilterEngine, UnknownSubscriptionError
from .bitset import FulfilledMatrix, popcount


class NonCanonicalEngine(FilterEngine):
    """Direct filtering of arbitrary Boolean subscriptions.

    Parameters
    ----------
    codec:
        ``"basic"`` (the paper's fixed-width §3.3 encoding, default) or
        ``"varint"`` (the §5 "improved encoding" future-work variant).
    evaluation:
        ``"compiled"`` (default): trees are compiled at registration into
        set-intersection match forms evaluated with C-level set
        operations, mirroring the per-access cost the paper's C prototype
        pays for encoded-tree traversal (see
        :mod:`repro.subscriptions.compiler`).  ``"encoded"``: evaluate
        the byte encoding directly (ablation A1).  Either way the byte
        arena is maintained and is what the memory model charges.
    selectivity:
        Optional mapping ``predicate_id -> fulfilment probability``.
        When provided, registered trees are reordered for short-circuit
        evaluation (ablation A3).
    registry / indexes:
        See :class:`~repro.core.base.FilterEngine`.
    """

    name = "non-canonical"

    def __init__(
        self,
        *,
        codec: str = "basic",
        evaluation: str = "compiled",
        selectivity: Mapping[int, float] | None = None,
        registry: PredicateRegistry | None = None,
        indexes: IndexManager | None = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        super().__init__(registry=registry, indexes=indexes)
        if codec == "basic":
            self._codec = BasicTreeCodec()
        elif codec == "varint":
            self._codec = VarintTreeCodec()
        else:
            raise ValueError(f"unknown codec {codec!r}; use 'basic' or 'varint'")
        if evaluation not in ("compiled", "encoded"):
            raise ValueError(
                f"unknown evaluation mode {evaluation!r}; "
                "use 'compiled' or 'encoded'"
            )
        self._evaluation = evaluation
        self._selectivity = dict(selectivity) if selectivity else None
        self._cost_model = cost_model
        self._arena = TreeArena()
        #: predicate subscription association table: id(p) -> {id(s)}
        self._association: dict[int, set[int]] = {}
        #: subscription location table: id(s) -> loc(s) = (offset, width)
        self._locations: dict[int, tuple[int, int]] = {}
        #: id(s) -> compiled match form (evaluation="compiled" only)
        self._compiled: dict[int, CompiledTree] = {}
        #: id(s) -> compiled form with predicate ids replaced by their
        #: bit positions in the index manager's layout (the batch
        #: kernel's requirement masks; evaluation="compiled" only)
        self._bit_forms: dict[int, CompiledTree] = {}
        #: subscriptions that match under the *empty* truth assignment
        #: (NOT-rooted expressions): they can match events fulfilling
        #: none of their predicates, so candidate selection via the
        #: association table alone would miss them.
        self._empty_assignment_matchers: set[int] = set()
        self._subscribers: dict[int, str | None] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, subscription: Subscription) -> None:
        """Compile, encode and index ``subscription`` — no transformation."""
        sid = subscription.subscription_id
        if sid in self._locations:
            raise ValueError(f"subscription id {sid} already registered")
        tree = SubscriptionTree.from_expression(
            subscription.expression, self._register_and_index
        )
        if self._selectivity is not None:
            tree = tree.reordered_by_selectivity(self._selectivity)
        for pid in tree.predicate_ids():
            self._association.setdefault(pid, set()).add(sid)
        offset, width = self._arena.add(self._codec.encode(tree))
        self._locations[sid] = (offset, width)
        if self._evaluation == "compiled":
            compiled = compile_tree(tree.root)
            self._compiled[sid] = compiled
            self._bit_forms[sid] = self._compile_bit_form(compiled)
        if tree.evaluate(frozenset()):
            self._empty_assignment_matchers.add(sid)
        self._subscribers[sid] = subscription.subscriber

    def _register_and_index(self, predicate) -> int:
        pid = self.registry.register(predicate)
        self.indexes.add(predicate, pid)
        return pid

    def _compile_bit_form(self, compiled: CompiledTree) -> CompiledTree:
        """The compiled form with predicate ids mapped to layout bits.

        Built at registration, when every referenced predicate is live
        in the shared index manager (so has a stable bit).  Closure
        payloads evaluate on id sets and pass through unchanged.
        """
        mode, payload = compiled
        bit_of = self.indexes.bit_layout.bits
        if mode == MODE_ANY:
            return mode, tuple(bit_of[pid] for pid in payload)
        if mode in (MODE_GROUPS, MODE_DNF):
            return mode, tuple(tuple(bit_of[pid] for pid in group) for group in payload)
        return compiled

    def unregister(self, subscription_id: int) -> None:
        """Remove a subscription and clean every table it touches.

        This is the operation the paper argues canonical engines handle
        poorly; here the encoded tree itself lists the predicate ids to
        clean up, so no table scan is needed (§3.2 footnote 1).
        """
        location = self._locations.pop(subscription_id, None)
        if location is None:
            raise UnknownSubscriptionError(subscription_id)
        offset, width = location
        predicate_ids = set(
            self._codec.predicate_ids(self._arena.buffer, offset, width)
        )
        occurrences = list(self._codec.predicate_ids(self._arena.buffer, offset, width))
        self._arena.free(offset, width)
        for pid in predicate_ids:
            referencing = self._association.get(pid)
            if referencing is not None:
                referencing.discard(subscription_id)
                if not referencing:
                    del self._association[pid]
        # The registry refcounts one reference per *occurrence* at
        # registration (register() was called once per leaf), so release
        # symmetrically.
        for pid in occurrences:
            self._release_predicate(pid)
        self._compiled.pop(subscription_id, None)
        self._bit_forms.pop(subscription_id, None)
        self._empty_assignment_matchers.discard(subscription_id)
        del self._subscribers[subscription_id]
        if self._arena.needs_compaction():
            relocations = self._arena.compact()
            self._locations = {
                sid: (relocations[off], w)
                for sid, (off, w) in self._locations.items()
            }

    @property
    def subscription_count(self) -> int:
        return len(self._locations)

    def subscription_ids(self) -> frozenset[int]:
        return frozenset(self._locations)

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def match_fulfilled(self, fulfilled_ids: AbstractSet[int]) -> set[int]:
        """Candidate selection + subscription tree evaluation (paper §3.2).

        Candidate collection walks the smaller side of the association
        join: normally the fulfilled ids, but when this engine holds
        fewer associations than the event fulfilled predicates — the
        sharded runtime's small shards — the table itself.  Either walk
        produces the same candidate set; the small-table form is what
        keeps a pruned shard's probe cost proportional to the shard,
        not to the event.
        """
        association = self._association
        candidates: set[int] = set(self._empty_assignment_matchers)
        if len(association) < len(fulfilled_ids):
            for pid, referencing in association.items():
                if pid in fulfilled_ids:
                    candidates.update(referencing)
        else:
            for pid in fulfilled_ids:
                referencing = association.get(pid)
                if referencing is not None:
                    candidates.update(referencing)
        return self._match_candidates(candidates, fulfilled_ids)

    def match_fulfilled_batch(
        self, fulfilled_sets: Sequence[AbstractSet[int]]
    ) -> list[set[int]]:
        """Batch phase 2: one candidate buffer, compiled forms looked up
        through hoisted locals, reused across every event in the batch.
        Candidate collection joins through the smaller side, as in
        :meth:`match_fulfilled`."""
        association = self._association
        empty_matchers = self._empty_assignment_matchers
        match_candidates = self._match_candidates
        association_size = len(association)
        candidates: set[int] = set()
        results: list[set[int]] = []
        for fulfilled_ids in fulfilled_sets:
            candidates.clear()
            candidates.update(empty_matchers)
            if association_size < len(fulfilled_ids):
                for pid, referencing in association.items():
                    if pid in fulfilled_ids:
                        candidates.update(referencing)
            else:
                for pid in fulfilled_ids:
                    referencing = association.get(pid)
                    if referencing is not None:
                        candidates.update(referencing)
            results.append(match_candidates(candidates, fulfilled_ids))
        return results

    def match_batch(self, events: Sequence[Event]) -> list[set[int]]:
        """Route real batches through the bit-packed kernel (PR 8).

        Single events and the encoded-evaluation ablation keep the set
        path; compiled batches take phase 1 in column form and the
        matrix phase 2 below.
        """
        events = list(events)
        if len(events) <= 1 or self._evaluation != "compiled":
            return super().match_batch(events)
        return self.match_fulfilled_matrix(self.indexes.match_batch_bits(events))

    def match_fulfilled_matrix(self, matrix: FulfilledMatrix) -> list[set[int]]:
        """Batch phase 2 on the bit kernel: one mask test per candidate.

        Candidate selection runs once over the batch's fulfilled bits;
        each candidate's compiled form is then evaluated in *event
        space* — a group of alternative predicates ORs its bit columns,
        conjunction ANDs the group masks — so one pass over a
        candidate's bit form answers "which events match it" for the
        whole batch (the per-event set-intersection probes collapse
        into word-wise mask-subset tests).  ``candidates_probed`` ticks
        once per candidate per *batch*; ``matches_found`` still counts
        (event, subscription) pairs, identical to the set paths.
        """
        if self._evaluation != "compiled":
            return super().match_fulfilled_matrix(matrix)
        event_count = matrix.event_count
        if event_count == 0:
            return []
        all_events = matrix.all_events_mask
        columns = matrix.columns
        association = self._association
        pids = matrix.layout.pids
        candidates: set[int] = set(self._empty_assignment_matchers)
        for bit in matrix.active_bits:
            referencing = association.get(pids[bit])
            if referencing is not None:
                candidates |= referencing
        bit_forms = self._bit_forms
        results: list[set[int]] = [set() for _ in range(event_count)]
        id_sets: list[set[int]] | None = None
        matched_total = 0
        for sid in candidates:
            mode, payload = bit_forms[sid]
            if mode == MODE_GROUPS:
                hits = all_events
                for group in payload:
                    acc = 0
                    for bit in group:
                        acc |= columns[bit]
                    hits &= acc
                    if not hits:
                        break
            elif mode == MODE_ANY:
                hits = 0
                for bit in payload:
                    hits |= columns[bit]
            elif mode == MODE_DNF:
                hits = 0
                for group in payload:
                    acc = all_events
                    for bit in group:
                        acc &= columns[bit]
                        if not acc:
                            break
                    hits |= acc
                    if hits == all_events:
                        break
            else:  # closure: evaluate on per-event id sets (rare)
                if id_sets is None:
                    id_sets = matrix.to_id_sets()
                hits = 0
                event_bit = 1
                for index in range(event_count):
                    if payload(id_sets[index]):
                        hits |= event_bit
                    event_bit <<= 1
            if hits:
                matched_total += popcount(hits)
                while hits:
                    low = hits & -hits
                    results[low.bit_length() - 1].add(sid)
                    hits ^= low
        counters = self._counters
        counters.phase2_calls += event_count
        counters.candidates_probed += len(candidates)
        counters.matches_found += matched_total
        return results

    def _match_candidates(
        self, candidates: AbstractSet[int], fulfilled_ids: AbstractSet[int]
    ) -> set[int]:
        """Evaluate each candidate's subscription tree on the assignment.

        Both the per-event and the batch path funnel through here, so
        this is also where the work counters tick: probes are candidate
        trees evaluated — the paper's key quantity.
        """
        counters = self._counters
        counters.phase2_calls += 1
        counters.candidates_probed += len(candidates)
        matched: set[int] = set()
        if self._evaluation == "compiled":
            compiled = self._compiled
            for sid in candidates:
                mode, payload = compiled[sid]
                if mode == MODE_GROUPS:
                    for group in payload:
                        if group.isdisjoint(fulfilled_ids):
                            break
                    else:
                        matched.add(sid)
                elif mode == MODE_ANY:
                    if not payload.isdisjoint(fulfilled_ids):
                        matched.add(sid)
                elif mode == MODE_DNF:
                    for group in payload:
                        if group <= fulfilled_ids:
                            matched.add(sid)
                            break
                elif payload(fulfilled_ids):
                    matched.add(sid)
            counters.matches_found += len(matched)
            return matched
        buffer = self._arena.buffer
        locations = self._locations
        evaluate = self._codec.evaluate
        for sid in candidates:
            offset, width = locations[sid]
            if evaluate(buffer, offset, width, fulfilled_ids):
                matched.add(sid)
        counters.matches_found += len(matched)
        return matched

    def candidates_for(self, fulfilled_ids: AbstractSet[int]) -> set[int]:
        """The candidate subscription set for a fulfilled-id set (for tests
        and instrumentation)."""
        candidates: set[int] = set(self._empty_assignment_matchers)
        for pid in fulfilled_ids:
            referencing = self._association.get(pid)
            if referencing is not None:
                candidates.update(referencing)
        return candidates

    def subscriber_of(self, subscription_id: int) -> str | None:
        """The subscriber registered for ``subscription_id``."""
        try:
            return self._subscribers[subscription_id]
        except KeyError:
            raise UnknownSubscriptionError(subscription_id) from None

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    def memory_breakdown(self) -> Mapping[str, int]:
        """Bytes per structure under the paper's cost model.

        ``subscription_trees`` is the *live* arena size — the actual
        encoded bytes, which is exactly what the paper's §3.3 prototype
        allocates.
        """
        model = self._cost_model
        reference_count = sum(len(s) for s in self._association.values())
        return {
            "subscription_trees": self._arena.live_bytes,
            "association_table": model.association_table_bytes(
                len(self._association), reference_count
            ),
            "location_table": model.location_table_bytes(len(self._locations)),
        }
