"""Engine interface shared by all matching algorithms.

Every engine implements the same two-phase contract:

* **phase 1 (predicate matching)** is delegated to a shared
  :class:`~repro.indexes.manager.IndexManager` — identical across
  engines, exactly as in the paper's experiments ("the first phases use
  the same indexes in the same way in both approaches", §4);
* **phase 2 (subscription matching)** is engine-specific:
  :meth:`FilterEngine.match_fulfilled` consumes the set of fulfilled
  predicate identifiers and returns matching subscription identifiers.

``match(event)`` composes the two.  Benchmarks time
:meth:`match_fulfilled` in isolation, which is what the paper's Fig. 3
plots.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import AbstractSet, Iterable, Mapping, Sequence

from ..events.event import Event
from ..indexes.manager import IndexManager
from ..predicates.registry import PredicateRegistry
from ..subscriptions.subscription import Subscription
from .bitset import FulfilledMatrix


class UnsupportedSubscriptionError(ValueError):
    """Raised when an engine cannot register a subscription natively.

    The counting engines raise this for expressions whose DNF contains
    negative literals (predicates without a single-predicate complement
    under NOT) — the classical conjunctive pipeline simply cannot encode
    them (paper §2).
    """


class UnknownSubscriptionError(KeyError):
    """Raised when unregistering a subscription id that is not registered."""


@dataclass
class MatchCounters:
    """Phase-2 work counters — *why* a wall-clock number is what it is.

    The paper's §4.1 analysis explains its curves through candidate
    counts ("the different handling of non-candidate subscriptions"),
    so the benchmark trajectory records these alongside every timing:

    * ``phase2_calls`` — phase-2 evaluations answered (one per event;
      memoized batch paths count cache hits here too, since an answer
      was produced);
    * ``candidates_probed`` — subscription units actually examined:
      candidate trees evaluated (non-canonical/paged), clause slots
      compared (counting engines), tree nodes visited (matching tree),
      expressions evaluated (brute force).  Memo hits probe nothing;
    * ``matches_found`` — matching subscription ids returned;
    * ``shards_probed`` / ``shards_pruned`` — per-event shard fan-out of
      the sharded runtime: how many shards an event was dispatched to
      versus skipped outright by the routed partitioner's region digest.
      Zero on unsharded engines; ``probed + pruned`` per event equals
      the shard count, so the pair explains *why* routed sharding wins.

    Counters accumulate monotonically; :meth:`reset` zeroes them.  They
    measure *in-process* work only — batches routed to the sharded
    runtime's fork workers do their probing in the worker processes,
    invisible here (shard fan-out is counted in the parent either way:
    the dispatch decision is the parent's).
    """

    phase2_calls: int = 0
    candidates_probed: int = 0
    matches_found: int = 0
    shards_probed: int = 0
    shards_pruned: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.phase2_calls = 0
        self.candidates_probed = 0
        self.matches_found = 0
        self.shards_probed = 0
        self.shards_pruned = 0

    def snapshot(self) -> dict[str, int]:
        """The counters as a plain dict (stable keys, copy-safe)."""
        return {
            "phase2_calls": self.phase2_calls,
            "candidates_probed": self.candidates_probed,
            "matches_found": self.matches_found,
            "shards_probed": self.shards_probed,
            "shards_pruned": self.shards_pruned,
        }

    def __add__(self, other: "MatchCounters") -> "MatchCounters":
        if not isinstance(other, MatchCounters):
            return NotImplemented
        return MatchCounters(
            phase2_calls=self.phase2_calls + other.phase2_calls,
            candidates_probed=self.candidates_probed + other.candidates_probed,
            matches_found=self.matches_found + other.matches_found,
            shards_probed=self.shards_probed + other.shards_probed,
            shards_pruned=self.shards_pruned + other.shards_pruned,
        )


class FilterEngine(abc.ABC):
    """Base class of the matching engines.

    Parameters
    ----------
    registry:
        Shared predicate registry; a private one is created when omitted.
    indexes:
        Shared phase-1 index manager; a private one is created when
        omitted.
    """

    #: Human-readable engine name used by reports and benchmarks.
    name: str = "abstract"

    def __init__(
        self,
        *,
        registry: PredicateRegistry | None = None,
        indexes: IndexManager | None = None,
    ) -> None:
        self.registry = registry if registry is not None else PredicateRegistry()
        self.indexes = indexes if indexes is not None else IndexManager()
        self._counters = MatchCounters()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def register(self, subscription: Subscription) -> None:
        """Register a subscription for matching."""

    @abc.abstractmethod
    def unregister(self, subscription_id: int) -> None:
        """Remove a subscription; raises :class:`UnknownSubscriptionError`."""

    @property
    @abc.abstractmethod
    def subscription_count(self) -> int:
        """Number of registered *original* subscriptions."""

    @property
    def stored_subscription_count(self) -> int:
        """Number of internally stored subscription units.

        Equals :attr:`subscription_count` for non-transforming engines;
        for canonical engines it is the post-DNF clause count — the
        "multiple of the number of original registered subscriptions"
        the paper's §2.2 warns about.
        """
        return self.subscription_count

    @abc.abstractmethod
    def subscription_ids(self) -> frozenset[int]:
        """Ids of the registered *original* subscriptions.

        The introspection surface the sharded runtime partitions over;
        ``len(subscription_ids()) == subscription_count`` always holds.
        """

    @property
    def counters(self) -> MatchCounters:
        """This engine's phase-2 work counters (see :class:`MatchCounters`).

        The sharded engine overrides this with the sum over its shards.
        """
        return self._counters

    def reset_counters(self) -> None:
        """Zero the phase-2 work counters (state is untouched)."""
        self._counters.reset()

    def stats(self) -> dict:
        """One engine's counters as plain data (broker/shard reporting).

        Includes the :class:`MatchCounters` keys (``phase2_calls``,
        ``candidates_probed``, ``matches_found``) so the benchmark
        trajectory can explain *why* a wall-clock number moved.
        """
        return {
            "engine": self.name,
            "subscriptions": self.subscription_count,
            "stored_subscriptions": self.stored_subscription_count,
            "memory_bytes": self.memory_bytes(),
            **self.counters.snapshot(),
        }

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def match(self, event: Event) -> set[int]:
        """Full two-phase matching: ids of subscriptions ``event`` fulfils."""
        return self.match_fulfilled(self.indexes.match(event))

    @abc.abstractmethod
    def match_fulfilled(self, fulfilled_ids: AbstractSet[int]) -> set[int]:
        """Phase 2 only: match given the fulfilled predicate id set."""

    def match_batch(self, events: Sequence[Event]) -> list[set[int]]:
        """Two-phase matching over a batch of events.

        One phase-1 invocation (:meth:`IndexManager.match_batch`, which
        memoizes repeated attribute values across the batch) feeds one
        phase-2 batch call.  Result ``i`` equals ``match(events[i])`` —
        engines override :meth:`match_fulfilled_batch` for throughput,
        never for different answers.
        """
        return self.match_fulfilled_batch(self.indexes.match_batch(list(events)))

    def match_fulfilled_batch(
        self, fulfilled_sets: Sequence[AbstractSet[int]]
    ) -> list[set[int]]:
        """Phase 2 over a batch of fulfilled predicate id sets.

        The default delegates to :meth:`match_fulfilled` per event, so
        every engine is batch-correct by construction; engines override
        it to amortize per-event work (candidate buffers, vector
        zeroing, page reads) across the batch.
        """
        return [self.match_fulfilled(fulfilled) for fulfilled in fulfilled_sets]

    def match_fulfilled_matrix(self, matrix: FulfilledMatrix) -> list[set[int]]:
        """Phase 2 over a column-major fulfilled-bit matrix.

        The bit-packed sibling of :meth:`match_fulfilled_batch` (see
        :mod:`repro.core.bitset`).  The default expands the matrix back
        to per-event id sets and delegates, so every engine accepts a
        matrix; the bitmap-kernel engines (counting, counting-variant,
        non-canonical) override it with transposed word-wise evaluation
        — and their ``match_batch`` feeds it from
        :meth:`IndexManager.match_batch_bits`.  Result ``i`` always
        equals ``match_fulfilled`` of event ``i``'s fulfilled set;
        overrides change throughput and counter attribution (per-batch
        instead of per-event probe units), never answers.
        """
        return self.match_fulfilled_batch(matrix.to_id_sets())

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def memory_breakdown(self) -> Mapping[str, int]:
        """Bytes per engine data structure under the paper's cost model.

        Phase-1 index memory is excluded — it is identical across
        engines by construction and would only blur the comparison the
        paper makes about phase-2 structures.
        """

    def memory_bytes(self) -> int:
        """Total phase-2 memory under the paper's cost model."""
        return sum(self.memory_breakdown().values())

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release external resources; a no-op for in-memory engines.

        The paged engine closes (and, when owned, deletes) its disk
        store; the sharded engine closes its executor and shards.
        """

    # ------------------------------------------------------------------
    # helpers shared by concrete engines
    # ------------------------------------------------------------------
    def _register_predicates(self, predicates: Iterable) -> list[int]:
        """Register predicates in registry + indexes; return their ids."""
        ids = []
        for predicate in predicates:
            pid = self.registry.register(predicate)
            self.indexes.add(predicate, pid)
            ids.append(pid)
        return ids

    def _release_predicate(self, predicate_id: int) -> None:
        """Drop one reference; de-index the predicate when retired."""
        if self.registry.release(predicate_id):
            self.indexes.remove(predicate_id)
