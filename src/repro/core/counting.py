"""The counting algorithm and its candidate-driven variant (baselines).

The counting algorithm [15, 17] is the classical conjunctive matcher:
for each (transformed) subscription it stores only *how many* predicates
the subscription has; phase 2 increments a per-subscription hit counter
for every fulfilled predicate and declares a match when the counter
reaches the stored count.

Arbitrary Boolean subscriptions must first be rewritten into DNF and
every clause registered as a separate conjunctive subscription — "these
algorithms treat disjunctions as several subscriptions" (paper §2).
:class:`CountingEngine` implements exactly that pipeline, with the
memory-friendly array layout of paper §3.3 (1-byte hit and count vector
entries, at most 255 predicates per clause, following [2]).

:class:`CountingVariantEngine` is the paper's §3.3 improvement: instead
of comparing the whole hit vector against the whole count vector, it
records the clauses touched by fulfilled predicates and compares only
those — making phase 2 depend on the number of matching predicates
rather than the total number of subscriptions.

Unsubscription (paper §2.1/§3.3): the memory-friendly layout does *not*
keep per-subscription predicate lists, so removing a subscription
requires scanning the entire association table.  Constructing the engine
with ``support_unsubscription=True`` adds the per-subscription lists
(costing memory) and makes removal direct; ablation A5 measures the
difference.
"""

from __future__ import annotations

from typing import AbstractSet, Mapping, Sequence

from ..events.event import Event
from ..indexes.manager import IndexManager
from ..memory.cost_model import DEFAULT_COST_MODEL, CostModel
from ..predicates.predicate import Predicate
from ..predicates.registry import PredicateRegistry
from ..subscriptions.normal_forms import canonical_dnf
from ..subscriptions.subscription import Subscription
from .base import (
    FilterEngine,
    UnknownSubscriptionError,
    UnsupportedSubscriptionError,
)
from .bitset import FulfilledMatrix

MAX_CLAUSE_PREDICATES = 255


class CountingEngine(FilterEngine):
    """DNF transformation + classical counting (full-vector comparison).

    Parameters
    ----------
    support_unsubscription:
        Keep per-subscription predicate lists so :meth:`unregister` is
        direct.  Off by default — the paper's memory-friendly baseline
        omits them; unsubscription then falls back to a full association
        table scan.
    max_clauses:
        Safety cap forwarded to the DNF transformation.
    complement_operators:
        Negate comparisons by operator flipping during the DNF rewrite
        (``NOT a > 5`` → ``a <= 5``).  Lets the conjunctive pipeline
        accept NOT over comparisons, but is only sound when subscribed
        attributes are guaranteed present on events (see
        :func:`repro.subscriptions.normal_forms.to_nnf`).  Off by
        default; NOT-bearing subscriptions are then rejected with
        :class:`UnsupportedSubscriptionError`.
    """

    name = "counting"

    def __init__(
        self,
        *,
        support_unsubscription: bool = False,
        max_clauses: int = 4_000_000,
        complement_operators: bool = False,
        registry: PredicateRegistry | None = None,
        indexes: IndexManager | None = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        super().__init__(registry=registry, indexes=indexes)
        self._support_unsubscription = support_unsubscription
        self._max_clauses = max_clauses
        self._complement_operators = complement_operators
        self._cost_model = cost_model
        #: subscription-predicate count vector (1 byte per clause; 0 = free slot)
        self._counts = bytearray()
        #: hit vector (1 byte per clause, zeroed between events)
        self._hits = bytearray()
        #: clause index -> original subscription id (0 = free slot)
        self._clause_subscription: list[int] = []
        #: clause index -> required predicate bit positions (the clause's
        #: requirement mask in the index manager's bit layout; () = free)
        self._clause_bits: list[tuple[int, ...]] = []
        self._free_clause_slots: list[int] = []
        #: association table: id(p) -> [clause indexes]
        self._association: dict[int, list[int]] = {}
        #: original id(s) -> clause bookkeeping (only with unsubscription support)
        self._subscription_clauses: dict[int, list[tuple[int, tuple[int, ...]]]] = {}
        self._original_ids: set[int] = set()
        self._live_clause_count = 0
        self._subscribers: dict[int, str | None] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, subscription: Subscription) -> None:
        """Transform to DNF and register every clause separately."""
        sid = subscription.subscription_id
        if sid in self._original_ids:
            raise ValueError(f"subscription id {sid} already registered")
        dnf = canonical_dnf(
            subscription.expression,
            max_clauses=self._max_clauses,
            complement_operators=self._complement_operators,
        )
        clause_records: list[tuple[int, tuple[int, ...]]] = []
        prepared: list[tuple[frozenset[Predicate], int]] = []
        for clause in dnf:
            if clause.has_negative_literals():
                raise UnsupportedSubscriptionError(
                    "DNF clause contains a negative literal over an operator "
                    "without a complement; the conjunctive counting pipeline "
                    f"cannot register it: {clause!r}"
                )
            predicates = frozenset(clause.positive_predicates())
            if len(predicates) > MAX_CLAUSE_PREDICATES:
                raise UnsupportedSubscriptionError(
                    f"clause has {len(predicates)} predicates; the 1-byte "
                    f"counter layout caps at {MAX_CLAUSE_PREDICATES} (§3.3)"
                )
            prepared.append((predicates, len(predicates)))
        layout = self.indexes.bit_layout
        for predicates, count in prepared:
            clause_index = self._allocate_clause(count, sid)
            pids = []
            for predicate in predicates:
                pid = self.registry.register(predicate)
                self.indexes.add(predicate, pid)
                self._association.setdefault(pid, []).append(clause_index)
                pids.append(pid)
            self._clause_bits[clause_index] = layout.bits_of(pids)
            clause_records.append((clause_index, tuple(pids)))
        self._original_ids.add(sid)
        self._subscribers[sid] = subscription.subscriber
        if self._support_unsubscription:
            self._subscription_clauses[sid] = clause_records

    def _allocate_clause(self, count: int, sid: int) -> int:
        if self._free_clause_slots:
            index = self._free_clause_slots.pop()
            self._counts[index] = count
            self._clause_subscription[index] = sid
        else:
            index = len(self._counts)
            self._counts.append(count)
            self._hits.append(0)
            self._clause_subscription.append(sid)
            self._clause_bits.append(())
        self._live_clause_count += 1
        return index

    # ------------------------------------------------------------------
    # unsubscription
    # ------------------------------------------------------------------
    def unregister(self, subscription_id: int) -> None:
        """Remove a subscription (all its clauses).

        With ``support_unsubscription`` the per-subscription lists drive
        the cleanup; without them this degrades to the full association
        table scan the paper's §3.2 footnote describes.
        """
        if subscription_id not in self._original_ids:
            raise UnknownSubscriptionError(subscription_id)
        if self._support_unsubscription:
            records = self._subscription_clauses.pop(subscription_id)
            for clause_index, pids in records:
                for pid in pids:
                    clauses = self._association.get(pid)
                    if clauses is not None:
                        clauses.remove(clause_index)
                        if not clauses:
                            del self._association[pid]
                    self._release_predicate(pid)
                self._free_clause(clause_index)
        else:
            self._unregister_by_scan(subscription_id)
        self._original_ids.discard(subscription_id)
        del self._subscribers[subscription_id]

    def _unregister_by_scan(self, subscription_id: int) -> None:
        """The expensive path: walk the whole association table."""
        doomed = {
            index
            for index, sid in enumerate(self._clause_subscription)
            if sid == subscription_id and self._counts[index] != 0
        }
        released: list[int] = []
        for pid in list(self._association):
            clauses = self._association[pid]
            kept = [c for c in clauses if c not in doomed]
            removed = len(clauses) - len(kept)
            if removed:
                released.extend([pid] * removed)
                if kept:
                    self._association[pid] = kept
                else:
                    del self._association[pid]
        for pid in released:
            self._release_predicate(pid)
        for clause_index in doomed:
            self._free_clause(clause_index)

    def _free_clause(self, clause_index: int) -> None:
        self._counts[clause_index] = 0
        self._hits[clause_index] = 0
        self._clause_subscription[clause_index] = 0
        self._clause_bits[clause_index] = ()  # no stale-bit resurrection
        self._free_clause_slots.append(clause_index)
        self._live_clause_count -= 1

    # ------------------------------------------------------------------
    # counts
    # ------------------------------------------------------------------
    @property
    def subscription_count(self) -> int:
        return len(self._original_ids)

    def subscription_ids(self) -> frozenset[int]:
        return frozenset(self._original_ids)

    @property
    def stored_subscription_count(self) -> int:
        """Live post-transformation clause count."""
        return self._live_clause_count

    @property
    def supports_unsubscription(self) -> bool:
        """Whether per-subscription predicate lists are kept."""
        return self._support_unsubscription

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def match_fulfilled(self, fulfilled_ids: AbstractSet[int]) -> set[int]:
        """Classical counting: increment hits, compare *every* clause.

        The comparison loop runs over the full clause range regardless of
        how many predicates matched — this is the linear-in-N behaviour
        Fig. 3 shows.
        """
        hits = self._hits
        association = self._association
        for pid in fulfilled_ids:
            clauses = association.get(pid)
            if clauses is not None:
                for clause_index in clauses:
                    hits[clause_index] += 1
        matched: set[int] = set()
        clause_subscription = self._clause_subscription
        for clause_index, required in enumerate(self._counts):
            if required and hits[clause_index] == required:
                matched.add(clause_subscription[clause_index])
        hits[:] = bytes(len(hits))  # zero for the next event
        counters = self._counters
        counters.phase2_calls += 1
        counters.candidates_probed += len(self._counts)  # full-vector scan
        counters.matches_found += len(matched)
        return matched

    def match_fulfilled_batch(
        self, fulfilled_sets: Sequence[AbstractSet[int]]
    ) -> list[set[int]]:
        """Batch counting: one zero-template and hoisted table locals.

        The per-event full-clause comparison is preserved — it is the
        linear-in-N behaviour the engine exists to exhibit — but the
        zeroing buffer and the attribute lookups are paid once per batch
        instead of once per event.
        """
        hits = self._hits
        association = self._association
        counts = self._counts
        clause_subscription = self._clause_subscription
        zero = bytes(len(hits))
        results: list[set[int]] = []
        matched_total = 0
        for fulfilled_ids in fulfilled_sets:
            for pid in fulfilled_ids:
                clauses = association.get(pid)
                if clauses is not None:
                    for clause_index in clauses:
                        hits[clause_index] += 1
            matched: set[int] = set()
            for clause_index, required in enumerate(counts):
                if required and hits[clause_index] == required:
                    matched.add(clause_subscription[clause_index])
            hits[:] = zero
            matched_total += len(matched)
            results.append(matched)
        counters = self._counters
        counters.phase2_calls += len(results)
        counters.candidates_probed += len(counts) * len(results)
        counters.matches_found += matched_total
        return results

    def match_batch(self, events: Sequence[Event]) -> list[set[int]]:
        """Route real batches through the bit-packed kernel (PR 8).

        Single events keep the per-event set path (identical counters to
        ``match``); batches take phase 1 in column form and the matrix
        phase 2 below.
        """
        events = list(events)
        if len(events) <= 1:
            return super().match_batch(events)
        return self.match_fulfilled_matrix(self.indexes.match_batch_bits(events))

    def match_fulfilled_matrix(self, matrix: FulfilledMatrix) -> list[set[int]]:
        """Counting over the batch: requirement-mask AND per clause.

        A clause matches event ``i`` iff every required predicate's
        column has bit ``i`` set — so AND-ing the clause's columns tests
        "hit count equals required count" for *all* events in a couple
        of int operations, replacing the per-event hit-vector increment
        and full-vector comparison.  The scan still visits every live
        clause (the linear-in-N behaviour this engine exists to
        exhibit); ``candidates_probed`` therefore ticks once per live
        clause *per batch* — the amortization the kernel buys — where
        the per-event paths tick per event.
        """
        event_count = matrix.event_count
        if event_count == 0:
            return []
        all_events = matrix.all_events_mask
        columns = matrix.columns
        clause_bits = self._clause_bits
        clause_subscription = self._clause_subscription
        results: list[set[int]] = [set() for _ in range(event_count)]
        probed = 0
        for clause_index, required in enumerate(self._counts):
            if not required:  # count 0 is the free-slot sentinel
                continue
            probed += 1
            hits = all_events
            for bit in clause_bits[clause_index]:
                hits &= columns[bit]
                if not hits:
                    break
            if hits:
                sid = clause_subscription[clause_index]
                while hits:
                    low = hits & -hits
                    results[low.bit_length() - 1].add(sid)
                    hits ^= low
        counters = self._counters
        counters.phase2_calls += event_count
        counters.candidates_probed += probed
        counters.matches_found += sum(len(matched) for matched in results)
        return results

    def subscriber_of(self, subscription_id: int) -> str | None:
        """The subscriber registered for ``subscription_id``."""
        try:
            return self._subscribers[subscription_id]
        except KeyError:
            raise UnknownSubscriptionError(subscription_id) from None

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    def memory_breakdown(self) -> Mapping[str, int]:
        """Paper §3.3 structures: bit vector, hit/count vectors, tables."""
        model = self._cost_model
        allocated_clauses = len(self._counts)
        reference_count = sum(len(c) for c in self._association.values())
        breakdown = {
            "predicate_bit_vector": model.bit_vector_bytes(len(self.registry)),
            "hit_vector": model.vector_bytes(allocated_clauses),
            "count_vector": model.vector_bytes(allocated_clauses),
            "clause_subscription_table": allocated_clauses
            * model.subscription_id_bytes,
            "association_table": model.association_table_bytes(
                len(self._association), reference_count
            ),
        }
        if self._support_unsubscription:
            list_bytes = 0
            for records in self._subscription_clauses.values():
                for _, pids in records:
                    list_bytes += (
                        model.subscription_id_bytes
                        + len(pids) * model.predicate_id_bytes
                    )
            breakdown["subscription_predicate_lists"] = list_bytes
        return breakdown


class CountingVariantEngine(CountingEngine):
    """Candidate-driven counting (paper §3.3 variant).

    Identical storage; phase 2 records the clauses touched by fulfilled
    predicates and compares only those, so cost follows the number of
    matching predicates, not the registered subscription count.  The
    scalability ceiling is unchanged — the DNF blow-up is still paid in
    memory.
    """

    name = "counting-variant"

    def match_fulfilled(self, fulfilled_ids: AbstractSet[int]) -> set[int]:
        hits = self._hits
        association = self._association
        touched: list[int] = []
        extend = touched.extend
        for pid in fulfilled_ids:
            clauses = association.get(pid)
            if clauses is not None:
                extend(clauses)
                for clause_index in clauses:
                    hits[clause_index] += 1
        matched: set[int] = set()
        counts = self._counts
        clause_subscription = self._clause_subscription
        for clause_index in touched:
            hit = hits[clause_index]
            if hit:  # first visit of this clause; reset as we go
                if hit == counts[clause_index]:
                    matched.add(clause_subscription[clause_index])
                hits[clause_index] = 0
        counters = self._counters
        counters.phase2_calls += 1
        counters.candidates_probed += len(touched)  # touched clauses only
        counters.matches_found += len(matched)
        return matched

    def match_fulfilled_batch(
        self, fulfilled_sets: Sequence[AbstractSet[int]]
    ) -> list[set[int]]:
        """Batch variant counting: touched-clause buffer reused per event."""
        hits = self._hits
        association = self._association
        counts = self._counts
        clause_subscription = self._clause_subscription
        touched: list[int] = []
        extend = touched.extend
        results: list[set[int]] = []
        probed_total = 0
        matched_total = 0
        for fulfilled_ids in fulfilled_sets:
            touched.clear()
            for pid in fulfilled_ids:
                clauses = association.get(pid)
                if clauses is not None:
                    extend(clauses)
                    for clause_index in clauses:
                        hits[clause_index] += 1
            matched: set[int] = set()
            for clause_index in touched:
                hit = hits[clause_index]
                if hit:  # first visit of this clause; reset as we go
                    if hit == counts[clause_index]:
                        matched.add(clause_subscription[clause_index])
                    hits[clause_index] = 0
            probed_total += len(touched)
            matched_total += len(matched)
            results.append(matched)
        counters = self._counters
        counters.phase2_calls += len(results)
        counters.candidates_probed += probed_total
        counters.matches_found += matched_total
        return results

    def match_fulfilled_matrix(self, matrix: FulfilledMatrix) -> list[set[int]]:
        """Candidate-driven counting over the batch.

        Only clauses referenced by a fulfilled predicate (any event) are
        evaluated, preserving the variant's defining property — work
        follows matching predicates, not registered subscriptions.  Each
        touched clause is tested once per *batch* with the same
        requirement-mask AND as the parent engine;
        ``candidates_probed`` counts clauses actually evaluated (the
        per-event paths count per-event touch occurrences).
        """
        event_count = matrix.event_count
        if event_count == 0:
            return []
        association = self._association
        pids = matrix.layout.pids
        seen = bytearray(len(self._counts))
        touched: list[int] = []
        for bit in matrix.active_bits:
            clauses = association.get(pids[bit])
            if clauses:
                for clause_index in clauses:
                    if not seen[clause_index]:
                        seen[clause_index] = 1
                        touched.append(clause_index)
        all_events = matrix.all_events_mask
        columns = matrix.columns
        clause_bits = self._clause_bits
        clause_subscription = self._clause_subscription
        results: list[set[int]] = [set() for _ in range(event_count)]
        for clause_index in touched:
            hits = all_events
            for bit in clause_bits[clause_index]:
                hits &= columns[bit]
                if not hits:
                    break
            if hits:
                sid = clause_subscription[clause_index]
                while hits:
                    low = hits & -hits
                    results[low.bit_length() - 1].add(sid)
                    hits ^= low
        counters = self._counters
        counters.phase2_calls += event_count
        counters.candidates_probed += len(touched)
        counters.matches_found += sum(len(matched) for matched in results)
        return results
