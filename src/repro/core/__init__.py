"""Matching engines: the paper's non-canonical filter and its baselines."""

from .base import (
    FilterEngine,
    UnknownSubscriptionError,
    UnsupportedSubscriptionError,
)
from .bruteforce import BruteForceEngine
from .counting import MAX_CLAUSE_PREDICATES, CountingEngine, CountingVariantEngine
from .matching_tree import MatchingTreeEngine
from .noncanonical import NonCanonicalEngine
from .paged import DiskTreeStore, PagedNonCanonicalEngine

ENGINES = {
    engine.name: engine
    for engine in (
        NonCanonicalEngine,
        CountingEngine,
        CountingVariantEngine,
        BruteForceEngine,
        PagedNonCanonicalEngine,
        MatchingTreeEngine,
    )
}

__all__ = [
    "FilterEngine",
    "UnknownSubscriptionError",
    "UnsupportedSubscriptionError",
    "BruteForceEngine",
    "MAX_CLAUSE_PREDICATES",
    "CountingEngine",
    "CountingVariantEngine",
    "MatchingTreeEngine",
    "NonCanonicalEngine",
    "DiskTreeStore",
    "PagedNonCanonicalEngine",
    "ENGINES",
]
