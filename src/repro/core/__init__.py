"""Matching engines: the paper's non-canonical filter and its baselines."""

from .base import (
    FilterEngine,
    MatchCounters,
    UnknownSubscriptionError,
    UnsupportedSubscriptionError,
)
from .bitset import (
    POPCOUNT8,
    WORD_BITS,
    BitLayout,
    Bitmap,
    FulfilledMatrix,
    iter_bits,
    popcount,
    popcount_bytes,
    trailing_word_mask,
)
from .bruteforce import BruteForceEngine
from .counting import MAX_CLAUSE_PREDICATES, CountingEngine, CountingVariantEngine
from .matching_tree import MatchingTreeEngine
from .noncanonical import NonCanonicalEngine
from .paged import DiskTreeStore, PagedNonCanonicalEngine
from .registry import (
    EngineSpec,
    UnknownEngineError,
    build_engine,
    canonical_engine_name,
    engine_catalog,
    engine_names,
    register_engine,
    resolve_engine,
    spec_of,
)
from .sharded import (
    HashPartitioner,
    ProcessExecutor,
    RoutedPartitioner,
    SerialExecutor,
    ShardExecutor,
    ShardPartitioner,
    ShardWorkerError,
    ShardedEngine,
    ThreadExecutor,
    executor_names,
    make_executor,
    make_partitioner,
    partitioner_names,
    register_executor,
    register_partitioner,
    shard_index,
)

#: Engine display name -> class, a snapshot of the registry's catalog
#: (kept for callers that predate the registry; new code should use
#: :func:`build_engine` / :func:`engine_names`).
ENGINES = engine_catalog()

__all__ = [
    "FilterEngine",
    "MatchCounters",
    "UnknownSubscriptionError",
    "UnsupportedSubscriptionError",
    "POPCOUNT8",
    "WORD_BITS",
    "BitLayout",
    "Bitmap",
    "FulfilledMatrix",
    "iter_bits",
    "popcount",
    "popcount_bytes",
    "trailing_word_mask",
    "BruteForceEngine",
    "MAX_CLAUSE_PREDICATES",
    "CountingEngine",
    "CountingVariantEngine",
    "MatchingTreeEngine",
    "NonCanonicalEngine",
    "DiskTreeStore",
    "PagedNonCanonicalEngine",
    "ENGINES",
    "EngineSpec",
    "UnknownEngineError",
    "build_engine",
    "canonical_engine_name",
    "engine_catalog",
    "engine_names",
    "register_engine",
    "resolve_engine",
    "spec_of",
    "ShardedEngine",
    "ShardExecutor",
    "ShardPartitioner",
    "HashPartitioner",
    "RoutedPartitioner",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "ShardWorkerError",
    "executor_names",
    "make_executor",
    "make_partitioner",
    "partitioner_names",
    "register_executor",
    "register_partitioner",
    "shard_index",
]
