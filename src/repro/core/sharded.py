"""Sharded matching runtime: partition subscriptions across engine shards.

The paper benchmarks a single matcher process; scaling to millions of
subscriptions needs the registered population split across several
independent matchers whose answers are unioned.  This module provides
that as a first-class engine: :class:`ShardedEngine` partitions
subscriptions across ``N`` inner shards — each built from any
:class:`~repro.core.registry.EngineSpec` — and evaluates them through a
pluggable :class:`ShardExecutor` strategy.

Three properties make the design sound:

* **partitioning is a pure function of the subscription id**
  (:func:`shard_index`, a Knuth multiplicative hash), so ``register``,
  ``unregister`` and worker rebuilds all route identically without any
  shared lookup table;
* **shards share the parent's phase-1 state** (predicate registry and
  index manager), so a fulfilled-predicate-id set means the same thing
  to every shard and ``match_fulfilled`` is simply the union of the
  shards' answers;
* **subscription ids are globally stable**, so matched-id sets are
  comparable no matter which process computed them — the process
  executor's fork workers rebuild their shard from the inner spec plus
  their subscription slice (private registry, private indexes) and only
  events and matched ids ever cross the process boundary.

Executor strategies
-------------------
``serial``
    Evaluate shards one after another in the calling thread.  The
    default: deterministic, zero overhead, the right choice for CI and
    for correctness baselines.
``thread``
    Evaluate shards concurrently on a thread pool.  Pure-Python phase-2
    code holds the GIL, so this mainly helps engines that block (the
    paged engine's disk reads); it exists as the cheap concurrency
    strategy and as the template for GIL-free runtimes.
``process``
    Fork one long-lived worker per shard.  Workers rebuild their shard
    from ``spec`` + subscription slice at start and stay current under
    churn (register/unregister commands are forwarded).  Only
    :meth:`ShardedEngine.match_batch` is routed to workers — phase-2-only
    entry points (``match_fulfilled``) take fulfilled predicate ids that
    are parent-registry-relative, which a rebuilt worker cannot
    interpret, so they fall back to the in-process shards.
"""

from __future__ import annotations

import abc
import multiprocessing
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import AbstractSet, Callable, Mapping, Sequence, TypeVar

from ..events.event import Event
from ..indexes.manager import IndexManager
from ..predicates.registry import PredicateRegistry
from ..subscriptions.subscription import Subscription
from .base import FilterEngine, MatchCounters, UnknownSubscriptionError
from .registry import EngineSpec

T = TypeVar("T")

#: Knuth's multiplicative constant (2^32 / phi); spreads consecutive ids.
_HASH_MULTIPLIER = 2654435761
_HASH_MASK = 0xFFFFFFFF


def shard_index(subscription_id: int, shard_count: int) -> int:
    """The shard owning ``subscription_id`` — stable across processes.

    A multiplicative hash with the high half folded into the low half —
    a bare ``(id * C) % shards`` keeps ``id``'s own low bits for
    power-of-two shard counts, degenerating to round-robin, and plain
    ``id % shards`` aliases with any periodic id sequence.  Deliberately
    *not* Python's ``hash()``, whose string seed varies per process
    (ints are unseeded today, but the partitioner must never depend on
    that staying true).
    """
    if shard_count < 1:
        raise ValueError("shard_count must be at least 1")
    mixed = (subscription_id * _HASH_MULTIPLIER) & _HASH_MASK
    mixed ^= mixed >> 16
    return mixed % shard_count


# ----------------------------------------------------------------------
# executor strategies
# ----------------------------------------------------------------------
class ShardExecutor(abc.ABC):
    """Strategy that evaluates per-shard work and collects the results.

    A strategy is bound to exactly one :class:`ShardedEngine`
    (:meth:`bind`), sees every registration change
    (:meth:`notify_register` / :meth:`notify_unregister`), and is closed
    with the engine.  The two evaluation hooks:

    * :meth:`map_shards` runs one zero-argument job per shard against
      the engine's *in-process* shards and returns their results in
      shard order — phase-2 work (``match_fulfilled``) flows through it;
    * :meth:`match_batch_events` may claim full two-phase batch matching
      (events in, per-event matched-id sets out); returning ``None``
      defers to the in-process pipeline.
    """

    #: Strategy name as it appears in specs and ``executor=`` options.
    name: str = "abstract"

    def bind(self, engine: "ShardedEngine") -> None:
        """Attach to the owning engine; called once, before any work."""
        self._engine = engine

    def close(self) -> None:
        """Release pools/workers; the engine is unusable through this
        strategy afterwards."""

    def notify_register(self, shard: int, subscription: Subscription) -> None:
        """``subscription`` was registered on shard ``shard``."""

    def notify_unregister(self, shard: int, subscription_id: int) -> None:
        """``subscription_id`` was unregistered from shard ``shard``."""

    @abc.abstractmethod
    def map_shards(self, jobs: Sequence[Callable[[], T]]) -> list[T]:
        """Run one job per shard; return results in shard order."""

    def match_batch_events(self, events: Sequence[Event]) -> list[set[int]] | None:
        """Full two-phase batch matching, or ``None`` to use the
        in-process phase-1 + ``match_fulfilled_batch`` pipeline."""
        return None


class SerialExecutor(ShardExecutor):
    """Evaluate shards in order on the calling thread (deterministic)."""

    name = "serial"

    def map_shards(self, jobs: Sequence[Callable[[], T]]) -> list[T]:
        return [job() for job in jobs]


class ThreadExecutor(ShardExecutor):
    """Evaluate shards concurrently on a lazily-created thread pool."""

    name = "thread"

    def __init__(self) -> None:
        self._pool: ThreadPoolExecutor | None = None

    def map_shards(self, jobs: Sequence[Callable[[], T]]) -> list[T]:
        if len(jobs) <= 1:
            return [job() for job in jobs]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=len(jobs), thread_name_prefix="repro-shard"
            )
        return list(self._pool.map(lambda job: job(), jobs))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def _shard_worker_main(
    connection,
    spec: EngineSpec,
    subscriptions: list[Subscription],
) -> None:
    """Worker loop: rebuild the shard from spec + slice, serve commands.

    Runs in a forked child.  The engine is rebuilt on a *private*
    registry and index manager — predicate ids here mean nothing to the
    parent, which is why the protocol only ever carries events, whole
    subscriptions, and matched subscription ids.
    """
    try:
        engine = spec.build()
        for subscription in subscriptions:
            engine.register(subscription)
    except BaseException:
        connection.send(("error", traceback.format_exc()))
        connection.close()
        return
    connection.send(("ready", engine.subscription_count))
    while True:
        try:
            command, payload = connection.recv()
        except EOFError:
            break
        try:
            if command == "match_batch":
                connection.send(("ok", engine.match_batch(payload)))
            elif command == "register":
                engine.register(payload)
                connection.send(("ok", None))
            elif command == "unregister":
                engine.unregister(payload)
                connection.send(("ok", None))
            elif command == "stop":
                connection.send(("ok", None))
                break
            else:
                connection.send(("error", f"unknown command {command!r}"))
        except BaseException:
            connection.send(("error", traceback.format_exc()))
    engine.close()
    connection.close()


class ShardWorkerError(RuntimeError):
    """A shard worker process reported a failure."""


class ProcessExecutor(ShardExecutor):
    """One forked, long-lived worker process per shard.

    Workers are started lazily on the first batch match (so purely
    serial usage never pays the fork) and rebuilt shards stay current:
    registrations after start are forwarded as commands.  Requires the
    ``fork`` start method — on platforms without it construction of the
    worker pool raises, and callers should use ``serial`` or ``thread``.
    """

    name = "process"

    def __init__(self) -> None:
        self._connections: list = []
        self._processes: list = []
        self._started = False

    # -- lifecycle ------------------------------------------------------
    def _ensure_started(self) -> None:
        if self._started:
            return
        engine = self._engine
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ShardWorkerError(
                "the process executor needs the 'fork' start method "
                "(unavailable on this platform); use executor='serial' "
                "or 'thread'"
            )
        context = multiprocessing.get_context("fork")
        slices = engine.shard_subscription_slices()
        try:
            for shard, subscriptions in enumerate(slices):
                parent_end, child_end = context.Pipe()
                process = context.Process(
                    target=_shard_worker_main,
                    args=(child_end, engine.spec, subscriptions),
                    name=f"repro-shard-{shard}",
                    daemon=True,
                )
                process.start()
                child_end.close()
                self._connections.append(parent_end)
                self._processes.append(process)
            for shard, connection in enumerate(self._connections):
                status, payload = connection.recv()
                if status != "ready":
                    raise ShardWorkerError(
                        f"shard worker {shard} failed to build:\n{payload}"
                    )
        except BaseException:
            # tear everything down so a retry starts from scratch instead
            # of appending a second worker set to a half-built pool
            self.close()
            raise
        self._started = True

    def close(self) -> None:
        for connection in self._connections:
            try:
                connection.send(("stop", None))
                connection.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            connection.close()
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():
                process.terminate()
        self._connections = []
        self._processes = []
        self._started = False

    # -- command plumbing ----------------------------------------------
    def _command_one(self, shard: int, command: str, payload):
        """One command round-trip; any failure **stops the pool**.

        The parent's in-process shards are the authoritative state.  If
        a worker cannot be kept in sync (command error, dead pipe), the
        only safe move is to kill the workers: the next batch match
        rebuilds them from the parent's current slices.  Leaving them
        running would silently return match sets from divergent state.
        """
        connection = self._connections[shard]
        try:
            connection.send((command, payload))
            status, result = connection.recv()
        except (BrokenPipeError, EOFError, OSError) as error:
            self.close()
            raise ShardWorkerError(
                f"shard worker {shard} died during {command!r}: {error}"
            ) from error
        if status != "ok":
            self.close()
            raise ShardWorkerError(
                f"shard worker {shard} failed on {command!r}:\n{result}"
            )
        return result

    def notify_register(self, shard: int, subscription: Subscription) -> None:
        if self._started:
            self._command_one(shard, "register", subscription)

    def notify_unregister(self, shard: int, subscription_id: int) -> None:
        if self._started:
            self._command_one(shard, "unregister", subscription_id)

    # -- evaluation -----------------------------------------------------
    def map_shards(self, jobs: Sequence[Callable[[], T]]) -> list[T]:
        # Phase-2-only work takes parent-registry-relative predicate ids,
        # which a rebuilt worker cannot interpret; run it in-process.
        return [job() for job in jobs]

    def match_batch_events(self, events: Sequence[Event]) -> list[set[int]]:
        self._ensure_started()
        # Scatter the whole batch to every worker first, then gather —
        # the send/recv split is where the parallelism comes from.
        payload = list(events)
        per_shard: list[list[set[int]]] = []
        try:
            for connection in self._connections:
                connection.send(("match_batch", payload))
            for shard, connection in enumerate(self._connections):
                status, result = connection.recv()
                if status != "ok":
                    raise ShardWorkerError(
                        f"shard worker {shard} failed on 'match_batch':\n{result}"
                    )
                per_shard.append(result)
        except BaseException:
            # fail-stop: a half-drained pool would misalign every later
            # round-trip; the next call restarts from parent state
            self.close()
            raise
        return [
            set().union(*(shard_sets[i] for shard_sets in per_shard))
            for i in range(len(payload))
        ]


#: executor name -> zero-argument strategy factory
_EXECUTORS: dict[str, Callable[[], ShardExecutor]] = {}


def register_executor(
    name: str, factory: Callable[[], ShardExecutor], *, override: bool = False
) -> None:
    """Add an executor strategy under ``name`` (pluggable, like engines)."""
    if not name:
        raise ValueError("executor name must be non-empty")
    if name in _EXECUTORS and not override:
        raise ValueError(
            f"executor {name!r} is already registered; pass override=True "
            "to replace it"
        )
    _EXECUTORS[name] = factory


def executor_names() -> tuple[str, ...]:
    """The registered executor strategy names, in registration order."""
    return tuple(_EXECUTORS)


def make_executor(executor: ShardExecutor | str) -> ShardExecutor:
    """Resolve an executor strategy instance or registered name."""
    if isinstance(executor, ShardExecutor):
        return executor
    try:
        factory = _EXECUTORS[executor]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown executor {executor!r}; registered executors: "
            f"{', '.join(executor_names())}"
        ) from None
    return factory()


register_executor("serial", SerialExecutor)
register_executor("thread", ThreadExecutor)
register_executor("process", ProcessExecutor)


# ----------------------------------------------------------------------
# the sharded engine
# ----------------------------------------------------------------------
class ShardedEngine(FilterEngine):
    """Partition subscriptions across N inner engines built from one spec.

    Parameters
    ----------
    spec:
        Inner-engine configuration — an
        :class:`~repro.core.registry.EngineSpec`, a registry name, or
        ``None`` for the default non-canonical engine.  The spec may not
        itself be sharded (no nesting).
    shards:
        Number of inner shards (>= 1).
    executor:
        Evaluation strategy: a registered name (``"serial"``,
        ``"thread"``, ``"process"``) or a :class:`ShardExecutor`
        instance.
    registry / indexes:
        Shared phase-1 state, as for every engine; all shards share it,
        so one phase-1 pass serves every shard.
    """

    name = "sharded"

    def __init__(
        self,
        spec: EngineSpec | str | None = None,
        *,
        shards: int = 2,
        executor: ShardExecutor | str = "serial",
        registry: PredicateRegistry | None = None,
        indexes: IndexManager | None = None,
    ) -> None:
        super().__init__(registry=registry, indexes=indexes)
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if spec is None:
            spec = EngineSpec("noncanonical")
        elif isinstance(spec, str):
            spec = EngineSpec(spec)
        if "shards" in spec.options or "executor" in spec.options:
            raise ValueError(
                f"inner spec {spec!r} is itself sharded; nested sharding "
                "is not supported"
            )
        self.spec = spec
        self.shard_count = shards
        self._shards: list[FilterEngine] = [
            spec.build(registry=self.registry, indexes=self.indexes)
            for _ in range(shards)
        ]
        self._subscriptions: dict[int, Subscription] = {}
        self._executor = make_executor(executor)
        self._executor.bind(self)
        self.name = f"{self._shards[0].name}×{shards}"
        # one shared phase-1 bit matrix can feed every shard's phase 2
        # iff every shard actually overrides the matrix hook; otherwise
        # the set pipeline stays (expanding the matrix per shard would
        # multiply the transpose cost by the shard count)
        self._matrix_capable = all(
            type(shard).match_fulfilled_matrix
            is not FilterEngine.match_fulfilled_matrix
            for shard in self._shards
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def executor_name(self) -> str:
        """Name of the active executor strategy."""
        return self._executor.name

    @property
    def shards(self) -> tuple[FilterEngine, ...]:
        """The in-process shard engines, in shard order."""
        return tuple(self._shards)

    def shard_of(self, subscription_id: int) -> int:
        """The shard owning ``subscription_id`` (pure partitioner)."""
        return shard_index(subscription_id, self.shard_count)

    def shard_subscription_slices(self) -> list[list[Subscription]]:
        """Per-shard subscription lists, each in registration (id) order.

        This plus :attr:`spec` is everything a worker needs to rebuild a
        shard — the contract the process executor relies on.
        """
        slices: list[list[Subscription]] = [[] for _ in self._shards]
        for sid in sorted(self._subscriptions):
            slices[self.shard_of(sid)].append(self._subscriptions[sid])
        return slices

    def shard_stats(self) -> list[dict]:
        """Per-shard stats dicts (shard index added to each)."""
        stats = []
        for index, shard in enumerate(self._shards):
            entry = shard.stats()
            entry["shard"] = index
            stats.append(entry)
        return stats

    @property
    def counters(self) -> MatchCounters:
        """Aggregated phase-2 work counters, summed across the shards.

        In-process work only: batches the process executor routes to its
        fork workers are probed in the workers, not here.
        """
        total = MatchCounters()
        for shard in self._shards:
            total = total + shard.counters
        return total

    def reset_counters(self) -> None:
        for shard in self._shards:
            shard.reset_counters()

    def stats(self) -> dict:
        entry = super().stats()
        entry["shards"] = self.shard_count
        entry["executor"] = self.executor_name
        return entry

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, subscription: Subscription) -> None:
        """Route to the owning shard; the executor mirrors the change."""
        sid = subscription.subscription_id
        if sid in self._subscriptions:
            raise ValueError(f"subscription id {sid} already registered")
        shard = self.shard_of(sid)
        # may raise UnsupportedSubscriptionError — before any bookkeeping
        self._shards[shard].register(subscription)
        self._subscriptions[sid] = subscription
        self._executor.notify_register(shard, subscription)

    def unregister(self, subscription_id: int) -> None:
        if subscription_id not in self._subscriptions:
            raise UnknownSubscriptionError(subscription_id)
        shard = self.shard_of(subscription_id)
        self._shards[shard].unregister(subscription_id)
        del self._subscriptions[subscription_id]
        self._executor.notify_unregister(shard, subscription_id)

    @property
    def subscription_count(self) -> int:
        return len(self._subscriptions)

    @property
    def stored_subscription_count(self) -> int:
        return sum(shard.stored_subscription_count for shard in self._shards)

    def subscription_ids(self) -> frozenset[int]:
        return frozenset(self._subscriptions)

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def match_fulfilled(self, fulfilled_ids: AbstractSet[int]) -> set[int]:
        """Union of the shards' phase-2 answers, via the executor."""
        answers = self._executor.map_shards(
            [
                lambda shard=shard: shard.match_fulfilled(fulfilled_ids)
                for shard in self._shards
            ]
        )
        return set().union(*answers)

    def match_fulfilled_batch(
        self, fulfilled_sets: Sequence[AbstractSet[int]]
    ) -> list[set[int]]:
        answers = self._executor.map_shards(
            [
                lambda shard=shard: shard.match_fulfilled_batch(fulfilled_sets)
                for shard in self._shards
            ]
        )
        return [
            set().union(*(shard_sets[i] for shard_sets in answers))
            for i in range(len(fulfilled_sets))
        ]

    def match_batch(self, events: Sequence[Event]) -> list[set[int]]:
        """Batch matching; the executor may claim the whole pipeline.

        The process executor routes the events to its workers (each runs
        both phases over its slice, rebuilding private bit layouts from
        the spec); the in-process strategies run one shared phase-1 pass
        and fan phase 2 out across the shards — in column-major bit form
        when every shard speaks the PR 8 kernel, as per-event id sets
        otherwise.
        """
        events = list(events)
        if not events:
            return []
        routed = self._executor.match_batch_events(events)
        if routed is not None:
            return routed
        if self._matrix_capable and len(events) > 1:
            matrix = self.indexes.match_batch_bits(events)
            answers = self._executor.map_shards(
                [
                    lambda shard=shard: shard.match_fulfilled_matrix(matrix)
                    for shard in self._shards
                ]
            )
            return [
                set().union(*(shard_sets[i] for shard_sets in answers))
                for i in range(len(events))
            ]
        return super().match_batch(events)

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    def memory_breakdown(self) -> Mapping[str, int]:
        """Aggregated per-structure bytes, summed across shards."""
        total: dict[str, int] = {}
        for shard in self._shards:
            for key, value in shard.memory_breakdown().items():
                total[key] = total.get(key, 0) + value
        return total

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the executor (workers, pools) and the shards."""
        self._executor.close()
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedEngine({self.spec.name!r}, shards={self.shard_count}, "
            f"executor={self.executor_name!r}, "
            f"subscriptions={self.subscription_count})"
        )
