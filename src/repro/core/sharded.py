"""Sharded matching runtime: partition subscriptions across engine shards.

The paper benchmarks a single matcher process; scaling to millions of
subscriptions needs the registered population split across several
independent matchers whose answers are unioned.  This module provides
that as a first-class engine: :class:`ShardedEngine` partitions
subscriptions across ``N`` inner shards — each built from any
:class:`~repro.core.registry.EngineSpec` — places them through a
pluggable :class:`ShardPartitioner`, and evaluates them through a
pluggable :class:`ShardExecutor` strategy.

Three properties make the design sound:

* **the partitioner owns the subscription→shard map** and every mutation
  flows through it (``assign`` on register, ``forget`` on unregister,
  ``plan_rebalance`` moves), so ``register``, ``unregister``, worker
  rebuilds and event routing always agree on who owns what;
* **shards share the parent's phase-1 state** (predicate registry and
  index manager), so a fulfilled-predicate-id set means the same thing
  to every shard and ``match_fulfilled`` is simply the union of the
  shards' answers;
* **subscription ids are globally stable**, so matched-id sets are
  comparable no matter which process computed them — the process
  executor's fork workers rebuild their shard from the inner spec plus
  their subscription slice (private registry, private indexes) and only
  events and matched ids ever cross the process boundary.

Partitioner strategies
----------------------
``hash``
    :func:`shard_index`, a Knuth multiplicative hash of the subscription
    id.  Stateless and perfectly balanced, but *blind*: every event must
    visit every shard, so serial sharding is pure overhead (the BENCH_4
    sweeps show negative serial scaling).  The default, preserving the
    PR 3 behavior.
``routed``
    :class:`RoutedPartitioner` — places each subscription into an
    **event-space region group** derived from its expression summary
    (:func:`repro.subscriptions.summary.summarize`, shared with the
    covering index): subscriptions whose every DNF clause pins an
    attribute to a point are grouped by that anchor value set;
    subscriptions with tight interval hulls are grouped by hull
    signature; everything else lands in a universal group.  Whole groups
    map to shards, and a per-event digest probe (point lookups over the
    anchor index, interval admission over the merged scan hulls) yields
    the *candidate shard subset* — pruned shards are never probed, which
    is where the serial speedup comes from.  Group loads feed a greedy
    rebalancer that migrates whole groups off overloaded shards.

Executor strategies
-------------------
``serial``
    Evaluate shards one after another in the calling thread.  The
    default: deterministic, zero overhead, the right choice for CI and
    for correctness baselines.
``thread``
    Evaluate shards concurrently on a thread pool.  Pure-Python phase-2
    code holds the GIL, so this mainly helps engines that block (the
    paged engine's disk reads); it exists as the cheap concurrency
    strategy and as the template for GIL-free runtimes.
``process``
    Fork one long-lived worker per shard.  Workers rebuild their shard
    from ``spec`` + subscription slice at start and stay current under
    churn (register/unregister commands are forwarded).  Only
    :meth:`ShardedEngine.match_batch` is routed to workers — phase-2-only
    entry points (``match_fulfilled``) take fulfilled predicate ids that
    are parent-registry-relative, which a rebuilt worker cannot
    interpret, so they fall back to the in-process shards.  Routed
    pruning composes: each worker receives only the events its shard is
    a candidate for.
"""

from __future__ import annotations

import abc
import multiprocessing
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import AbstractSet, Callable, Iterable, Mapping, Sequence, TypeVar

from ..events.event import Event
from ..indexes.manager import IndexManager
from ..memory.cost_model import DEFAULT_COST_MODEL, CostModel
from ..predicates.registry import PredicateRegistry
from ..subscriptions.subscription import Subscription
from ..subscriptions.summary import interval_admits, summarize
from .base import FilterEngine, MatchCounters, UnknownSubscriptionError
from .registry import EngineSpec

T = TypeVar("T")

#: Knuth's multiplicative constant (2^32 / phi); spreads consecutive ids.
_HASH_MULTIPLIER = 2654435761
_HASH_MASK = 0xFFFFFFFF


def shard_index(subscription_id: int, shard_count: int) -> int:
    """The shard owning ``subscription_id`` — stable across processes.

    A multiplicative hash with the high half folded into the low half —
    a bare ``(id * C) % shards`` keeps ``id``'s own low bits for
    power-of-two shard counts, degenerating to round-robin, and plain
    ``id % shards`` aliases with any periodic id sequence.  Deliberately
    *not* Python's ``hash()``, whose string seed varies per process
    (ints are unseeded today, but the partitioner must never depend on
    that staying true).
    """
    if shard_count < 1:
        raise ValueError("shard_count must be at least 1")
    mixed = (subscription_id * _HASH_MULTIPLIER) & _HASH_MASK
    mixed ^= mixed >> 16
    return mixed % shard_count


# ----------------------------------------------------------------------
# partitioner strategies
# ----------------------------------------------------------------------
class ShardPartitioner(abc.ABC):
    """Strategy that places subscriptions on shards and routes events.

    A partitioner is bound to a shard count (:meth:`bind`) before any
    placement.  The engine calls :meth:`assign` on register (the
    partitioner remembers the placement), :meth:`forget` on unregister,
    and :meth:`shard_of` whenever it needs the current owner.  Routing
    partitioners (:attr:`routes` true) additionally narrow the per-event
    shard fan-out through :meth:`candidate_shards` and propose load
    migrations through :meth:`plan_rebalance`.

    **Soundness contract of** :meth:`candidate_shards`: the returned
    set must contain the shard of *every* subscription the event could
    match — over-approximation is fine (it only costs a probe), an
    omission loses matches.
    """

    #: Strategy name as it appears in specs and ``partitioner=`` options.
    name: str = "abstract"
    #: Whether :meth:`candidate_shards` ever prunes (``False`` lets the
    #: engine skip per-event routing work entirely).
    routes: bool = False

    def bind(self, shard_count: int) -> None:
        """Fix the shard count; called once, before any placement."""
        if shard_count < 1:
            raise ValueError("shard_count must be at least 1")
        self.shard_count = shard_count

    @abc.abstractmethod
    def assign(self, subscription: Subscription) -> int:
        """Place ``subscription`` and return its shard (remembered)."""

    def forget(self, subscription_id: int) -> None:
        """Drop the placement of ``subscription_id``."""

    @abc.abstractmethod
    def shard_of(self, subscription_id: int) -> int:
        """The shard currently owning ``subscription_id``."""

    def candidate_shards(self, event: Event) -> Iterable[int]:
        """Shards that may hold a subscription matching ``event``."""
        return range(self.shard_count)

    def plan_rebalance(self) -> list[tuple[int, int, int]]:
        """Load-balancing moves as ``(subscription_id, src, dst)`` tuples.

        The partitioner updates its own placement map before returning;
        the engine applies the corresponding shard/worker migrations.
        An empty list means the placement is balanced enough.
        """
        return []

    def memory_breakdown(self) -> Mapping[str, int]:
        """Bytes of partitioner-owned routing state (paper cost model).

        Charged by :meth:`ShardedEngine.memory_breakdown` on top of the
        shards' own structures — routing digests are real phase-2 memory
        and hiding them would flatter the routed configurations.
        """
        return {}


class HashPartitioner(ShardPartitioner):
    """Stateless id-hash placement — every event visits every shard.

    The PR 3 behavior and the default.  Placement is a pure function of
    the subscription id, so there is nothing to remember, nothing to
    rebalance, and zero bytes of routing state (``shards=1`` hash
    configurations stay memory-identical to the unsharded engine).
    """

    name = "hash"
    routes = False

    def assign(self, subscription: Subscription) -> int:
        return shard_index(subscription.subscription_id, self.shard_count)

    def shard_of(self, subscription_id: int) -> int:
        return shard_index(subscription_id, self.shard_count)


class _RegionGroup:
    """One event-space region: a set of co-routed subscriptions.

    Groups are the unit of placement *and* migration — every member
    lives on :attr:`shard`, and rebalancing moves whole groups so the
    routing digest never has to split a region across shards.  Scan
    groups carry merged admission ``hulls`` (grow-only: member removal
    never shrinks them, which keeps removal O(1) at the cost of
    admitting conservatively until the group empties and is dropped).
    """

    __slots__ = ("key", "shard", "members", "hulls")

    def __init__(self, key: tuple, shard: int) -> None:
        self.key = key
        self.shard = shard
        self.members: set[int] = set()
        self.hulls: dict = {}

    def __repr__(self) -> str:
        return (
            f"_RegionGroup(key={self.key!r}, shard={self.shard}, "
            f"members={len(self.members)})"
        )


_UNIVERSAL_KEY = ("universal",)


class RoutedPartitioner(ShardPartitioner):
    """Region-based placement with per-event shard pruning.

    Placement
        Each subscription's expression summary
        (:func:`~repro.subscriptions.summary.summarize` — the same
        cached derivation the covering index uses) yields a region key:

        * ``("anchor", attr, values)`` when every satisfiable DNF clause
          pins ``attr`` to a point — the hot-key case; the group is
          registered in a point index under each anchor value;
        * ``("hulls", attrs)`` when the summary has tight interval
          hulls — the group is scanned with merged hull admission;
        * the universal key otherwise (no prunable structure): its group
          admits every event.

        A new anchor group goes to the **home shard** of its smallest
        anchor value (first-come, least-loaded; sticky thereafter), so
        every group touching a key co-locates with that key's other
        groups — an event for the key then resolves to one or two
        shards instead of wherever load-balancing happened to scatter
        them.  Non-anchor groups go to the least-loaded shard.  Later
        members always follow their group (regions stay whole).

    Routing
        ``candidate_shards(event)`` unions the shards of (a) every scan
        group whose merged hulls admit the event — an event missing a
        hull attribute, or carrying a value outside the hull, cannot
        match any member (hull tightness, see the summary module) — and
        (b) every anchor group found by point lookup on the event's
        attribute values.  Everything else is pruned.

    Rebalancing
        When the max shard load exceeds ``imbalance_factor ×`` the mean,
        whole groups migrate greedily from the most- to the least-loaded
        shard, each move strictly lowering the peak; ``migrations``
        counts accepted moves.  Single-group skew (one giant region)
        cannot be split and is left alone.
    """

    name = "routed"
    routes = True

    def __init__(
        self,
        *,
        imbalance_factor: float = 1.5,
        max_clauses: int = 4_096,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        if imbalance_factor < 1.0:
            raise ValueError("imbalance_factor must be at least 1.0")
        self.imbalance_factor = imbalance_factor
        self.max_clauses = max_clauses
        self._cost_model = cost_model
        #: accepted group migrations (rebalance effectiveness signal)
        self.migrations = 0
        self._assignments: dict[int, _RegionGroup] = {}
        self._groups: dict[tuple, _RegionGroup] = {}
        #: attr -> anchor value -> groups anchored there (point probes)
        self._point_index: dict[str, dict] = {}
        #: hull/universal groups, admission-scanned per event
        self._scan_groups: set[_RegionGroup] = set()
        #: (attr, anchor value) -> sticky home shard for new groups
        self._value_homes: dict[tuple, int] = {}
        self._loads: list[int] = []

    def bind(self, shard_count: int) -> None:
        super().bind(shard_count)
        self._loads = [0] * shard_count

    # -- placement ------------------------------------------------------
    def _region_key(self, subscription: Subscription) -> tuple:
        summary = summarize(
            subscription.expression, max_clauses=self.max_clauses
        )
        anchors = summary.anchors
        if anchors:
            attribute = min(anchors)
            return ("anchor", attribute, anchors[attribute])
        if summary.hulls:
            return ("hulls", frozenset(summary.hulls))
        return _UNIVERSAL_KEY

    def assign(self, subscription: Subscription) -> int:
        sid = subscription.subscription_id
        key = self._region_key(subscription)
        group = self._groups.get(key)
        if group is None:
            shard = self._place(key)
            group = _RegionGroup(key, shard)
            self._groups[key] = group
            if key[0] == "anchor":
                attr_map = self._point_index.setdefault(key[1], {})
                for value in key[2]:
                    attr_map.setdefault(value, set()).add(group)
            else:
                self._scan_groups.add(group)
        if key[0] == "hulls":
            self._merge_hulls(group, subscription)
        group.members.add(sid)
        self._assignments[sid] = group
        self._loads[group.shard] += 1
        return group.shard

    def _place(self, key: tuple) -> int:
        """The shard a brand-new region group starts on.

        Anchor groups pin to the sticky home of their smallest anchor
        value: subscriptions sharing a key end up on the same shard, so
        an event for that key prunes everything else.  Spreading such
        groups by load instead would drag every key's interest onto
        every shard and leave nothing to prune — load problems are the
        rebalancer's job, not placement's.
        """
        loads = self._loads
        if key[0] == "anchor":
            # keyed by the smallest anchor value; repr-ordered so mixed
            # value domains stay deterministic instead of raising
            anchor = min(key[2], key=lambda v: (type(v).__name__, repr(v)))
            home_key = (key[1], anchor)
            home = self._value_homes.get(home_key)
            if home is None:
                home = min(range(self.shard_count), key=loads.__getitem__)
                self._value_homes[home_key] = home
            return home
        return min(range(self.shard_count), key=loads.__getitem__)

    @staticmethod
    def _admission_hulls(summary) -> dict:
        """The tightest sound admission interval per tight attribute.

        ``summary.hulls`` guarantees *presence* (every clause carries a
        positive interval literal, so a matching event must carry the
        attribute) but unions literal-level intervals — for a range
        subscription like ``value > 10 and value < 20`` that union is
        unbounded.  ``summary.clause_hulls`` holds the per-clause
        *intersection* hull (the event value must satisfy every positive
        literal of some clause), which is tight for exactly those
        shapes; fall back to the literal hull when the clause hull is
        unusable (cross-domain bounds or unsatisfiable).
        """
        hulls = {}
        for attribute, hull in summary.hulls.items():
            clause_hull = summary.clause_hulls.get(attribute)
            hulls[attribute] = (
                clause_hull if isinstance(clause_hull, tuple) else hull
            )
        return hulls

    def _merge_hulls(self, group: _RegionGroup, subscription: Subscription) -> None:
        """Grow the group's admission hulls to cover the new member."""
        from ..subscriptions.summary import _hull

        summary = summarize(
            subscription.expression, max_clauses=self.max_clauses
        )
        incoming_hulls = self._admission_hulls(summary)
        if not group.members:
            group.hulls = incoming_hulls
            return
        for attribute in list(group.hulls):
            incoming = incoming_hulls[attribute]
            try:
                group.hulls[attribute] = _hull(group.hulls[attribute], incoming)
            except TypeError:
                # cross-domain members: no usable interval on this
                # attribute any more — admission falls back to presence
                del group.hulls[attribute]

    def forget(self, subscription_id: int) -> None:
        group = self._assignments.pop(subscription_id)
        group.members.discard(subscription_id)
        self._loads[group.shard] -= 1
        if group.members:
            return
        del self._groups[group.key]
        key = group.key
        if key[0] == "anchor":
            attr_map = self._point_index.get(key[1], {})
            for value in key[2]:
                groups = attr_map.get(value)
                if groups is not None:
                    groups.discard(group)
                    if not groups:
                        del attr_map[value]
            if not attr_map:
                self._point_index.pop(key[1], None)
        else:
            self._scan_groups.discard(group)

    def shard_of(self, subscription_id: int) -> int:
        return self._assignments[subscription_id].shard

    # -- routing --------------------------------------------------------
    def candidate_shards(self, event: Event) -> set[int]:
        shard_count = self.shard_count
        shards: set[int] = set()
        for group in self._scan_groups:
            if group.shard in shards:
                continue
            for attribute, hull in group.hulls.items():
                value = event.get(attribute)
                if value is None or not interval_admits(hull, value):
                    break
            else:
                shards.add(group.shard)
                if len(shards) == shard_count:
                    return shards
        for attribute, value_map in self._point_index.items():
            value = event.get(attribute)
            if value is None:
                continue
            groups = value_map.get(value)
            if not groups:
                continue
            for group in groups:
                shards.add(group.shard)
            if len(shards) == shard_count:
                return shards
        return shards

    # -- rebalancing ----------------------------------------------------
    def plan_rebalance(self) -> list[tuple[int, int, int]]:
        if self.shard_count <= 1:
            return []
        loads = self._loads
        total = sum(loads)
        if not total:
            return []
        threshold = self.imbalance_factor * (total / self.shard_count)
        if max(loads) <= threshold:
            return []
        moves: list[tuple[int, int, int]] = []
        moved: set[int] = set()
        while max(loads) > threshold:
            src = max(range(self.shard_count), key=loads.__getitem__)
            dst = min(range(self.shard_count), key=loads.__getitem__)
            best: _RegionGroup | None = None
            for group in self._groups.values():
                if group.shard != src or id(group) in moved:
                    continue
                size = len(group.members)
                # only moves that strictly lower the peak terminate the
                # loop; anything else could oscillate forever
                if size and loads[dst] + size < loads[src]:
                    if best is None or size > len(best.members):
                        best = group
            if best is None:
                break
            moved.add(id(best))
            size = len(best.members)
            loads[src] -= size
            loads[dst] += size
            best.shard = dst
            self.migrations += 1
            moves.extend((sid, src, dst) for sid in sorted(best.members))
        return moves

    # -- memory ---------------------------------------------------------
    def memory_breakdown(self) -> Mapping[str, int]:
        """Routing-digest bytes under the paper's cost model.

        One location-table entry per placed subscription, one keyed slot
        per group (plus two interval bounds per merged hull), and one
        keyed slot plus a group pointer per point-index posting — the
        same per-entry constants the engines' association/location
        tables use, so routed and hash configurations compare fairly.
        """
        model = self._cost_model
        total = model.location_table_bytes(len(self._assignments))
        total += len(self._value_homes) * (
            model.table_entry_overhead_bytes + model.pointer_bytes
        )
        for group in self._groups.values():
            total += model.table_entry_overhead_bytes + model.pointer_bytes
            total += len(group.hulls) * 2 * model.pointer_bytes
        for value_map in self._point_index.values():
            total += model.table_entry_overhead_bytes
            for groups in value_map.values():
                total += (
                    model.table_entry_overhead_bytes
                    + len(groups) * model.pointer_bytes
                )
        return {"shard_router": total}


#: partitioner name -> zero-argument strategy factory
_PARTITIONERS: dict[str, Callable[[], ShardPartitioner]] = {}


def register_partitioner(
    name: str, factory: Callable[[], ShardPartitioner], *, override: bool = False
) -> None:
    """Add a partitioner strategy under ``name`` (pluggable, like engines)."""
    if not name:
        raise ValueError("partitioner name must be non-empty")
    if name in _PARTITIONERS and not override:
        raise ValueError(
            f"partitioner {name!r} is already registered; pass override=True "
            "to replace it"
        )
    _PARTITIONERS[name] = factory


def partitioner_names() -> tuple[str, ...]:
    """The registered partitioner strategy names, in registration order."""
    return tuple(_PARTITIONERS)


def make_partitioner(partitioner: ShardPartitioner | str) -> ShardPartitioner:
    """Resolve a partitioner strategy instance or registered name."""
    if isinstance(partitioner, ShardPartitioner):
        return partitioner
    try:
        factory = _PARTITIONERS[partitioner]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown partitioner {partitioner!r}; registered partitioners: "
            f"{', '.join(partitioner_names())}"
        ) from None
    return factory()


register_partitioner("hash", HashPartitioner)
register_partitioner("routed", RoutedPartitioner)


# ----------------------------------------------------------------------
# executor strategies
# ----------------------------------------------------------------------
class ShardExecutor(abc.ABC):
    """Strategy that evaluates per-shard work and collects the results.

    A strategy is bound to exactly one :class:`ShardedEngine`
    (:meth:`bind`), sees every registration change
    (:meth:`notify_register` / :meth:`notify_unregister`), and is closed
    with the engine.  The two evaluation hooks:

    * :meth:`map_shards` runs the given zero-argument jobs (one per
      *candidate* shard — routed configurations may pass fewer jobs than
      shards) and returns their results in job order — phase-2 work
      (``match_fulfilled``) flows through it;
    * :meth:`match_batch_events` may claim full two-phase batch matching
      (events in, per-event matched-id sets out); returning ``None``
      defers to the in-process pipeline.
    """

    #: Strategy name as it appears in specs and ``executor=`` options.
    name: str = "abstract"

    def bind(self, engine: "ShardedEngine") -> None:
        """Attach to the owning engine; called once, before any work."""
        self._engine = engine

    def close(self) -> None:
        """Release pools/workers; the engine is unusable through this
        strategy afterwards."""

    def notify_register(self, shard: int, subscription: Subscription) -> None:
        """``subscription`` was registered on shard ``shard``."""

    def notify_unregister(self, shard: int, subscription_id: int) -> None:
        """``subscription_id`` was unregistered from shard ``shard``."""

    @abc.abstractmethod
    def map_shards(self, jobs: Sequence[Callable[[], T]]) -> list[T]:
        """Run the per-shard jobs; return results in job order."""

    def match_batch_events(
        self,
        events: Sequence[Event],
        shard_events: Sequence[Sequence[int]] | None = None,
    ) -> list[set[int]] | None:
        """Full two-phase batch matching, or ``None`` to use the
        in-process phase-1 + ``match_fulfilled_batch`` pipeline.

        ``shard_events[s]``, when given, lists (ascending) the indices
        of the events shard ``s`` is a candidate for — the executor must
        evaluate only those and may skip shards with an empty list.
        ``None`` means every shard sees every event.
        """
        return None


class SerialExecutor(ShardExecutor):
    """Evaluate shards in order on the calling thread (deterministic)."""

    name = "serial"

    def map_shards(self, jobs: Sequence[Callable[[], T]]) -> list[T]:
        return [job() for job in jobs]


class ThreadExecutor(ShardExecutor):
    """Evaluate shards concurrently on a lazily-created thread pool."""

    name = "thread"

    def __init__(self) -> None:
        self._pool: ThreadPoolExecutor | None = None

    def map_shards(self, jobs: Sequence[Callable[[], T]]) -> list[T]:
        if len(jobs) <= 1:
            return [job() for job in jobs]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._engine.shard_count,
                thread_name_prefix="repro-shard",
            )
        return list(self._pool.map(lambda job: job(), jobs))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def _shard_worker_main(
    connection,
    spec: EngineSpec,
    subscriptions: list[Subscription],
) -> None:
    """Worker loop: rebuild the shard from spec + slice, serve commands.

    Runs in a forked child.  The engine is rebuilt on a *private*
    registry and index manager — predicate ids here mean nothing to the
    parent, which is why the protocol only ever carries events, whole
    subscriptions, and matched subscription ids.
    """
    try:
        engine = spec.build()
        for subscription in subscriptions:
            engine.register(subscription)
    except BaseException:
        connection.send(("error", traceback.format_exc()))
        connection.close()
        return
    connection.send(("ready", engine.subscription_count))
    while True:
        try:
            command, payload = connection.recv()
        except EOFError:
            break
        try:
            if command == "match_batch":
                connection.send(("ok", engine.match_batch(payload)))
            elif command == "register":
                engine.register(payload)
                connection.send(("ok", None))
            elif command == "unregister":
                engine.unregister(payload)
                connection.send(("ok", None))
            elif command == "stop":
                connection.send(("ok", None))
                break
            else:
                connection.send(("error", f"unknown command {command!r}"))
        except BaseException:
            connection.send(("error", traceback.format_exc()))
    engine.close()
    connection.close()


class ShardWorkerError(RuntimeError):
    """A shard worker process reported a failure."""


class ProcessExecutor(ShardExecutor):
    """One forked, long-lived worker process per shard.

    Workers are started lazily on the first batch match (so purely
    serial usage never pays the fork) and rebuilt shards stay current:
    registrations after start are forwarded as commands.  Requires the
    ``fork`` start method — on platforms without it construction of the
    worker pool raises, and callers should use ``serial`` or ``thread``.
    """

    name = "process"

    def __init__(self) -> None:
        self._connections: list = []
        self._processes: list = []
        self._started = False

    # -- lifecycle ------------------------------------------------------
    def _ensure_started(self) -> None:
        if self._started:
            return
        engine = self._engine
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ShardWorkerError(
                "the process executor needs the 'fork' start method "
                "(unavailable on this platform); use executor='serial' "
                "or 'thread'"
            )
        context = multiprocessing.get_context("fork")
        slices = engine.shard_subscription_slices()
        try:
            for shard, subscriptions in enumerate(slices):
                parent_end, child_end = context.Pipe()
                process = context.Process(
                    target=_shard_worker_main,
                    args=(child_end, engine.spec, subscriptions),
                    name=f"repro-shard-{shard}",
                    daemon=True,
                )
                process.start()
                child_end.close()
                self._connections.append(parent_end)
                self._processes.append(process)
            for shard, connection in enumerate(self._connections):
                status, payload = connection.recv()
                if status != "ready":
                    raise ShardWorkerError(
                        f"shard worker {shard} failed to build:\n{payload}"
                    )
        except BaseException:
            # tear everything down so a retry starts from scratch instead
            # of appending a second worker set to a half-built pool
            self.close()
            raise
        self._started = True

    def close(self) -> None:
        for connection in self._connections:
            try:
                connection.send(("stop", None))
                connection.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            connection.close()
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():
                process.terminate()
        self._connections = []
        self._processes = []
        self._started = False

    # -- command plumbing ----------------------------------------------
    def _command_one(self, shard: int, command: str, payload):
        """One command round-trip; any failure **stops the pool**.

        The parent's in-process shards are the authoritative state.  If
        a worker cannot be kept in sync (command error, dead pipe), the
        only safe move is to kill the workers: the next batch match
        rebuilds them from the parent's current slices.  Leaving them
        running would silently return match sets from divergent state.
        """
        connection = self._connections[shard]
        try:
            connection.send((command, payload))
            status, result = connection.recv()
        except (BrokenPipeError, EOFError, OSError) as error:
            self.close()
            raise ShardWorkerError(
                f"shard worker {shard} died during {command!r}: {error}"
            ) from error
        if status != "ok":
            self.close()
            raise ShardWorkerError(
                f"shard worker {shard} failed on {command!r}:\n{result}"
            )
        return result

    def notify_register(self, shard: int, subscription: Subscription) -> None:
        if self._started:
            self._command_one(shard, "register", subscription)

    def notify_unregister(self, shard: int, subscription_id: int) -> None:
        if self._started:
            self._command_one(shard, "unregister", subscription_id)

    # -- evaluation -----------------------------------------------------
    def map_shards(self, jobs: Sequence[Callable[[], T]]) -> list[T]:
        # Phase-2-only work takes parent-registry-relative predicate ids,
        # which a rebuilt worker cannot interpret; run it in-process.
        return [job() for job in jobs]

    def match_batch_events(
        self,
        events: Sequence[Event],
        shard_events: Sequence[Sequence[int]] | None = None,
    ) -> list[set[int]]:
        self._ensure_started()
        payload = list(events)
        if shard_events is None:
            shard_events = [range(len(payload))] * len(self._connections)
        live = [
            (shard, list(indices))
            for shard, indices in enumerate(shard_events)
            if indices
        ]
        results: list[set[int]] = [set() for _ in payload]
        # Scatter each worker's candidate-event subset first, then
        # gather — the send/recv split is where the parallelism comes
        # from, and pruned shards are never contacted at all.
        try:
            for shard, indices in live:
                if len(indices) == len(payload):
                    subset = payload
                else:
                    subset = [payload[i] for i in indices]
                self._connections[shard].send(("match_batch", subset))
            for shard, indices in live:
                status, result = self._connections[shard].recv()
                if status != "ok":
                    raise ShardWorkerError(
                        f"shard worker {shard} failed on 'match_batch':\n{result}"
                    )
                for position, index in enumerate(indices):
                    results[index] |= result[position]
        except BaseException:
            # fail-stop: a half-drained pool would misalign every later
            # round-trip; the next call restarts from parent state
            self.close()
            raise
        return results


#: executor name -> zero-argument strategy factory
_EXECUTORS: dict[str, Callable[[], ShardExecutor]] = {}


def register_executor(
    name: str, factory: Callable[[], ShardExecutor], *, override: bool = False
) -> None:
    """Add an executor strategy under ``name`` (pluggable, like engines)."""
    if not name:
        raise ValueError("executor name must be non-empty")
    if name in _EXECUTORS and not override:
        raise ValueError(
            f"executor {name!r} is already registered; pass override=True "
            "to replace it"
        )
    _EXECUTORS[name] = factory


def executor_names() -> tuple[str, ...]:
    """The registered executor strategy names, in registration order."""
    return tuple(_EXECUTORS)


def make_executor(executor: ShardExecutor | str) -> ShardExecutor:
    """Resolve an executor strategy instance or registered name."""
    if isinstance(executor, ShardExecutor):
        return executor
    try:
        factory = _EXECUTORS[executor]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown executor {executor!r}; registered executors: "
            f"{', '.join(executor_names())}"
        ) from None
    return factory()


register_executor("serial", SerialExecutor)
register_executor("thread", ThreadExecutor)
register_executor("process", ProcessExecutor)


# ----------------------------------------------------------------------
# the sharded engine
# ----------------------------------------------------------------------
class ShardedEngine(FilterEngine):
    """Partition subscriptions across N inner engines built from one spec.

    Parameters
    ----------
    spec:
        Inner-engine configuration — an
        :class:`~repro.core.registry.EngineSpec`, a registry name, or
        ``None`` for the default non-canonical engine.  The spec may not
        itself be sharded (no nesting).
    shards:
        Number of inner shards (>= 1).
    partitioner:
        Placement strategy: a registered name (``"hash"``, ``"routed"``)
        or a :class:`ShardPartitioner` instance.
    executor:
        Evaluation strategy: a registered name (``"serial"``,
        ``"thread"``, ``"process"``) or a :class:`ShardExecutor`
        instance.
    registry / indexes:
        Shared phase-1 state, as for every engine; all shards share it,
        so one phase-1 pass serves every shard.
    """

    name = "sharded"

    def __init__(
        self,
        spec: EngineSpec | str | None = None,
        *,
        shards: int = 2,
        partitioner: ShardPartitioner | str = "hash",
        executor: ShardExecutor | str = "serial",
        registry: PredicateRegistry | None = None,
        indexes: IndexManager | None = None,
    ) -> None:
        super().__init__(registry=registry, indexes=indexes)
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if spec is None:
            spec = EngineSpec("noncanonical")
        elif isinstance(spec, str):
            spec = EngineSpec(spec)
        if any(
            option in spec.options
            for option in ("shards", "executor", "partitioner")
        ):
            raise ValueError(
                f"inner spec {spec!r} is itself sharded; nested sharding "
                "is not supported"
            )
        self.spec = spec
        self.shard_count = shards
        self._shards: list[FilterEngine] = [
            spec.build(registry=self.registry, indexes=self.indexes)
            for _ in range(shards)
        ]
        self._subscriptions: dict[int, Subscription] = {}
        self._partitioner = make_partitioner(partitioner)
        self._partitioner.bind(shards)
        self._executor = make_executor(executor)
        self._executor.bind(self)
        self.name = f"{self._shards[0].name}×{shards}"
        # one shared phase-1 bit matrix can feed every shard's phase 2
        # iff every shard actually overrides the matrix hook; otherwise
        # the set pipeline stays (expanding the matrix per shard would
        # multiply the transpose cost by the shard count)
        self._matrix_capable = all(
            type(shard).match_fulfilled_matrix
            is not FilterEngine.match_fulfilled_matrix
            for shard in self._shards
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def executor_name(self) -> str:
        """Name of the active executor strategy."""
        return self._executor.name

    @property
    def partitioner_name(self) -> str:
        """Name of the active partitioner strategy."""
        return self._partitioner.name

    @property
    def partitioner(self) -> ShardPartitioner:
        """The active partitioner strategy instance."""
        return self._partitioner

    @property
    def shards(self) -> tuple[FilterEngine, ...]:
        """The in-process shard engines, in shard order."""
        return tuple(self._shards)

    def shard_of(self, subscription_id: int) -> int:
        """The shard currently owning ``subscription_id``."""
        return self._partitioner.shard_of(subscription_id)

    def shard_subscription_slices(self) -> list[list[Subscription]]:
        """Per-shard subscription lists, each in registration (id) order.

        This plus :attr:`spec` is everything a worker needs to rebuild a
        shard — the contract the process executor relies on.
        """
        slices: list[list[Subscription]] = [[] for _ in self._shards]
        for sid in sorted(self._subscriptions):
            slices[self.shard_of(sid)].append(self._subscriptions[sid])
        return slices

    def shard_stats(self) -> list[dict]:
        """Per-shard stats dicts (shard index added to each)."""
        stats = []
        for index, shard in enumerate(self._shards):
            entry = shard.stats()
            entry["shard"] = index
            stats.append(entry)
        return stats

    @property
    def counters(self) -> MatchCounters:
        """Aggregated phase-2 work counters, summed across the shards.

        The parent contributes its own routing counters
        (``shards_probed``/``shards_pruned``); probe work is in-process
        only — batches the process executor routes to its fork workers
        are probed in the workers, not here.
        """
        total = MatchCounters(**self._counters.snapshot())
        for shard in self._shards:
            total = total + shard.counters
        return total

    def reset_counters(self) -> None:
        self._counters.reset()
        for shard in self._shards:
            shard.reset_counters()

    def stats(self) -> dict:
        entry = super().stats()
        entry["shards"] = self.shard_count
        entry["executor"] = self.executor_name
        entry["partitioner"] = self.partitioner_name
        return entry

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, subscription: Subscription) -> None:
        """Route to the shard the partitioner picks; mirror the change."""
        sid = subscription.subscription_id
        if sid in self._subscriptions:
            raise ValueError(f"subscription id {sid} already registered")
        shard = self._partitioner.assign(subscription)
        try:
            # may raise UnsupportedSubscriptionError
            self._shards[shard].register(subscription)
        except BaseException:
            self._partitioner.forget(sid)
            raise
        self._subscriptions[sid] = subscription
        self._executor.notify_register(shard, subscription)
        self._maybe_rebalance()

    def unregister(self, subscription_id: int) -> None:
        if subscription_id not in self._subscriptions:
            raise UnknownSubscriptionError(subscription_id)
        shard = self._partitioner.shard_of(subscription_id)
        self._shards[shard].unregister(subscription_id)
        self._partitioner.forget(subscription_id)
        del self._subscriptions[subscription_id]
        self._executor.notify_unregister(shard, subscription_id)
        self._maybe_rebalance()

    def _maybe_rebalance(self) -> None:
        """Apply the partitioner's migration plan, if any.

        Moves flow through the ordinary shard register/unregister calls
        plus the executor notify protocol, so process workers receive
        the same migrations the in-process shards do and stay current.
        """
        for sid, src, dst in self._partitioner.plan_rebalance():
            subscription = self._subscriptions[sid]
            self._shards[src].unregister(sid)
            self._shards[dst].register(subscription)
            self._executor.notify_unregister(src, sid)
            self._executor.notify_register(dst, subscription)

    @property
    def subscription_count(self) -> int:
        return len(self._subscriptions)

    @property
    def stored_subscription_count(self) -> int:
        return sum(shard.stored_subscription_count for shard in self._shards)

    def subscription_ids(self) -> frozenset[int]:
        return frozenset(self._subscriptions)

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def match(self, event: Event) -> set[int]:
        """Two-phase matching with shard pruning: phase 1 runs once, and
        phase 2 visits only the partitioner's candidate shards."""
        candidates = sorted(self._partitioner.candidate_shards(event))
        self._counters.shards_probed += len(candidates)
        self._counters.shards_pruned += self.shard_count - len(candidates)
        if not candidates:
            return set()
        fulfilled = self.indexes.match(event)
        answers = self._executor.map_shards(
            [
                lambda shard=shard: self._shards[shard].match_fulfilled(fulfilled)
                for shard in candidates
            ]
        )
        return set().union(*answers)

    def match_fulfilled(self, fulfilled_ids: AbstractSet[int]) -> set[int]:
        """Union of the shards' phase-2 answers, via the executor.

        No event is in scope here, so no shard pruning: fulfilled ids
        alone cannot tell which event-space region produced them.
        """
        answers = self._executor.map_shards(
            [
                lambda shard=shard: shard.match_fulfilled(fulfilled_ids)
                for shard in self._shards
            ]
        )
        return set().union(*answers)

    def match_fulfilled_batch(
        self, fulfilled_sets: Sequence[AbstractSet[int]]
    ) -> list[set[int]]:
        answers = self._executor.map_shards(
            [
                lambda shard=shard: shard.match_fulfilled_batch(fulfilled_sets)
                for shard in self._shards
            ]
        )
        return [
            set().union(*(shard_sets[i] for shard_sets in answers))
            for i in range(len(fulfilled_sets))
        ]

    def _partition_events(self, events: Sequence[Event]) -> list[list[int]]:
        """Per-shard candidate-event index lists (ascending), counted.

        ``result[s]`` holds the indices of the events shard ``s`` must
        evaluate; events routed away from a shard are counted as pruned.
        """
        shard_events: list[list[int]] = [[] for _ in range(self.shard_count)]
        probed = 0
        partitioner = self._partitioner
        for index, event in enumerate(events):
            candidates = partitioner.candidate_shards(event)
            for shard in candidates:
                shard_events[shard].append(index)
            probed += len(candidates)
        self._counters.shards_probed += probed
        self._counters.shards_pruned += (
            self.shard_count * len(events) - probed
        )
        return shard_events

    def match_batch(self, events: Sequence[Event]) -> list[set[int]]:
        """Batch matching; the executor may claim the whole pipeline.

        A routing partitioner first computes each event's candidate
        shard subset; pruned shards are never probed.  The process
        executor then ships each worker only its candidate events; the
        in-process strategies run one shared phase-1 pass and fan
        phase 2 out across the candidate shards — sliced from one
        column-major bit matrix (:meth:`FulfilledMatrix.select`) when
        every shard speaks the PR 8 kernel, as per-event id sets
        otherwise.
        """
        events = list(events)
        if not events:
            return []
        if self._partitioner.routes:
            shard_events = self._partition_events(events)
        else:
            shard_events = None
            self._counters.shards_probed += self.shard_count * len(events)
        routed = self._executor.match_batch_events(events, shard_events)
        if routed is not None:
            return routed
        if shard_events is None:
            return self._match_batch_all(events)
        results: list[set[int]] = [set() for _ in events]
        live = [
            (shard, indices)
            for shard, indices in enumerate(shard_events)
            if indices
        ]
        if not live:
            return results
        if self._matrix_capable and len(events) > 1:
            matrix = self.indexes.match_batch_bits(events)
            answers = self._executor.map_shards(
                [
                    lambda shard=shard, indices=indices: self._shards[
                        shard
                    ].match_fulfilled_matrix(matrix.select(indices))
                    for shard, indices in live
                ]
            )
        else:
            fulfilled = self.indexes.match_batch(events)
            answers = self._executor.map_shards(
                [
                    lambda shard=shard, indices=indices: self._shards[
                        shard
                    ].match_fulfilled_batch([fulfilled[i] for i in indices])
                    for shard, indices in live
                ]
            )
        for (shard, indices), shard_sets in zip(live, answers):
            for position, index in enumerate(indices):
                results[index] |= shard_sets[position]
        return results

    def _match_batch_all(self, events: list[Event]) -> list[set[int]]:
        """Full-fan-out batch path (non-routing partitioners)."""
        if self._matrix_capable and len(events) > 1:
            matrix = self.indexes.match_batch_bits(events)
            answers = self._executor.map_shards(
                [
                    lambda shard=shard: shard.match_fulfilled_matrix(matrix)
                    for shard in self._shards
                ]
            )
            return [
                set().union(*(shard_sets[i] for shard_sets in answers))
                for i in range(len(events))
            ]
        return self.match_fulfilled_batch(self.indexes.match_batch(events))

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    def memory_breakdown(self) -> Mapping[str, int]:
        """Aggregated per-structure bytes, summed across shards.

        The partitioner's routing digest is charged on top (key
        ``shard_router``): region groups, merged hulls and the anchor
        point index are phase-2 state the routed configuration pays for
        its pruning, exactly like the engines' own tables — see the
        memory-policy note in DESIGN §9/§10.  The hash partitioner
        charges nothing, keeping ``shards=1`` memory identical to the
        unsharded engine.
        """
        total: dict[str, int] = {}
        for shard in self._shards:
            for key, value in shard.memory_breakdown().items():
                total[key] = total.get(key, 0) + value
        for key, value in self._partitioner.memory_breakdown().items():
            total[key] = total.get(key, 0) + value
        return total

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the executor (workers, pools) and the shards."""
        self._executor.close()
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedEngine({self.spec.name!r}, shards={self.shard_count}, "
            f"partitioner={self.partitioner_name!r}, "
            f"executor={self.executor_name!r}, "
            f"subscriptions={self.subscription_count})"
        )
