"""Matching-tree engine: the multi-dimensional baseline (paper §2.1).

Paper §2.1's third algorithm category applies **multi-dimensional
indexes** — "popular multi-dimensional algorithms are tree-based, such as
the approaches from Gough [9] and Aguilera [1].  There traversing a
matching tree results in obtaining all matching subscriptions, since
only conjunctive subscriptions can be used."

This engine implements that design: conjunctive subscriptions (arbitrary
Boolean ones are DNF-transformed first, like the counting baselines) are
arranged in a decision tree with one level per attribute.  Each inner
node holds the predicate-labelled edges of subscriptions constraining
that attribute plus a *don't-care* edge; matching walks the tree once,
following every satisfied edge — "matching using multi-dimensional
indexes allows for the evaluation of required predicates only, i.e.,
evaluated predicates depend on already fulfilled ones."

The paper's space argument is visible in the implementation:
"multi-dimensional ones might index predicates several times depending
on other predicates of their subscriptions" — a predicate appears once
per distinct tree path that reaches it, and the don't-care chains add
per-node overhead, which is why :meth:`memory_breakdown` typically
exceeds the one-dimensional engines' (claim §2.1, bench C5).
"""

from __future__ import annotations

from typing import AbstractSet, Mapping, Sequence

from ..events.event import Event
from ..indexes.manager import IndexManager
from ..memory.cost_model import DEFAULT_COST_MODEL, CostModel
from ..predicates.registry import PredicateRegistry
from ..subscriptions.normal_forms import canonical_dnf
from ..subscriptions.subscription import Subscription
from .base import (
    FilterEngine,
    UnknownSubscriptionError,
    UnsupportedSubscriptionError,
)


class _TreeNode:
    """One level of the matching tree (one attribute).

    ``edges`` maps a frozenset of predicate ids (the clause's constraints
    on this attribute — usually a single predicate) to the child node;
    ``star`` is the don't-care child; ``results`` holds the subscription
    ids of clauses whose constraints are exhausted at this depth.
    """

    __slots__ = ("edges", "star", "results")

    def __init__(self) -> None:
        self.edges: dict[frozenset[int], "_TreeNode"] = {}
        self.star: "_TreeNode | None" = None
        self.results: set[int] = set()


class MatchingTreeEngine(FilterEngine):
    """Conjunctive matching via a per-attribute decision tree.

    Parameters
    ----------
    complement_operators / max_clauses:
        As for :class:`~repro.core.counting.CountingEngine` — the
        canonical DNF pipeline feeds this engine too.
    """

    name = "matching-tree"

    def __init__(
        self,
        *,
        complement_operators: bool = False,
        max_clauses: int = 4_000_000,
        registry: PredicateRegistry | None = None,
        indexes: IndexManager | None = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        super().__init__(registry=registry, indexes=indexes)
        self._complement_operators = complement_operators
        self._max_clauses = max_clauses
        self._cost_model = cost_model
        #: attribute name -> tree level (insertion order = level order)
        self._levels: list[str] = []
        self._level_of: dict[str, int] = {}
        self._root = _TreeNode()
        #: id(s) -> [per-clause (level constraints, pids)] for unsubscription
        self._clauses: dict[int, list[dict[int, frozenset[int]]]] = {}
        self._clause_count = 0
        self._subscribers: dict[int, str | None] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, subscription: Subscription) -> None:
        sid = subscription.subscription_id
        if sid in self._clauses:
            raise ValueError(f"subscription id {sid} already registered")
        dnf = canonical_dnf(
            subscription.expression,
            max_clauses=self._max_clauses,
            complement_operators=self._complement_operators,
        )
        prepared: list[dict[int, frozenset[int]]] = []
        for clause in dnf:
            if clause.has_negative_literals():
                raise UnsupportedSubscriptionError(
                    "matching trees host conjunctions of positive predicates "
                    f"only; cannot register {clause!r}"
                )
            by_level: dict[int, set[int]] = {}
            for predicate in clause.positive_predicates():
                pid = self.registry.register(predicate)
                self.indexes.add(predicate, pid)
                level = self._level_for(predicate.attribute)
                by_level.setdefault(level, set()).add(pid)
            prepared.append(
                {level: frozenset(pids) for level, pids in by_level.items()}
            )
        for constraints in prepared:
            self._insert_clause(constraints, sid)
            self._clause_count += 1
        self._clauses[sid] = prepared
        self._subscribers[sid] = subscription.subscriber

    def _level_for(self, attribute: str) -> int:
        level = self._level_of.get(attribute)
        if level is None:
            level = len(self._levels)
            self._level_of[attribute] = level
            self._levels.append(attribute)
        return level

    def _insert_clause(
        self, constraints: Mapping[int, frozenset[int]], sid: int
    ) -> None:
        node = self._root
        deepest = max(constraints) if constraints else -1
        for level in range(deepest + 1):
            key = constraints.get(level)
            if key is None:
                if node.star is None:
                    node.star = _TreeNode()
                node = node.star
            else:
                child = node.edges.get(key)
                if child is None:
                    child = _TreeNode()
                    node.edges[key] = child
                node = child
        node.results.add(sid)

    # ------------------------------------------------------------------
    # unsubscription
    # ------------------------------------------------------------------
    def unregister(self, subscription_id: int) -> None:
        prepared = self._clauses.pop(subscription_id, None)
        if prepared is None:
            raise UnknownSubscriptionError(subscription_id)
        for constraints in prepared:
            self._remove_clause(self._root, 0, constraints, subscription_id)
            self._clause_count -= 1
            for pids in constraints.values():
                for pid in pids:
                    self._release_predicate(pid)
        del self._subscribers[subscription_id]

    def _remove_clause(
        self,
        node: _TreeNode,
        level: int,
        constraints: Mapping[int, frozenset[int]],
        sid: int,
    ) -> bool:
        """Remove one clause; returns True when ``node`` became empty."""
        deepest = max(constraints) if constraints else -1
        if level > deepest:
            node.results.discard(sid)
        else:
            key = constraints.get(level)
            if key is None:
                child = node.star
                if child is not None and self._remove_clause(
                    child, level + 1, constraints, sid
                ):
                    node.star = None
            else:
                child = node.edges.get(key)
                if child is not None and self._remove_clause(
                    child, level + 1, constraints, sid
                ):
                    del node.edges[key]
        return not node.results and not node.edges and node.star is None

    # ------------------------------------------------------------------
    # counts
    # ------------------------------------------------------------------
    @property
    def subscription_count(self) -> int:
        return len(self._clauses)

    @property
    def stored_subscription_count(self) -> int:
        return self._clause_count

    def subscription_ids(self) -> frozenset[int]:
        return frozenset(self._clauses)

    def subscriber_of(self, subscription_id: int) -> str | None:
        """The subscriber registered for ``subscription_id``."""
        try:
            return self._subscribers[subscription_id]
        except KeyError:
            raise UnknownSubscriptionError(subscription_id) from None

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def match_fulfilled(self, fulfilled_ids: AbstractSet[int]) -> set[int]:
        """Walk the tree following the don't-care edge plus every edge
        whose predicates are all fulfilled."""
        matched: set[int] = set()
        visited = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            visited += 1
            if node.results:
                matched.update(node.results)
            if node.star is not None:
                stack.append(node.star)
            for key, child in node.edges.items():
                if key <= fulfilled_ids:
                    stack.append(child)
        counters = self._counters
        counters.phase2_calls += 1
        counters.candidates_probed += visited  # tree nodes walked
        counters.matches_found += len(matched)
        return matched

    def match_fulfilled_batch(
        self, fulfilled_sets: Sequence[AbstractSet[int]]
    ) -> list[set[int]]:
        """Batch tree walking: identical assignments walk the tree once.

        Batched workloads with repeated attribute values (the Zipf case)
        produce repeated fulfilled-id sets; the walk is memoized on the
        frozen assignment so each distinct one traverses the tree once
        per batch.
        """
        memo: dict[frozenset[int], set[int]] = {}
        results: list[set[int]] = []
        counters = self._counters
        for fulfilled_ids in fulfilled_sets:
            key = frozenset(fulfilled_ids)
            cached = memo.get(key)
            if cached is None:
                cached = memo[key] = self.match_fulfilled(key)
            else:
                # memo hit: an answer was produced without walking —
                # a call with zero probes, which is the point of the memo
                counters.phase2_calls += 1
                counters.matches_found += len(cached)
            results.append(set(cached))
        return results

    def match_single_step(self, event: Event) -> set[int]:
        """One-step multi-dimensional matching, straight off the event.

        Unlike :meth:`match` (which reuses the shared phase-1 indexes for
        comparability with the other engines), this walks the tree
        evaluating edge predicates against the event directly — "one-
        dimensional index structures need two steps to determine matching
        subscriptions, multi-dimensional ones allow filtering in one
        step" (§2.1).
        """
        matched: set[int] = set()
        predicate_of = self.registry.predicate
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.results:
                matched.update(node.results)
            if node.star is not None:
                stack.append(node.star)
            for key, child in node.edges.items():
                if all(predicate_of(pid).matches(event) for pid in key):
                    stack.append(child)
        return matched

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    def memory_breakdown(self) -> Mapping[str, int]:
        """Tree bytes: per node a star pointer, per edge its predicate
        ids plus a child pointer, per result a subscription id."""
        model = self._cost_model
        nodes = 0
        edge_predicate_refs = 0
        edge_count = 0
        result_refs = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            nodes += 1
            result_refs += len(node.results)
            if node.star is not None:
                stack.append(node.star)
            for key, child in node.edges.items():
                edge_count += 1
                edge_predicate_refs += len(key)
                stack.append(child)
        return {
            "tree_nodes": nodes * model.pointer_bytes,
            "tree_edges": (
                edge_count * model.pointer_bytes
                + edge_predicate_refs * model.predicate_id_bytes
            ),
            "result_sets": result_refs * model.subscription_id_bytes,
        }
