"""Engine registry: construct matching engines from declarative specs.

The paper motivates deployments on heterogeneous peer devices (§1),
which makes engine choice a *configuration* concern: a broker on a
laptop may run the paged engine, a well-equipped hub the in-memory
non-canonical engine, and an experiment sweeps all of them.  This module
turns that choice into data — a string name or an :class:`EngineSpec` —
so callers never import concrete engine classes:

>>> from repro.core.registry import build_engine
>>> build_engine("counting").name
'counting'

Canonical names
---------------
``"noncanonical"``, ``"counting"``, ``"counting-variant"``,
``"matching-tree"``, ``"bruteforce"``, ``"paged"``.  Each engine's
human-readable :attr:`~repro.core.base.FilterEngine.name` (e.g.
``"non-canonical"``, ``"brute-force"``, ``"non-canonical-paged"``) is
accepted as an alias and normalized to the canonical form.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Callable, Mapping

from ..indexes.manager import IndexManager
from ..predicates.registry import PredicateRegistry
from .base import FilterEngine
from .bruteforce import BruteForceEngine
from .counting import CountingEngine, CountingVariantEngine
from .matching_tree import MatchingTreeEngine
from .noncanonical import NonCanonicalEngine
from .paged import DiskTreeStore, PagedNonCanonicalEngine

EngineFactory = Callable[..., FilterEngine]

#: canonical name -> factory(**options, registry=..., indexes=...)
_FACTORIES: dict[str, EngineFactory] = {}
#: alias (including the canonical name itself) -> canonical name
_ALIASES: dict[str, str] = {}
#: concrete engine class -> canonical name (for :func:`spec_of`)
_CLASSES: dict[type, str] = {}


class UnknownEngineError(KeyError):
    """Raised when an engine name is not in the registry."""

    def __init__(self, name: str) -> None:
        super().__init__(
            f"unknown engine {name!r}; registered engines: "
            f"{', '.join(engine_names())}"
        )
        self.name = name


def canonical_engine_name(name: str) -> str:
    """Resolve ``name`` (canonical or alias) to its canonical form."""
    try:
        return _ALIASES[name]
    except KeyError:
        raise UnknownEngineError(name) from None


def engine_names() -> tuple[str, ...]:
    """The canonical engine names, in registration order."""
    return tuple(_FACTORIES)


def register_engine(
    name: str,
    factory: EngineFactory,
    *,
    engine_class: type | None = None,
    aliases: tuple[str, ...] = (),
    override: bool = False,
) -> None:
    """Add an engine under ``name`` (plus optional aliases).

    ``factory`` must accept keyword ``registry`` and ``indexes`` (shared
    phase-1 state) plus any engine-specific options.  ``engine_class``,
    when given, lets :func:`spec_of` map instances back to ``name``.
    Re-registering an existing name (or alias) is an error unless
    ``override=True`` — silently displacing an engine would corrupt
    every spec naming it.
    """
    if not name:
        raise ValueError("engine name must be non-empty")
    if name in _ALIASES and _ALIASES[name] != name:
        raise ValueError(f"{name!r} is already an alias of {_ALIASES[name]!r}")
    if name in _FACTORIES and not override:
        raise ValueError(
            f"engine {name!r} is already registered; pass override=True "
            "to replace it"
        )
    _FACTORIES[name] = factory
    _ALIASES[name] = name
    for alias in aliases:
        existing = _ALIASES.get(alias)
        if existing is not None and existing != name:
            raise ValueError(f"alias {alias!r} already maps to {existing!r}")
        _ALIASES[alias] = name
    if engine_class is not None:
        _CLASSES[engine_class] = name


#: ``"name×4"`` / ``"name x4"`` — the sharded-spec name shorthand.
_SHARD_SHORTHAND = re.compile(r"^(?P<base>.*?)\s*[×x]\s*(?P<count>\d+)$")


@dataclass(frozen=True)
class EngineSpec:
    """A declarative engine configuration: a name plus constructor options.

    Specs are plain data — they serialize, compare, and sweep.  The name
    is normalized to canonical form on construction, so
    ``EngineSpec("non-canonical") == EngineSpec("noncanonical")``.

    >>> spec = EngineSpec("noncanonical", {"codec": "varint"})
    >>> spec.build().name
    'non-canonical'

    Three reserved options describe the **sharded runtime** rather than
    the inner engine: ``shards`` (partition the subscriptions across
    that many inner engines, see :mod:`repro.core.sharded`),
    ``partitioner`` (the subscription placement strategy, default
    ``"hash"``; ``"routed"`` adds event-space shard pruning) and
    ``executor`` (the shard evaluation strategy, default ``"serial"``).
    ``EngineSpec("noncanonical×4")`` is shorthand for
    ``EngineSpec("noncanonical", {"shards": 4})`` — sharded configs
    serialize, compare, and sweep like any engine.
    """

    name: str
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        name = self.name
        options = dict(self.options)
        try:
            canonical = canonical_engine_name(name)
        except UnknownEngineError:
            shorthand = _SHARD_SHORTHAND.match(name)
            if shorthand is None:
                raise
            canonical = canonical_engine_name(shorthand.group("base"))
            count = int(shorthand.group("count"))
            if options.get("shards", count) != count:
                raise ValueError(
                    f"spec name {name!r} says {count} shards but options "
                    f"say shards={options['shards']}"
                )
            options["shards"] = count
        object.__setattr__(self, "name", canonical)
        object.__setattr__(self, "options", MappingProxyType(options))

    def build(
        self,
        *,
        registry: PredicateRegistry | None = None,
        indexes: IndexManager | None = None,
    ) -> FilterEngine:
        """Construct the engine, optionally on shared phase-1 state.

        A spec carrying ``shards`` builds a
        :class:`~repro.core.sharded.ShardedEngine` whose inner shards
        are built from the remaining options.
        """
        options = dict(self.options)
        shards = options.pop("shards", None)
        partitioner = options.pop("partitioner", None)
        executor = options.pop("executor", None)
        if shards is not None:
            from .sharded import ShardedEngine

            return ShardedEngine(
                EngineSpec(self.name, options),
                shards=shards,
                partitioner=partitioner if partitioner is not None else "hash",
                executor=executor if executor is not None else "serial",
                registry=registry,
                indexes=indexes,
            )
        if executor is not None:
            raise ValueError(
                "the executor= option is only meaningful together with shards="
            )
        if partitioner is not None:
            raise ValueError(
                "the partitioner= option is only meaningful together with "
                "shards="
            )
        return _FACTORIES[self.name](registry=registry, indexes=indexes, **options)

    def with_options(self, **options: Any) -> EngineSpec:
        """A copy of this spec with extra/overridden options."""
        return EngineSpec(self.name, {**self.options, **options})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EngineSpec):
            return NotImplemented
        return self.name == other.name and dict(self.options) == dict(other.options)

    def __hash__(self) -> int:
        return hash((self.name, tuple(sorted(self.options))))


def build_engine(
    spec: EngineSpec | str,
    *,
    registry: PredicateRegistry | None = None,
    indexes: IndexManager | None = None,
    **options: Any,
) -> FilterEngine:
    """Construct an engine from a spec or a (canonical or alias) name.

    Keyword ``options`` extend/override the spec's own options.
    """
    if isinstance(spec, str):
        spec = EngineSpec(spec)
    if options:
        spec = spec.with_options(**options)
    return spec.build(registry=registry, indexes=indexes)


def resolve_engine(
    engine: FilterEngine | EngineSpec | str | None,
    *,
    default: EngineSpec | str = "noncanonical",
    registry: PredicateRegistry | None = None,
    indexes: IndexManager | None = None,
) -> FilterEngine:
    """Accept an engine instance, a spec, a name, or ``None`` (default).

    The single normalization point behind every API surface that takes
    an ``engine`` argument (:class:`~repro.broker.broker.Broker`, the
    overlay network, the experiment harness).
    """
    if engine is None:
        engine = default
    if isinstance(engine, FilterEngine):
        return engine
    if isinstance(engine, (str, EngineSpec)):
        return build_engine(engine, registry=registry, indexes=indexes)
    raise TypeError(f"expected an engine instance, EngineSpec, or name; got {engine!r}")


def engine_catalog() -> dict[str, type]:
    """Engine display name -> engine class, derived from the registry.

    The single source of truth behind ``repro.core.ENGINES``; includes
    every engine registered with an ``engine_class``.
    """
    return {cls.name: cls for cls in _CLASSES}


def spec_of(engine: FilterEngine) -> EngineSpec:
    """The canonical spec naming ``engine``'s kind.

    Captures engine *identity*, not construction options — round-trips
    the name (``build_engine(name)`` → ``spec_of(...)`` → same name).
    For a sharded engine, identity includes the partitioning itself:
    inner-engine name plus ``shards``/``executor`` (and ``partitioner``
    when it differs from the ``"hash"`` default, keeping pre-routing
    specs round-trip-stable).
    """
    from .sharded import ShardedEngine

    if isinstance(engine, ShardedEngine):
        options: dict[str, Any] = {
            "shards": engine.shard_count,
            "executor": engine.executor_name,
        }
        if engine.partitioner_name != "hash":
            options["partitioner"] = engine.partitioner_name
        return EngineSpec(engine.spec.name, options)
    name = _CLASSES.get(type(engine))
    if name is None:
        name = _ALIASES.get(engine.name)
    if name is None:
        raise UnknownEngineError(engine.name)
    return EngineSpec(name)


def _build_paged(
    *,
    registry: PredicateRegistry | None = None,
    indexes: IndexManager | None = None,
    store: DiskTreeStore | None = None,
    path: str | None = None,
    page_size: int | None = None,
    cache_pages: int | None = None,
    **options: Any,
) -> PagedNonCanonicalEngine:
    """Paged-engine factory: store options spell out the disk store."""
    if store is None and (path, page_size, cache_pages) != (None, None, None):
        store_options: dict[str, Any] = {}
        if page_size is not None:
            store_options["page_size"] = page_size
        if cache_pages is not None:
            store_options["cache_pages"] = cache_pages
        store = DiskTreeStore(path, **store_options)
    return PagedNonCanonicalEngine(
        store=store, registry=registry, indexes=indexes, **options
    )


register_engine(
    "noncanonical",
    NonCanonicalEngine,
    engine_class=NonCanonicalEngine,
    aliases=("non-canonical",),
)
register_engine(
    "counting",
    CountingEngine,
    engine_class=CountingEngine,
)
register_engine(
    "counting-variant",
    CountingVariantEngine,
    engine_class=CountingVariantEngine,
)
register_engine(
    "matching-tree",
    MatchingTreeEngine,
    engine_class=MatchingTreeEngine,
)
register_engine(
    "bruteforce",
    BruteForceEngine,
    engine_class=BruteForceEngine,
    aliases=("brute-force",),
)
register_engine(
    "paged",
    _build_paged,
    engine_class=PagedNonCanonicalEngine,
    aliases=("non-canonical-paged",),
)
