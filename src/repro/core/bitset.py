"""Bit-packed phase-2 kernel: predicate-bit layouts and batch bitmaps.

Phase 1 produces *sets* of fulfilled predicate ids; until PR 8, phase 2
consumed them one Python set operation at a time.  This module re-encodes
fulfillment state as packed bitmaps so the engines' hot paths become bulk
word-wise AND/OR over contiguous memory (the ``BitList``/``CompressedList``
idiom of the C++ exemplar in SNIPPETS.md Snippet 3):

* :class:`BitLayout` — a dense ``predicate id -> bit position`` mapping
  with free-list recycling and an epoch counter, owned by the
  :class:`~repro.indexes.manager.IndexManager` so every engine sharing a
  manager agrees on bit positions;
* :class:`Bitmap` — a fixed-width bitmap over ``array('Q')`` machine
  words: word-indexed set/test/clear, word-wise AND/OR/ANDNOT/NOT with
  explicit trailing-word masking, and table-driven popcount.  This is
  the explicit-word reference form; its operations are what the int
  fast path below must agree with (and the unit tests prove it);
* :class:`FulfilledMatrix` — the batch form: one *column* per predicate
  bit, each column an event-space integer whose bit ``i`` says "event
  ``i`` fulfils this predicate".  CPython's arbitrary-precision integers
  are little-endian arrays of machine words with C-level bitwise
  operators, so ``column_a & column_b`` is exactly the word-loop
  ``Bitmap.and_`` runs — minus the Python-level loop.  Evaluating a
  subscription clause over the whole batch is then a handful of int
  ANDs/ORs instead of per-event set algebra.

The module is self-contained (no ``repro`` imports) so the index manager
can import it lazily without touching the ``core`` package cycle.

Churn soundness
---------------
A bit position is recycled only through :meth:`BitLayout.release`, which
the index manager calls when a predicate id is dropped from the indexes —
and that happens only once the predicate registry's refcount hits zero,
i.e. once *no* live subscription in *any* engine sharing the manager
references the predicate.  A recycled bit therefore can never appear in
a live requirement mask, so stale bits cannot resurrect matches (the
PR 5 IntervalIndex tombstone lesson, applied by construction).  The
``epoch`` counter still advances on every release/compaction as a guard:
derived state that snapshots bit positions can detect invalidation
instead of trusting the argument above.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, Sequence

#: Bits per bitmap word; matches the ``array('Q')`` element width.
WORD_BITS = 64
_WORD_MASK = (1 << WORD_BITS) - 1

#: Table-driven popcount: set-bit count per byte value.  The C++ exemplar
#: folds nibbles through a 16-entry table; one byte per entry keeps the
#: lookup a single index on bytes-like views.
POPCOUNT8 = bytes(bin(value).count("1") for value in range(256))


def popcount(value: int) -> int:
    """Set-bit count of a non-negative int (C-level ``bit_count``).

    The int fast path of the table-driven :func:`popcount_bytes`; the
    unit tests pin the two to each other across word boundaries.
    """
    return value.bit_count()


def popcount_bytes(data: Iterable[int]) -> int:
    """Table-driven popcount over a bytes-like view of bitmap words."""
    table = POPCOUNT8
    return sum(table[byte] for byte in data)


def iter_bits(value: int) -> Iterator[int]:
    """Positions of the set bits of a non-negative int, ascending."""
    while value:
        low = value & -value
        yield low.bit_length() - 1
        value ^= low


def trailing_word_mask(nbits: int) -> int:
    """Mask selecting the valid bits of an ``nbits`` bitmap's last word.

    Full when ``nbits`` is a word multiple; otherwise the low
    ``nbits % WORD_BITS`` bits.  Every :class:`Bitmap` operation that
    could set bits past ``nbits`` (NOT, ``from_int``) applies it, so the
    invariant "bits at or above ``nbits`` are zero" always holds.
    """
    remainder = nbits % WORD_BITS
    return _WORD_MASK if remainder == 0 else (1 << remainder) - 1


class Bitmap:
    """Fixed-width bitmap backed by an ``array('Q')`` of machine words.

    The explicit word-indexed form of the kernel: bit ``i`` lives in
    word ``i >> 6`` at position ``i & 63``.  Binary operations require
    equal widths; results are fresh bitmaps (operands untouched).
    """

    __slots__ = ("nbits", "words")

    def __init__(self, nbits: int) -> None:
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        self.nbits = nbits
        word_count = (nbits + WORD_BITS - 1) // WORD_BITS
        self.words = array("Q", bytes(8 * word_count))

    # -- construction / conversion -------------------------------------
    @classmethod
    def from_int(cls, value: int, nbits: int) -> "Bitmap":
        """Bitmap of width ``nbits`` from an int (excess bits masked off)."""
        if value < 0:
            raise ValueError("value must be non-negative")
        bitmap = cls(nbits)
        value &= (1 << nbits) - 1
        words = bitmap.words
        for index in range(len(words)):
            words[index] = value & _WORD_MASK
            value >>= WORD_BITS
        return bitmap

    def to_int(self) -> int:
        """The bitmap as a little-endian-word integer."""
        value = 0
        shift = 0
        for word in self.words:
            value |= word << shift
            shift += WORD_BITS
        return value

    # -- single-bit access ---------------------------------------------
    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.nbits:
            raise IndexError(f"bit {index} out of range [0, {self.nbits})")

    def set(self, index: int) -> None:
        self._check_index(index)
        self.words[index >> 6] |= 1 << (index & 63)

    def clear(self, index: int) -> None:
        self._check_index(index)
        self.words[index >> 6] &= _WORD_MASK ^ (1 << (index & 63))

    def test(self, index: int) -> bool:
        self._check_index(index)
        return bool(self.words[index >> 6] & (1 << (index & 63)))

    # -- word-wise binary operations -----------------------------------
    def _check_width(self, other: "Bitmap") -> None:
        if self.nbits != other.nbits:
            raise ValueError(f"width mismatch: {self.nbits} vs {other.nbits} bits")

    def and_(self, other: "Bitmap") -> "Bitmap":
        """Word-wise AND (new bitmap)."""
        self._check_width(other)
        result = Bitmap(self.nbits)
        result.words = array("Q", (a & b for a, b in zip(self.words, other.words)))
        return result

    def or_(self, other: "Bitmap") -> "Bitmap":
        """Word-wise OR (new bitmap)."""
        self._check_width(other)
        result = Bitmap(self.nbits)
        result.words = array("Q", (a | b for a, b in zip(self.words, other.words)))
        return result

    def andnot(self, other: "Bitmap") -> "Bitmap":
        """Word-wise AND-NOT: bits set here and clear in ``other``."""
        self._check_width(other)
        result = Bitmap(self.nbits)
        result.words = array(
            "Q", (a & (b ^ _WORD_MASK) for a, b in zip(self.words, other.words))
        )
        return result

    def invert(self) -> "Bitmap":
        """Word-wise NOT, with the trailing word masked to ``nbits``."""
        result = Bitmap(self.nbits)
        result.words = array("Q", (word ^ _WORD_MASK for word in self.words))
        if result.words:
            result.words[-1] &= trailing_word_mask(self.nbits)
        return result

    # -- aggregate queries ---------------------------------------------
    def popcount(self) -> int:
        """Set-bit count, via the byte table (:data:`POPCOUNT8`)."""
        return popcount_bytes(self.words.tobytes())

    def __iter__(self) -> Iterator[int]:
        """Ascending positions of the set bits."""
        base = 0
        for word in self.words:
            while word:
                low = word & -word
                yield base + low.bit_length() - 1
                word ^= low
            base += WORD_BITS

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return self.nbits == other.nbits and self.words == other.words

    def __len__(self) -> int:
        return self.nbits

    def __repr__(self) -> str:
        return f"Bitmap(nbits={self.nbits}, value={self.to_int():#x})"


class BitLayout:
    """Dense ``predicate id -> bit position`` layout with recycling.

    ``bits`` (id -> bit) and ``pids`` (bit -> id, ``None`` for free
    slots) are exposed directly for hot-path indexing — treat them as
    read-only and mutate only through :meth:`assign` / :meth:`release` /
    :meth:`compact`.  Released bit positions go to a free list and are
    recycled by later assignments, so the bit-space capacity is bounded
    by the high-water mark of simultaneously live predicates, not by
    total registration traffic.  ``epoch`` advances whenever any
    existing position's meaning could change (release, compaction).
    """

    __slots__ = ("bits", "pids", "free", "epoch")

    def __init__(self) -> None:
        self.bits: dict[int, int] = {}
        self.pids: list[int | None] = []
        self.free: list[int] = []
        self.epoch = 0

    def assign(self, predicate_id: int) -> int:
        """The bit position for ``predicate_id``, allocating if new.

        Idempotent: re-assigning a live id returns its existing bit.
        """
        bit = self.bits.get(predicate_id)
        if bit is not None:
            return bit
        if self.free:
            bit = self.free.pop()
            self.pids[bit] = predicate_id
        else:
            bit = len(self.pids)
            self.pids.append(predicate_id)
        self.bits[predicate_id] = bit
        return bit

    def release(self, predicate_id: int) -> bool:
        """Free the id's bit for recycling; ``False`` if it was not live."""
        bit = self.bits.pop(predicate_id, None)
        if bit is None:
            return False
        self.pids[bit] = None
        self.free.append(bit)
        self.epoch += 1
        return True

    def compact(self) -> dict[int, int]:
        """Renumber live bits densely; returns the old->new bit remap.

        Shrinks :attr:`capacity` to the live count and empties the free
        list.  Every externally held bit position is invalidated — the
        epoch bump is the signal; callers owning masks must rebuild them
        through the remap.
        """
        remap: dict[int, int] = {}
        pids: list[int | None] = []
        for old_bit, pid in enumerate(self.pids):
            if pid is None:
                continue
            remap[old_bit] = len(pids)
            pids.append(pid)
        self.pids = pids
        self.bits = {pid: bit for bit, pid in enumerate(pids)}
        self.free = []
        self.epoch += 1
        return remap

    # -- queries --------------------------------------------------------
    def bit_of(self, predicate_id: int) -> int:
        """The bit position of a live predicate id (KeyError otherwise)."""
        return self.bits[predicate_id]

    def pid_at(self, bit: int) -> int | None:
        """The predicate id at ``bit``, or ``None`` for a free slot."""
        return self.pids[bit]

    def bits_of(self, predicate_ids: Iterable[int]) -> tuple[int, ...]:
        """Bit positions for an iterable of live predicate ids."""
        bits = self.bits
        return tuple(bits[pid] for pid in predicate_ids)

    @property
    def capacity(self) -> int:
        """Allocated bit-space width (live + free slots)."""
        return len(self.pids)

    def __len__(self) -> int:
        """Number of live (assigned) predicate ids."""
        return len(self.bits)

    def __contains__(self, predicate_id: int) -> bool:
        return predicate_id in self.bits

    def __repr__(self) -> str:
        return (
            f"BitLayout(live={len(self.bits)}, capacity={self.capacity}, "
            f"epoch={self.epoch})"
        )


class FulfilledMatrix:
    """Column-major batch form of phase-1 output.

    ``columns[bit]`` is an event-space integer: bit ``i`` set means
    event ``i`` fulfils the predicate at layout position ``bit``.
    ``active_bits`` lists the nonzero columns (typically a small
    fraction of the layout), so consumers never scan the full width.
    The row view (one bitmap per event, the transpose) is available for
    reference and fallback paths; the columns are the hot form because
    one subscription clause evaluates against *all* events with a
    couple of int operations.
    """

    __slots__ = ("layout", "columns", "active_bits", "event_count", "epoch", "_id_sets")

    def __init__(
        self,
        layout: BitLayout,
        columns: list[int],
        active_bits: list[int],
        event_count: int,
    ) -> None:
        self.layout = layout
        self.columns = columns
        self.active_bits = active_bits
        self.event_count = event_count
        self.epoch = layout.epoch
        self._id_sets: list[set[int]] | None = None

    @classmethod
    def from_id_sets(
        cls, layout: BitLayout, fulfilled_sets: Sequence[Iterable[int]]
    ) -> "FulfilledMatrix":
        """Transpose per-event fulfilled-id sets into column form.

        The set-based reference construction — tests pit engine matrix
        paths against set paths through it, and the sharded runtime uses
        it when an executor hands it plain sets.
        """
        columns = [0] * layout.capacity
        active_bits: list[int] = []
        bit_of = layout.bits
        event_bit = 1
        for fulfilled in fulfilled_sets:
            for pid in fulfilled:
                bit = bit_of[pid]
                if not columns[bit]:
                    active_bits.append(bit)
                columns[bit] |= event_bit
            event_bit <<= 1
        return cls(layout, columns, active_bits, len(fulfilled_sets))

    @property
    def all_events_mask(self) -> int:
        """Event-space mask with every event's bit set."""
        return (1 << self.event_count) - 1

    def column(self, bit: int) -> int:
        """The event-space column at layout position ``bit``."""
        return self.columns[bit]

    def row(self, index: int) -> int:
        """Event ``index``'s fulfilled bits as a layout-space integer."""
        if not 0 <= index < self.event_count:
            raise IndexError(f"event {index} out of range")
        event_bit = 1 << index
        row = 0
        columns = self.columns
        for bit in self.active_bits:
            if columns[bit] & event_bit:
                row |= 1 << bit
        return row

    def row_bitmap(self, index: int) -> Bitmap:
        """Event ``index``'s row as a :class:`Bitmap` over the layout."""
        return Bitmap.from_int(self.row(index), self.layout.capacity)

    def select(self, indices: Sequence[int]) -> "FulfilledMatrix":
        """Sub-matrix over the events at ``indices`` (renumbered densely).

        Row ``j`` of the result is row ``indices[j]`` of this matrix —
        the slicing primitive behind routed shard pruning: the parent
        builds one batch matrix, each candidate shard evaluates only the
        rows of the events it might match.  Columns that become zero are
        dropped from ``active_bits``, so a shard whose candidate events
        fulfil few predicates scans proportionally less.  Selecting every
        event in order returns ``self`` (no copy).
        """
        if len(indices) == self.event_count and all(
            got == want for want, got in enumerate(indices)
        ):
            return self
        columns = [0] * self.layout.capacity
        active: list[int] = []
        own_columns = self.columns
        for bit in self.active_bits:
            column = own_columns[bit]
            sub = 0
            for j, i in enumerate(indices):
                if (column >> i) & 1:
                    sub |= 1 << j
            if sub:
                columns[bit] = sub
                active.append(bit)
        return FulfilledMatrix(self.layout, columns, active, len(indices))

    def active_pids(self) -> list[int]:
        """Predicate ids fulfilled by at least one event in the batch."""
        pids = self.layout.pids
        return [pids[bit] for bit in self.active_bits]

    def to_id_sets(self) -> list[set[int]]:
        """Expand back to per-event fulfilled predicate id sets (cached).

        The bridge to set-based phase 2: engines without a matrix path
        (and closure-mode fallbacks) consume this; building it costs one
        pass over the set bits, paid at most once per matrix.
        """
        if self._id_sets is None:
            sets: list[set[int]] = [set() for _ in range(self.event_count)]
            pids = self.layout.pids
            for bit in self.active_bits:
                pid = pids[bit]
                column = self.columns[bit]
                while column:
                    low = column & -column
                    sets[low.bit_length() - 1].add(pid)
                    column ^= low
            self._id_sets = sets
        return self._id_sets

    def __repr__(self) -> str:
        return (
            f"FulfilledMatrix(events={self.event_count}, "
            f"active_bits={len(self.active_bits)}, "
            f"capacity={self.layout.capacity})"
        )
