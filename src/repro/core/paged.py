"""Disk-backed filtering: exploiting resources other than main memory.

Paper §5 closes with: "a further step is the development of filtering
strategies exploiting other resources than main memory."  This module is
that step: the subscription tree arena lives in a **file**, and matching
reads candidate trees through a fixed-budget LRU page cache.  Main
memory then holds only the association and location tables plus the
cache — the engine's RAM footprint stops growing with the arena.

Because the non-canonical engine evaluates only *candidate*
subscriptions (a small, fulfilled-predicate-driven subset), the cache
absorbs most reads; a counting-style engine could not profit the same
way, since its full-vector scan touches every clause every event.  The
ablation benchmark A6 measures the hit rate and the slowdown against the
all-in-RAM engine.
"""

from __future__ import annotations

import os
import tempfile
from collections import OrderedDict
from typing import AbstractSet, Mapping, Sequence

from ..indexes.manager import IndexManager
from ..memory.cost_model import DEFAULT_COST_MODEL, CostModel
from ..predicates.registry import PredicateRegistry
from ..subscriptions.encoding import BasicTreeCodec
from ..subscriptions.subscription import Subscription
from ..subscriptions.tree import SubscriptionTree
from .base import FilterEngine, UnknownSubscriptionError


class DiskTreeStore:
    """Append-only file of encoded trees behind an LRU page cache.

    Parameters
    ----------
    path:
        Backing file path; a temporary file is created when omitted.
    page_size:
        Cache granularity in bytes.
    cache_pages:
        Number of pages held in RAM.
    """

    def __init__(
        self,
        path: str | None = None,
        *,
        page_size: int = 4096,
        cache_pages: int = 64,
    ) -> None:
        if page_size < 64:
            raise ValueError("page_size must be at least 64 bytes")
        if cache_pages < 1:
            raise ValueError("cache_pages must be at least 1")
        self.page_size = page_size
        self.cache_pages = cache_pages
        if path is None:
            handle, path = tempfile.mkstemp(prefix="repro-trees-", suffix=".arena")
            os.close(handle)
            self._owns_file = True
        else:
            self._owns_file = False
        self.path = path
        self._file = open(path, "w+b")
        self._size = 0
        self._dead_bytes = 0
        self._cache: OrderedDict[int, bytes] = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------
    def add(self, encoded: bytes) -> tuple[int, int]:
        """Append an encoded tree; returns its (offset, width)."""
        if not encoded:
            raise ValueError("cannot store an empty encoding")
        offset = self._size
        self._file.seek(offset)
        self._file.write(encoded)
        self._size += len(encoded)
        # invalidate any cached page the write touched (append-only, so
        # only the tail page can be stale)
        first_page = offset // self.page_size
        last_page = (self._size - 1) // self.page_size
        for page in range(first_page, last_page + 1):
            self._cache.pop(page, None)
        return offset, len(encoded)

    def free(self, offset: int, width: int) -> None:
        """Mark a region dead (space is reclaimed only on rewrite)."""
        self._dead_bytes += width

    def read(self, offset: int, width: int) -> bytes:
        """Read a tree through the page cache."""
        if offset + width > self._size:
            raise ValueError(f"read past end of store: {offset}+{width}")
        first_page = offset // self.page_size
        last_page = (offset + width - 1) // self.page_size
        chunks = []
        for page in range(first_page, last_page + 1):
            chunks.append(self._page(page))
        blob = b"".join(chunks)
        start = offset - first_page * self.page_size
        return blob[start:start + width]

    def _page(self, page: int) -> bytes:
        cached = self._cache.get(page)
        if cached is not None:
            self._cache.move_to_end(page)
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        self._file.seek(page * self.page_size)
        data = self._file.read(self.page_size)
        self._cache[page] = data
        if len(self._cache) > self.cache_pages:
            self._cache.popitem(last=False)
        return data

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Total bytes on disk (live + dead)."""
        return self._size

    @property
    def live_bytes(self) -> int:
        """Bytes of live trees on disk."""
        return self._size - self._dead_bytes

    @property
    def cache_budget_bytes(self) -> int:
        """RAM the cache may occupy."""
        return self.page_size * self.cache_pages

    def hit_rate(self) -> float:
        """Cache hit fraction since creation (0.0 when untouched)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def close(self) -> None:
        """Close (and delete, when owned) the backing file."""
        if not self._file.closed:
            self._file.close()
        if self._owns_file and os.path.exists(self.path):
            os.unlink(self.path)

    def __enter__(self) -> "DiskTreeStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PagedNonCanonicalEngine(FilterEngine):
    """The non-canonical engine with subscription trees on disk.

    The association and location tables stay in RAM (they are the
    per-event entry points); encoded trees are read through the store's
    LRU cache only when a subscription becomes a candidate.
    """

    name = "non-canonical-paged"

    def __init__(
        self,
        *,
        store: DiskTreeStore | None = None,
        registry: PredicateRegistry | None = None,
        indexes: IndexManager | None = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        super().__init__(registry=registry, indexes=indexes)
        self._store = store if store is not None else DiskTreeStore()
        self._codec = BasicTreeCodec()
        self._cost_model = cost_model
        self._association: dict[int, set[int]] = {}
        self._locations: dict[int, tuple[int, int]] = {}
        #: subscriptions matching under the empty truth assignment — see
        #: NonCanonicalEngine; they are unconditional candidates.
        self._empty_assignment_matchers: set[int] = set()
        self._subscribers: dict[int, str | None] = {}

    @property
    def store(self) -> DiskTreeStore:
        """The disk store (for cache statistics)."""
        return self._store

    def register(self, subscription: Subscription) -> None:
        sid = subscription.subscription_id
        if sid in self._locations:
            raise ValueError(f"subscription id {sid} already registered")
        tree = SubscriptionTree.from_expression(
            subscription.expression, self._register_and_index
        )
        for pid in tree.predicate_ids():
            self._association.setdefault(pid, set()).add(sid)
        self._locations[sid] = self._store.add(self._codec.encode(tree))
        if tree.evaluate(frozenset()):
            self._empty_assignment_matchers.add(sid)
        self._subscribers[sid] = subscription.subscriber

    def _register_and_index(self, predicate) -> int:
        pid = self.registry.register(predicate)
        self.indexes.add(predicate, pid)
        return pid

    def unregister(self, subscription_id: int) -> None:
        location = self._locations.pop(subscription_id, None)
        if location is None:
            raise UnknownSubscriptionError(subscription_id)
        offset, width = location
        encoded = self._store.read(offset, width)
        occurrences = list(self._codec.predicate_ids(encoded, 0, width))
        for pid in set(occurrences):
            referencing = self._association.get(pid)
            if referencing is not None:
                referencing.discard(subscription_id)
                if not referencing:
                    del self._association[pid]
        for pid in occurrences:
            self._release_predicate(pid)
        self._store.free(offset, width)
        self._empty_assignment_matchers.discard(subscription_id)
        del self._subscribers[subscription_id]

    @property
    def subscription_count(self) -> int:
        return len(self._locations)

    def subscription_ids(self) -> frozenset[int]:
        return frozenset(self._locations)

    def match_fulfilled(self, fulfilled_ids: AbstractSet[int]) -> set[int]:
        """Candidate selection in RAM, tree evaluation through the cache."""
        candidates: set[int] = set(self._empty_assignment_matchers)
        association = self._association
        for pid in fulfilled_ids:
            referencing = association.get(pid)
            if referencing is not None:
                candidates.update(referencing)
        matched: set[int] = set()
        read = self._store.read
        evaluate = self._codec.evaluate
        for sid in candidates:
            offset, width = self._locations[sid]
            encoded = read(offset, width)
            if evaluate(encoded, 0, width, fulfilled_ids):
                matched.add(sid)
        counters = self._counters
        counters.phase2_calls += 1
        counters.candidates_probed += len(candidates)
        counters.matches_found += len(matched)
        return matched

    def match_fulfilled_batch(
        self, fulfilled_sets: Sequence[AbstractSet[int]]
    ) -> list[set[int]]:
        """Batch phase 2 with one offset-ordered pass over the store.

        Candidate sets are computed for the whole batch first, then every
        distinct candidate tree is read exactly once, in arena-offset
        order — sequential page access, so a page shared by several
        candidates (or several events) enters the LRU cache once per
        batch instead of once per use.  The decoded bytes are held only
        for the duration of the batch.
        """
        fulfilled_sets = list(fulfilled_sets)
        association = self._association
        empty_matchers = self._empty_assignment_matchers
        per_event: list[set[int]] = []
        needed: set[int] = set()
        for fulfilled_ids in fulfilled_sets:
            candidates = set(empty_matchers)
            for pid in fulfilled_ids:
                referencing = association.get(pid)
                if referencing is not None:
                    candidates.update(referencing)
            per_event.append(candidates)
            needed.update(candidates)
        locations = self._locations
        read = self._store.read
        encoded: dict[int, bytes] = {}
        for sid in sorted(needed, key=lambda s: locations[s][0]):
            offset, width = locations[sid]
            encoded[sid] = read(offset, width)
        evaluate = self._codec.evaluate
        results: list[set[int]] = []
        probed_total = 0
        matched_total = 0
        for fulfilled_ids, candidates in zip(fulfilled_sets, per_event):
            matched: set[int] = set()
            for sid in candidates:
                if evaluate(encoded[sid], 0, locations[sid][1], fulfilled_ids):
                    matched.add(sid)
            probed_total += len(candidates)
            matched_total += len(matched)
            results.append(matched)
        counters = self._counters
        counters.phase2_calls += len(results)
        counters.candidates_probed += probed_total
        counters.matches_found += matched_total
        return results

    def memory_breakdown(self) -> Mapping[str, int]:
        """RAM only: tables plus the page-cache budget — no trees.

        The disk bytes are reported separately by
        :attr:`store`.``live_bytes``; they do not count against the
        machine's memory budget, which is the whole point of §5.
        """
        model = self._cost_model
        reference_count = sum(len(s) for s in self._association.values())
        return {
            "page_cache": self._store.cache_budget_bytes,
            "association_table": model.association_table_bytes(
                len(self._association), reference_count
            ),
            "location_table": model.location_table_bytes(len(self._locations)),
        }

    def close(self) -> None:
        """Release the backing file."""
        self._store.close()
