"""repro — non-canonical filtering for publish/subscribe systems.

A complete, from-scratch reproduction of

    Sven Bittner & Annika Hinze,
    *On the Benefits of Non-Canonical Filtering in Publish/Subscribe
    Systems*, ICDCS Workshops (ICDCSW) 2005.

The package implements the paper's contribution — a matching engine that
filters **arbitrary Boolean subscriptions directly**, without rewriting
them into disjunctive normal form — together with every substrate the
evaluation depends on: the predicate language and its one-dimensional
indexes (hash tables, a from-scratch B+ tree, interval index, tries),
the canonical DNF pipeline and counting-algorithm baselines it is
compared against, byte-level subscription tree codecs, a memory cost
model with a simulated 512 MB machine, a broker overlay network, and the
workload generators and experiment harness that regenerate the paper's
Table 1 and all six panels of Figure 3.

Quickstart
----------
>>> from repro import Broker, Event
>>> broker = Broker("edge")
>>> sub = broker.subscribe(
...     "(price > 10 or urgent = true) and symbol prefix 'AC'"
... )
>>> broker.publish(Event({"symbol": "ACME", "price": 12.5}))
... # doctest: +ELLIPSIS
[Notification(...)]

See ``examples/`` for full scenarios and ``DESIGN.md`` for the system
inventory and the paper-to-module map.
"""

from .broker import (
    Broker,
    BrokerNetwork,
    CallbackSink,
    CollectingSink,
    DeliverySink,
    Notification,
    Publisher,
    QueueSink,
    Subscriber,
    SubscriptionHandle,
    TopologyError,
    as_sink,
)
from .core import (
    ENGINES,
    BitLayout,
    Bitmap,
    BruteForceEngine,
    CountingEngine,
    CountingVariantEngine,
    DiskTreeStore,
    EngineSpec,
    FilterEngine,
    FulfilledMatrix,
    MatchCounters,
    MatchingTreeEngine,
    NonCanonicalEngine,
    PagedNonCanonicalEngine,
    HashPartitioner,
    ProcessExecutor,
    RoutedPartitioner,
    SerialExecutor,
    ShardExecutor,
    ShardPartitioner,
    ShardWorkerError,
    ShardedEngine,
    ThreadExecutor,
    UnknownEngineError,
    UnknownSubscriptionError,
    UnsupportedSubscriptionError,
    build_engine,
    canonical_engine_name,
    engine_names,
    executor_names,
    make_executor,
    make_partitioner,
    partitioner_names,
    popcount,
    register_engine,
    register_executor,
    register_partitioner,
    resolve_engine,
    shard_index,
    spec_of,
)
from .events import (
    AttributeSpec,
    AttributeType,
    Event,
    EventSchema,
    InvalidEventError,
    SchemaViolationError,
)
from .memory import PAPER_MACHINE, CostModel, SimulatedMachine
from .predicates import (
    InvalidPredicateError,
    Operator,
    Predicate,
    PredicateRegistry,
)
from .subscriptions import (
    CoveringIndex,
    Subscription,
    SubscriptionSyntaxError,
    canonical_dnf,
    covers,
    parse,
    simplify,
    to_dnf,
)

__version__ = "1.0.0"

__all__ = [
    "Broker",
    "BrokerNetwork",
    "Notification",
    "Publisher",
    "Subscriber",
    "SubscriptionHandle",
    "DeliverySink",
    "CallbackSink",
    "CollectingSink",
    "QueueSink",
    "as_sink",
    "TopologyError",
    "ENGINES",
    "EngineSpec",
    "UnknownEngineError",
    "build_engine",
    "canonical_engine_name",
    "engine_names",
    "register_engine",
    "resolve_engine",
    "spec_of",
    "ShardedEngine",
    "ShardExecutor",
    "ShardPartitioner",
    "HashPartitioner",
    "RoutedPartitioner",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "ShardWorkerError",
    "executor_names",
    "make_executor",
    "make_partitioner",
    "partitioner_names",
    "register_executor",
    "register_partitioner",
    "shard_index",
    "BitLayout",
    "Bitmap",
    "BruteForceEngine",
    "CountingEngine",
    "CountingVariantEngine",
    "DiskTreeStore",
    "FilterEngine",
    "FulfilledMatrix",
    "MatchCounters",
    "MatchingTreeEngine",
    "NonCanonicalEngine",
    "PagedNonCanonicalEngine",
    "UnknownSubscriptionError",
    "UnsupportedSubscriptionError",
    "popcount",
    "AttributeSpec",
    "AttributeType",
    "Event",
    "EventSchema",
    "InvalidEventError",
    "SchemaViolationError",
    "PAPER_MACHINE",
    "CostModel",
    "SimulatedMachine",
    "InvalidPredicateError",
    "Operator",
    "Predicate",
    "PredicateRegistry",
    "Subscription",
    "SubscriptionSyntaxError",
    "parse",
    "simplify",
    "to_dnf",
    "canonical_dnf",
    "covers",
    "CoveringIndex",
    "__version__",
]
