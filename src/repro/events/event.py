"""Event messages for the publish/subscribe system.

An event is an immutable set of attribute/value pairs, e.g.::

    Event({"symbol": "ACME", "price": 31.5, "volume": 1200})

Events are what publishers inject into the system and what the filtering
engines match against registered subscriptions.  Attribute values are
restricted to the scalar types the predicate language understands:
``int``, ``float``, ``str`` and ``bool``.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Mapping, Union

AttributeValue = Union[int, float, str, bool]

#: Types allowed as event attribute values (bool is checked first because
#: it is a subclass of int).
ALLOWED_VALUE_TYPES = (bool, int, float, str)

_event_counter = itertools.count(1)


class InvalidEventError(ValueError):
    """Raised when an event is constructed from unsupported data."""


class Event(Mapping[str, AttributeValue]):
    """An immutable event message: a mapping from attribute names to values.

    Each event carries a process-unique ``event_id`` used by brokers for
    duplicate suppression when events travel across an overlay network.

    Parameters
    ----------
    attributes:
        Mapping from attribute name (non-empty ``str``) to a scalar value.
    event_id:
        Optional explicit identifier.  When omitted a fresh one is drawn
        from a process-wide counter.

    Raises
    ------
    InvalidEventError
        If an attribute name is not a non-empty string or a value has an
        unsupported type.
    """

    __slots__ = ("_attributes", "_event_id")

    def __init__(
        self,
        attributes: Mapping[str, AttributeValue],
        *,
        event_id: int | None = None,
    ) -> None:
        validated: dict[str, AttributeValue] = {}
        for name, value in attributes.items():
            if not isinstance(name, str) or not name:
                raise InvalidEventError(
                    f"attribute names must be non-empty strings, got {name!r}"
                )
            if not isinstance(value, ALLOWED_VALUE_TYPES):
                raise InvalidEventError(
                    f"attribute {name!r} has unsupported value type "
                    f"{type(value).__name__!r}; allowed: int, float, str, bool"
                )
            validated[name] = value
        self._attributes = validated
        self._event_id = next(_event_counter) if event_id is None else event_id

    @property
    def event_id(self) -> int:
        """Process-unique identifier of this event."""
        return self._event_id

    @property
    def attributes(self) -> Mapping[str, AttributeValue]:
        """Read-only view of the attribute mapping."""
        return dict(self._attributes)

    def __getitem__(self, name: str) -> AttributeValue:
        return self._attributes[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._attributes

    def get(self, name: str, default: AttributeValue | None = None):
        """Return the value for ``name``, or ``default`` when absent."""
        return self._attributes.get(name, default)

    def items(self):
        """(name, value) pairs, directly off the attribute dict.

        Overrides the ``Mapping`` mixin, which goes through
        ``__getitem__`` per key — ``items()`` is the inner loop of
        phase-1 matching, so it gets the C-level dict view.
        """
        return self._attributes.items()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(frozenset(self._attributes.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self._attributes.items()))
        return f"Event(id={self._event_id}, {inner})"
