"""Optional event schemas.

A schema declares the attributes an event type may carry and their value
types.  Schemas are *optional* in this system — the paper's engines filter
schema-less attribute/value events — but brokers can enforce one at the
publishing boundary, and workload generators use schemas to draw random
events and predicates over a well-defined attribute space.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from .event import ALLOWED_VALUE_TYPES, AttributeValue, Event


class AttributeType(enum.Enum):
    """The scalar types an event attribute can have."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"

    @property
    def python_types(self) -> tuple[type, ...]:
        """The Python types accepted for this attribute type.

        ``INT`` values are also accepted where ``FLOAT`` is declared, as in
        most typed event systems.
        """
        return {
            AttributeType.INT: (int,),
            AttributeType.FLOAT: (int, float),
            AttributeType.STRING: (str,),
            AttributeType.BOOL: (bool,),
        }[self]


class SchemaViolationError(ValueError):
    """Raised when an event does not conform to a schema."""


@dataclass(frozen=True)
class AttributeSpec:
    """Declaration of a single attribute within a schema.

    Parameters
    ----------
    name:
        Attribute name.
    type:
        Declared :class:`AttributeType`.
    required:
        Whether events must carry the attribute.
    """

    name: str
    type: AttributeType
    required: bool = False

    def validate(self, value: AttributeValue) -> None:
        """Raise :class:`SchemaViolationError` if ``value`` has the wrong type."""
        if not isinstance(value, ALLOWED_VALUE_TYPES):
            raise SchemaViolationError(
                f"attribute {self.name!r}: unsupported value {value!r}"
            )
        # bool is a subclass of int; reject it explicitly for INT/FLOAT.
        if isinstance(value, bool) and self.type is not AttributeType.BOOL:
            raise SchemaViolationError(
                f"attribute {self.name!r}: expected {self.type.value}, got bool"
            )
        if not isinstance(value, self.type.python_types):
            raise SchemaViolationError(
                f"attribute {self.name!r}: expected {self.type.value}, "
                f"got {type(value).__name__}"
            )


class EventSchema(Mapping[str, AttributeSpec]):
    """A named collection of :class:`AttributeSpec` declarations.

    Example
    -------
    >>> schema = EventSchema("stock", [
    ...     AttributeSpec("symbol", AttributeType.STRING, required=True),
    ...     AttributeSpec("price", AttributeType.FLOAT, required=True),
    ... ])
    >>> schema.validate(Event({"symbol": "ACME", "price": 10.0}))
    """

    def __init__(self, name: str, specs: Iterable[AttributeSpec]) -> None:
        if not name:
            raise ValueError("schema name must be non-empty")
        self._name = name
        self._specs: dict[str, AttributeSpec] = {}
        for spec in specs:
            if spec.name in self._specs:
                raise ValueError(f"duplicate attribute {spec.name!r} in schema")
            self._specs[spec.name] = spec

    @property
    def name(self) -> str:
        """The schema's name (event type name)."""
        return self._name

    @property
    def required_attributes(self) -> frozenset[str]:
        """Names of all attributes events must carry."""
        return frozenset(n for n, s in self._specs.items() if s.required)

    def __getitem__(self, name: str) -> AttributeSpec:
        return self._specs[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def validate(self, event: Event) -> None:
        """Check ``event`` against this schema.

        Raises
        ------
        SchemaViolationError
            If a required attribute is missing, an undeclared attribute is
            present, or a value has the wrong type.
        """
        missing = self.required_attributes - set(event)
        if missing:
            raise SchemaViolationError(
                f"event is missing required attributes: {sorted(missing)}"
            )
        for name, value in event.items():
            spec = self._specs.get(name)
            if spec is None:
                raise SchemaViolationError(
                    f"event carries undeclared attribute {name!r}"
                )
            spec.validate(value)

    def conforms(self, event: Event) -> bool:
        """Return ``True`` when ``event`` validates against this schema."""
        try:
            self.validate(event)
        except SchemaViolationError:
            return False
        return True

    def __repr__(self) -> str:
        return f"EventSchema({self._name!r}, {len(self._specs)} attributes)"
