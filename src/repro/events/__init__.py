"""Event model: typed attribute/value messages and optional schemas."""

from .event import (
    ALLOWED_VALUE_TYPES,
    AttributeValue,
    Event,
    InvalidEventError,
)
from .schema import (
    AttributeSpec,
    AttributeType,
    EventSchema,
    SchemaViolationError,
)

__all__ = [
    "ALLOWED_VALUE_TYPES",
    "AttributeValue",
    "Event",
    "InvalidEventError",
    "AttributeSpec",
    "AttributeType",
    "EventSchema",
    "SchemaViolationError",
]
