"""Subscription language: AST, parser, normal forms, trees and codecs."""

from .ast import (
    And,
    BooleanExpression,
    Not,
    Or,
    PredicateLeaf,
    conjunction,
    disjunction,
    leaf,
)
from .covering import (
    clause_covers,
    covers,
    predicate_covers,
    prune_covered,
)
from .compiler import (
    MODE_ANY,
    MODE_CLOSURE,
    MODE_DNF,
    MODE_GROUPS,
    compile_tree,
    evaluate_compiled,
)
from .encoding import (
    CODECS,
    BasicTreeCodec,
    CorruptEncodingError,
    EncodingError,
    TreeArena,
    VarintTreeCodec,
)
from .normal_forms import (
    Clause,
    DisjunctiveNormalForm,
    DnfExplosionError,
    Literal,
    dnf_clause_count,
    dnf_literal_count,
    to_cnf,
    to_dnf,
    to_nnf,
    transformation_blowup,
)
from .parser import SubscriptionSyntaxError, parse
from .simplify import is_conjunctive, is_dnf_shaped, simplify
from .subscription import Subscription, next_subscription_id
from .tree import NodeKind, SubscriptionTree, TreeNode

__all__ = [
    "And",
    "BooleanExpression",
    "Not",
    "Or",
    "PredicateLeaf",
    "conjunction",
    "disjunction",
    "leaf",
    "clause_covers",
    "covers",
    "predicate_covers",
    "prune_covered",
    "MODE_ANY",
    "MODE_CLOSURE",
    "MODE_DNF",
    "MODE_GROUPS",
    "compile_tree",
    "evaluate_compiled",
    "CODECS",
    "BasicTreeCodec",
    "CorruptEncodingError",
    "EncodingError",
    "TreeArena",
    "VarintTreeCodec",
    "Clause",
    "DisjunctiveNormalForm",
    "DnfExplosionError",
    "Literal",
    "dnf_clause_count",
    "dnf_literal_count",
    "to_cnf",
    "to_dnf",
    "to_nnf",
    "transformation_blowup",
    "SubscriptionSyntaxError",
    "parse",
    "is_conjunctive",
    "is_dnf_shaped",
    "simplify",
    "Subscription",
    "next_subscription_id",
    "NodeKind",
    "SubscriptionTree",
    "TreeNode",
]
