"""Subscription objects.

A :class:`Subscription` bundles an arbitrary Boolean expression with its
system-wide identifier ``id(s)`` and the identity of the subscriber to
notify on a match.  Engines compile the expression further (into trees,
encodings or DNF clauses, depending on the engine); the subscription
object itself is the registration-time handle users deal with.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..events.event import Event
from .ast import BooleanExpression
from .normal_forms import DisjunctiveNormalForm, canonical_dnf
from .parser import parse

_subscription_counter = itertools.count(1)


def next_subscription_id() -> int:
    """Draw a fresh process-unique subscription identifier."""
    return next(_subscription_counter)


@dataclass(frozen=True)
class Subscription:
    """A registered interest: an expression plus identity metadata.

    Parameters
    ----------
    expression:
        The arbitrary Boolean expression over predicates.
    subscriber:
        Opaque identity of the party to notify (broker client name,
        callback key, ...).
    subscription_id:
        Explicit identifier; auto-assigned when omitted.
    """

    expression: BooleanExpression
    subscriber: Optional[str] = None
    subscription_id: int = field(default_factory=next_subscription_id)

    @classmethod
    def from_text(
        cls, text: str, *, subscriber: Optional[str] = None
    ) -> "Subscription":
        """Parse subscription text into a registered-ready subscription.

        Example
        -------
        >>> Subscription.from_text("price > 10 and (side = 'buy' or urgent = true)")
        """
        return cls(expression=parse(text), subscriber=subscriber)

    def matches(self, event: Event) -> bool:
        """Direct (index-free) evaluation against an event.

        This is the brute-force oracle semantics every engine must agree
        with; the engines exist to compute the same answer faster.
        """
        return self.expression.matches(event)

    def canonical_dnf(
        self, *, max_clauses: int = 1_000_000
    ) -> DisjunctiveNormalForm:
        """The expression's canonical DNF, derived at most once.

        Delegates to the process-wide memo
        (:func:`~repro.subscriptions.normal_forms.canonical_dnf`), so
        engines, the covering index, and ad-hoc callers all share one
        materialization per distinct expression.
        """
        return canonical_dnf(self.expression, max_clauses=max_clauses)

    def predicate_count(self) -> int:
        """Number of *distinct* predicates (the paper's ``|p|``)."""
        return len(self.expression.unique_predicates())

    def __str__(self) -> str:
        return f"s{self.subscription_id}: {self.expression}"
