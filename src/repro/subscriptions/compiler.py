"""Evaluation compiler: subscription trees → fast match forms.

The paper's C prototype evaluates encoded subscription trees directly;
there, "decoding" a node is pointer arithmetic and costs nothing beyond
the memory access.  A Python interpreter charges tens of bytecodes for
the same decoding, which would distort the engine comparison (the
counting baselines' hot loop is bytearray indexing, which Python executes
natively).  To keep per-access costs comparable across engines, the
non-canonical engine compiles each tree **once at registration time**
into one of three match forms evaluated with C-level set operations:

* ``MODE_ANY`` — a flat OR over predicates (or a single predicate):
  matches iff the fulfilled-id set intersects one frozenset;
* ``MODE_GROUPS`` — an AND of OR-groups (the paper's workload shape,
  and plain conjunctions as singleton groups): matches iff every group
  intersects the fulfilled set;
* ``MODE_DNF`` — an OR of conjunctions (already-DNF-shaped
  subscriptions): matches iff any group is a subset of the fulfilled
  set;
* ``MODE_CLOSURE`` — everything else (NOT nodes, deeper nesting):
  a composed closure tree.

The byte-encoded arena remains the system of record: it is what the
memory model charges (exactly the paper's §3.3 bytes) and what
unsubscription reads.  Ablation A1 benchmarks compiled against direct
encoded-tree evaluation.
"""

from __future__ import annotations

from typing import AbstractSet, Callable

from .tree import NodeKind, TreeNode

MODE_ANY = 0
MODE_GROUPS = 1
MODE_CLOSURE = 2
MODE_DNF = 3

#: (mode, payload) — payload type depends on the mode.
CompiledTree = tuple[int, object]


def compile_tree(root: TreeNode) -> CompiledTree:
    """Compile a subscription tree into its fastest match form."""
    flat = _flat_predicate_ids(root)
    if flat is not None and root.kind in (NodeKind.LEAF, NodeKind.OR):
        return (MODE_ANY, frozenset(flat))
    if root.kind is NodeKind.AND:
        groups = []
        for child in root.children:
            child_flat = _flat_predicate_ids(child)
            if child_flat is None or child.kind is NodeKind.AND:
                break
            groups.append(frozenset(child_flat))
        else:
            return (MODE_GROUPS, tuple(groups))
    if root.kind is NodeKind.OR:
        conjunctions = []
        for child in root.children:
            child_flat = _flat_predicate_ids(child)
            if child_flat is None or child.kind is NodeKind.OR:
                break
            conjunctions.append(frozenset(child_flat))
        else:
            return (MODE_DNF, tuple(conjunctions))
    return (MODE_CLOSURE, _closure(root))


def _flat_predicate_ids(node: TreeNode) -> list[int] | None:
    """Leaf ids when ``node`` is a leaf or an operator over leaves only."""
    if node.kind is NodeKind.LEAF:
        return [node.predicate_id]
    if node.kind is NodeKind.NOT:
        return None
    ids = []
    for child in node.children:
        if child.kind is not NodeKind.LEAF:
            return None
        ids.append(child.predicate_id)
    return ids


def _closure(node: TreeNode) -> Callable[[AbstractSet[int]], bool]:
    """A composed-callable evaluator for arbitrarily shaped trees."""
    if node.kind is NodeKind.LEAF:
        predicate_id = node.predicate_id
        return lambda fulfilled: predicate_id in fulfilled
    if node.kind is NodeKind.NOT:
        inner = _closure(node.children[0])
        return lambda fulfilled: not inner(fulfilled)
    flat = _flat_predicate_ids(node)
    if flat is not None:
        members = frozenset(flat)
        if node.kind is NodeKind.OR:
            return lambda fulfilled: not members.isdisjoint(fulfilled)
        return lambda fulfilled: members <= fulfilled
    children = tuple(_closure(child) for child in node.children)
    if node.kind is NodeKind.AND:
        return lambda fulfilled: all(child(fulfilled) for child in children)
    return lambda fulfilled: any(child(fulfilled) for child in children)


def evaluate_compiled(
    compiled: CompiledTree, fulfilled_ids: AbstractSet[int]
) -> bool:
    """Evaluate a compiled tree (reference implementation for tests).

    The engine inlines these branches in its matching loop; this function
    states the semantics once and is what property tests check against
    the AST and the byte codec.
    """
    mode, payload = compiled
    if mode == MODE_ANY:
        return not payload.isdisjoint(fulfilled_ids)  # type: ignore[union-attr]
    if mode == MODE_GROUPS:
        for group in payload:  # type: ignore[union-attr]
            if group.isdisjoint(fulfilled_ids):
                return False
        return True
    if mode == MODE_DNF:
        for group in payload:  # type: ignore[union-attr]
            if group <= fulfilled_ids:
                return True
        return False
    return payload(fulfilled_ids)  # type: ignore[operator]
