"""Compacted n-ary subscription trees.

Internally, subscriptions are "compiled into subscription trees
representing their Boolean expression and their predicates, i.e., inner
nodes are marked with Boolean operators and leaf nodes represent
predicates.  Binary operators are treated as n-ary ones due to compacting
subscription trees.  Predicates p are represented by their identifiers
id(p) instead of their filter operations." (paper §3.1)

A :class:`SubscriptionTree` is therefore the bridge between the symbolic
AST (:mod:`repro.subscriptions.ast`) and the byte-level storage
(:mod:`repro.subscriptions.encoding`): leaves carry integer predicate
identifiers, and evaluation consumes the *set of fulfilled predicate
identifiers* produced by phase-1 predicate matching.
"""

from __future__ import annotations

import enum
from typing import AbstractSet, Callable, Iterator, Mapping, Sequence

from ..predicates.predicate import Predicate
from .ast import And, BooleanExpression, Not, Or, PredicateLeaf


class NodeKind(enum.IntEnum):
    """Tree node discriminator; values double as encoding opcodes."""

    LEAF = 0
    AND = 1
    OR = 2
    NOT = 3


class TreeNode:
    """A node of a compacted subscription tree.

    Leaves have ``kind == NodeKind.LEAF`` and carry ``predicate_id``;
    inner nodes carry ``children`` (n-ary for AND/OR, exactly one for
    NOT).
    """

    __slots__ = ("kind", "predicate_id", "children")

    def __init__(
        self,
        kind: NodeKind,
        *,
        predicate_id: int = 0,
        children: Sequence["TreeNode"] = (),
    ) -> None:
        self.kind = kind
        self.predicate_id = predicate_id
        self.children = tuple(children)
        if kind is NodeKind.LEAF:
            if self.children:
                raise ValueError("leaf nodes take no children")
            if predicate_id <= 0:
                raise ValueError("leaf nodes need a positive predicate id")
        elif kind is NodeKind.NOT:
            if len(self.children) != 1:
                raise ValueError("NOT nodes take exactly one child")
        else:
            if len(self.children) < 2:
                raise ValueError(f"{kind.name} nodes need at least two children")

    def evaluate(self, fulfilled_ids: AbstractSet[int]) -> bool:
        """Evaluate against the phase-1 output (fulfilled predicate ids)."""
        if self.kind is NodeKind.LEAF:
            return self.predicate_id in fulfilled_ids
        if self.kind is NodeKind.AND:
            return all(c.evaluate(fulfilled_ids) for c in self.children)
        if self.kind is NodeKind.OR:
            return any(c.evaluate(fulfilled_ids) for c in self.children)
        return not self.children[0].evaluate(fulfilled_ids)

    def predicate_ids(self) -> Iterator[int]:
        """Yield every predicate id occurrence in the subtree."""
        if self.kind is NodeKind.LEAF:
            yield self.predicate_id
            return
        for child in self.children:
            yield from child.predicate_ids()

    def node_count(self) -> int:
        """Number of nodes in the subtree."""
        return 1 + sum(c.node_count() for c in self.children)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TreeNode):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.predicate_id == other.predicate_id
            and self.children == other.children
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.predicate_id, self.children))

    def __repr__(self) -> str:
        if self.kind is NodeKind.LEAF:
            return f"Leaf({self.predicate_id})"
        inner = ", ".join(repr(c) for c in self.children)
        return f"{self.kind.name}({inner})"


class SubscriptionTree:
    """A compiled subscription: a compacted tree over predicate ids."""

    __slots__ = ("root",)

    def __init__(self, root: TreeNode) -> None:
        self.root = root

    @classmethod
    def from_expression(
        cls,
        expression: BooleanExpression,
        identifier: Callable[[Predicate], int],
    ) -> "SubscriptionTree":
        """Compile an AST into a tree, resolving predicates to ids.

        ``identifier`` is typically ``PredicateRegistry.register`` (at
        registration time) or ``PredicateRegistry.identifier`` (for
        read-only compilation).  The expression is flattened first so
        binary operator chains become single n-ary nodes.
        """
        return cls(_compile(expression.flattened(), identifier))

    def to_expression(
        self, predicate_of: Callable[[int], Predicate]
    ) -> BooleanExpression:
        """Reconstruct the symbolic AST (for display or re-registration)."""
        return _decompile(self.root, predicate_of)

    def evaluate(self, fulfilled_ids: AbstractSet[int]) -> bool:
        """Phase-2 evaluation against the fulfilled predicate id set."""
        return self.root.evaluate(fulfilled_ids)

    def predicate_ids(self) -> set[int]:
        """Distinct predicate ids used by this subscription."""
        return set(self.root.predicate_ids())

    def node_count(self) -> int:
        """Number of nodes in the tree."""
        return self.root.node_count()

    def reordered_by_selectivity(
        self, selectivity: Mapping[int, float]
    ) -> "SubscriptionTree":
        """Reorder operator children to maximize short-circuiting.

        ``selectivity[pid]`` is the probability that predicate ``pid`` is
        fulfilled by an event.  Under AND, the child *least* likely to be
        true goes first (fails fast); under OR, the child *most* likely to
        be true goes first (succeeds fast).  This is the "reordering
        subscription trees" optimization paper §3.2 leaves to future work;
        ablation A3 measures it.
        """
        return SubscriptionTree(_reorder(self.root, selectivity))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SubscriptionTree) and self.root == other.root

    def __hash__(self) -> int:
        return hash(self.root)

    def __repr__(self) -> str:
        return f"SubscriptionTree({self.root!r})"


def _compile(
    node: BooleanExpression, identifier: Callable[[Predicate], int]
) -> TreeNode:
    if isinstance(node, PredicateLeaf):
        return TreeNode(NodeKind.LEAF, predicate_id=identifier(node.predicate))
    if isinstance(node, Not):
        return TreeNode(NodeKind.NOT, children=(_compile(node.child, identifier),))
    if isinstance(node, And):
        children = tuple(_compile(c, identifier) for c in node.operands)
        return TreeNode(NodeKind.AND, children=children)
    if isinstance(node, Or):
        children = tuple(_compile(c, identifier) for c in node.operands)
        return TreeNode(NodeKind.OR, children=children)
    raise TypeError(f"unexpected expression node {node!r}")


def _decompile(
    node: TreeNode, predicate_of: Callable[[int], Predicate]
) -> BooleanExpression:
    if node.kind is NodeKind.LEAF:
        return PredicateLeaf(predicate_of(node.predicate_id))
    children = tuple(_decompile(c, predicate_of) for c in node.children)
    if node.kind is NodeKind.NOT:
        return Not(children[0])
    if node.kind is NodeKind.AND:
        return And(children)
    return Or(children)


def _truth_probability(node: TreeNode, selectivity: Mapping[int, float]) -> float:
    """Estimated probability the subtree evaluates to true.

    Assumes predicate independence — the standard estimate when no joint
    statistics are available.
    """
    if node.kind is NodeKind.LEAF:
        return selectivity.get(node.predicate_id, 0.5)
    if node.kind is NodeKind.NOT:
        return 1.0 - _truth_probability(node.children[0], selectivity)
    probabilities = [_truth_probability(c, selectivity) for c in node.children]
    if node.kind is NodeKind.AND:
        product = 1.0
        for p in probabilities:
            product *= p
        return product
    complement = 1.0
    for p in probabilities:
        complement *= 1.0 - p
    return 1.0 - complement


def _reorder(node: TreeNode, selectivity: Mapping[int, float]) -> TreeNode:
    if node.kind is NodeKind.LEAF:
        return node
    reordered_children = [_reorder(c, selectivity) for c in node.children]
    if node.kind is NodeKind.AND:
        reordered_children.sort(key=lambda c: _truth_probability(c, selectivity))
    elif node.kind is NodeKind.OR:
        reordered_children.sort(
            key=lambda c: _truth_probability(c, selectivity), reverse=True
        )
    return TreeNode(
        node.kind,
        predicate_id=node.predicate_id,
        children=tuple(reordered_children),
    )
