"""Byte-level subscription tree codecs and the tree arena.

The paper's prototype encodes subscription trees "on a byte level, e.g.,
to encode a Boolean operator we require one byte, also the number of
children for inner nodes is encoded by one byte.  Furthermore, the width
of children is stored using two bytes each and predicate identifiers
require four bytes." (§3.3)

:class:`BasicTreeCodec` reproduces that exact layout:

* a **leaf** is the 4-byte big-endian predicate identifier — nothing
  else.  Leaves are discriminated by width: the smallest possible
  operator encoding (a NOT above a leaf) occupies 8 bytes, so a child of
  width 4 is always a leaf;
* an **operator node** is ``opcode (1 byte) | child count (1 byte) |
  child widths (2 bytes each) | child encodings``.

:class:`VarintTreeCodec` is the "improved encoding" the paper defers to
future work (§5): a self-delimiting variable-length layout that drops the
fixed child widths entirely (ablation A2 quantifies the savings and the
evaluation cost of losing O(1) child skipping).

Evaluation runs **directly on the encoded bytes** — trees are never
materialized during matching, which is what makes the engine's working
set equal to the arena size.
"""

from __future__ import annotations

from typing import AbstractSet, Callable, Iterator

from .tree import NodeKind, SubscriptionTree, TreeNode

MAX_PREDICATE_ID = 0xFFFF_FFFF
MAX_CHILDREN = 0xFF
MAX_CHILD_WIDTH = 0xFFFF
_LEAF_WIDTH = 4


class EncodingError(ValueError):
    """Raised when a tree exceeds the codec's structural limits."""


class CorruptEncodingError(ValueError):
    """Raised when decoding meets bytes that are not a valid tree."""


class BasicTreeCodec:
    """The paper's fixed-width byte encoding (§3.3)."""

    name = "basic"

    def encode(self, tree: SubscriptionTree) -> bytes:
        """Serialize ``tree`` to its byte form."""
        return bytes(self._encode_node(tree.root))

    def _encode_node(self, node: TreeNode) -> bytearray:
        if node.kind is NodeKind.LEAF:
            if node.predicate_id > MAX_PREDICATE_ID:
                raise EncodingError(
                    f"predicate id {node.predicate_id} exceeds 4 bytes"
                )
            return bytearray(node.predicate_id.to_bytes(4, "big"))
        if len(node.children) > MAX_CHILDREN:
            raise EncodingError(
                f"operator has {len(node.children)} children; limit is {MAX_CHILDREN}"
            )
        encoded_children = [self._encode_node(c) for c in node.children]
        out = bytearray((int(node.kind), len(node.children)))
        for child in encoded_children:
            if len(child) > MAX_CHILD_WIDTH:
                raise EncodingError(f"child width {len(child)} exceeds 2 bytes")
            out += len(child).to_bytes(2, "big")
        for child in encoded_children:
            out += child
        return out

    def decode(
        self, buffer: bytes, offset: int = 0, width: int | None = None
    ) -> SubscriptionTree:
        """Deserialize the tree stored at ``buffer[offset:offset+width]``."""
        if width is None:
            width = len(buffer) - offset
        return SubscriptionTree(self._decode_node(memoryview(buffer), offset, width))

    def _decode_node(self, view: memoryview, offset: int, width: int) -> TreeNode:
        if width == _LEAF_WIDTH:
            pid = int.from_bytes(view[offset:offset + 4], "big")
            if pid == 0:
                raise CorruptEncodingError("predicate id 0 is reserved")
            return TreeNode(NodeKind.LEAF, predicate_id=pid)
        if width < 8:
            raise CorruptEncodingError(f"impossible node width {width}")
        try:
            kind = NodeKind(view[offset])
        except ValueError:
            raise CorruptEncodingError(
                f"unknown opcode {view[offset]} at offset {offset}"
            ) from None
        if kind is NodeKind.LEAF:
            raise CorruptEncodingError("LEAF opcode inside operator position")
        count = view[offset + 1]
        header = offset + 2
        widths = [
            int.from_bytes(view[header + 2 * i:header + 2 * i + 2], "big")
            for i in range(count)
        ]
        child_offset = header + 2 * count
        if sum(widths) + 2 + 2 * count != width:
            raise CorruptEncodingError(
                f"child widths {widths} inconsistent with node width {width}"
            )
        children = []
        for child_width in widths:
            children.append(self._decode_node(view, child_offset, child_width))
            child_offset += child_width
        return TreeNode(kind, children=tuple(children))

    def evaluate(
        self,
        buffer: bytes | bytearray | memoryview,
        offset: int,
        width: int,
        fulfilled_ids: AbstractSet[int],
    ) -> bool:
        """Evaluate the encoded tree without materializing nodes.

        Short-circuits: under AND the remaining children are *skipped*
        (their widths are known, so skipping is O(1) per child), likewise
        under OR after a fulfilled child.

        This is the hottest loop of the non-canonical engine (one call
        per candidate subscription per event), so it is hand-tuned:
        predicate ids are decoded with shifts instead of slicing, and a
        child that is itself a flat operator over leaves — recognizable
        from its width alone (``2 + 6n``) — is evaluated inline.  The
        paper's two-level workload trees (AND of binary ORs) therefore
        evaluate in a single call.
        """
        if width == _LEAF_WIDTH:
            pid = (
                (buffer[offset] << 24)
                | (buffer[offset + 1] << 16)
                | (buffer[offset + 2] << 8)
                | buffer[offset + 3]
            )
            return pid in fulfilled_ids
        opcode = buffer[offset]
        count = buffer[offset + 1]
        table = offset + 2                 # child width table
        child = table + 2 * count          # first child encoding
        if opcode == 3:  # NOT
            child_width = (buffer[table] << 8) | buffer[table + 1]
            return not self.evaluate(buffer, child, child_width, fulfilled_ids)
        want = opcode == 2  # OR short-circuits on a true child
        for _ in range(count):
            child_width = (buffer[table] << 8) | buffer[table + 1]
            table += 2
            if child_width == _LEAF_WIDTH:
                value = (
                    (buffer[child] << 24)
                    | (buffer[child + 1] << 16)
                    | (buffer[child + 2] << 8)
                    | buffer[child + 3]
                ) in fulfilled_ids
            else:
                inner_opcode = buffer[child]
                inner_count = buffer[child + 1]
                if child_width == 2 + 6 * inner_count and inner_opcode != 3:
                    # flat AND/OR over leaves: evaluate inline
                    inner_want = inner_opcode == 2
                    value = not inner_want
                    leaf = child + 2 + 2 * inner_count
                    for _ in range(inner_count):
                        if ((
                            (buffer[leaf] << 24)
                            | (buffer[leaf + 1] << 16)
                            | (buffer[leaf + 2] << 8)
                            | buffer[leaf + 3]
                        ) in fulfilled_ids) == inner_want:
                            value = inner_want
                            break
                        leaf += 4
                else:
                    value = self.evaluate(buffer, child, child_width, fulfilled_ids)
            if value == want:
                return want
            child += child_width
        return not want

    def predicate_ids(
        self, buffer: bytes | bytearray | memoryview, offset: int, width: int
    ) -> Iterator[int]:
        """Yield predicate ids straight from the encoded form.

        Used by unsubscription to clean the association table without
        decoding the whole tree into objects.
        """
        if width == _LEAF_WIDTH:
            yield int.from_bytes(buffer[offset:offset + 4], "big")
            return
        count = buffer[offset + 1]
        header = offset + 2
        child_offset = header + 2 * count
        for i in range(count):
            child_width = int.from_bytes(
                buffer[header + 2 * i:header + 2 * i + 2], "big"
            )
            yield from self.predicate_ids(buffer, child_offset, child_width)
            child_offset += child_width

    def encoded_size(self, tree: SubscriptionTree) -> int:
        """Size in bytes of the encoding, computed without serializing."""
        return self._size(tree.root)

    def _size(self, node: TreeNode) -> int:
        if node.kind is NodeKind.LEAF:
            return 4
        return 2 + 2 * len(node.children) + sum(self._size(c) for c in node.children)


def _encode_varint(value: int, out: bytearray) -> None:
    """LEB128 unsigned varint."""
    if value < 0:
        raise EncodingError("varints encode non-negative integers only")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _decode_varint(buffer, offset: int) -> tuple[int, int]:
    """Return (value, next_offset)."""
    result = 0
    shift = 0
    while True:
        try:
            byte = buffer[offset]
        except IndexError:
            raise CorruptEncodingError("truncated varint") from None
        result |= (byte & 0x7F) << shift
        offset += 1
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise CorruptEncodingError("varint too long")


class VarintTreeCodec:
    """Self-delimiting variable-length encoding (paper §5 "improved encoding").

    Layout: every node starts with a header varint ``h`` whose two low
    bits are the :class:`NodeKind`; for leaves ``h >> 2`` is the predicate
    id, for AND/OR it is the child count, for NOT it is zero.  Children
    follow immediately — no width table, so typical nodes shrink from
    ``2 + 2n`` header bytes to one or two, and small predicate ids cost
    one byte instead of four.  The trade-off: short-circuiting can no
    longer *skip* children in O(1); skipped children must still be parsed
    (ablation A2).
    """

    name = "varint"

    def encode(self, tree: SubscriptionTree) -> bytes:
        out = bytearray()
        self._encode_node(tree.root, out)
        return bytes(out)

    def _encode_node(self, node: TreeNode, out: bytearray) -> None:
        if node.kind is NodeKind.LEAF:
            _encode_varint((node.predicate_id << 2) | NodeKind.LEAF, out)
            return
        if node.kind is NodeKind.NOT:
            _encode_varint(NodeKind.NOT, out)
            self._encode_node(node.children[0], out)
            return
        _encode_varint((len(node.children) << 2) | int(node.kind), out)
        for child in node.children:
            self._encode_node(child, out)

    def decode(
        self, buffer: bytes, offset: int = 0, width: int | None = None
    ) -> SubscriptionTree:
        node, end = self._decode_node(buffer, offset)
        if width is not None and end - offset != width:
            raise CorruptEncodingError(
                f"decoded {end - offset} bytes, expected {width}"
            )
        return SubscriptionTree(node)

    def _decode_node(self, buffer, offset: int) -> tuple[TreeNode, int]:
        header, offset = _decode_varint(buffer, offset)
        kind = NodeKind(header & 3)
        payload = header >> 2
        if kind is NodeKind.LEAF:
            if payload == 0:
                raise CorruptEncodingError("predicate id 0 is reserved")
            return TreeNode(NodeKind.LEAF, predicate_id=payload), offset
        if kind is NodeKind.NOT:
            child, offset = self._decode_node(buffer, offset)
            return TreeNode(NodeKind.NOT, children=(child,)), offset
        children = []
        for _ in range(payload):
            child, offset = self._decode_node(buffer, offset)
            children.append(child)
        return TreeNode(kind, children=tuple(children)), offset

    def evaluate(
        self,
        buffer: bytes | bytearray | memoryview,
        offset: int,
        width: int,
        fulfilled_ids: AbstractSet[int],
    ) -> bool:
        """Evaluate directly on the bytes; ``width`` is accepted for
        interface parity with :class:`BasicTreeCodec` but not needed."""
        result, _ = self._evaluate(buffer, offset, fulfilled_ids)
        return result

    def _evaluate(self, buffer, offset: int, fulfilled_ids) -> tuple[bool, int]:
        header, offset = _decode_varint(buffer, offset)
        kind = header & 3
        payload = header >> 2
        if kind == NodeKind.LEAF:
            return payload in fulfilled_ids, offset
        if kind == NodeKind.NOT:
            result, offset = self._evaluate(buffer, offset, fulfilled_ids)
            return not result, offset
        want = kind == NodeKind.OR
        settled = False
        result = not want
        for _ in range(payload):
            if settled:
                offset = self._skip(buffer, offset)
                continue
            child_result, offset = self._evaluate(buffer, offset, fulfilled_ids)
            if child_result == want:
                result = want
                settled = True
        return result, offset

    def _skip(self, buffer, offset: int) -> int:
        header, offset = _decode_varint(buffer, offset)
        kind = header & 3
        payload = header >> 2
        if kind == NodeKind.LEAF:
            return offset
        if kind == NodeKind.NOT:
            return self._skip(buffer, offset)
        for _ in range(payload):
            offset = self._skip(buffer, offset)
        return offset

    def predicate_ids(
        self, buffer: bytes | bytearray | memoryview, offset: int, width: int
    ) -> Iterator[int]:
        """Yield predicate ids from the encoded form."""
        yield from self._ids(buffer, offset)[0]

    def _ids(self, buffer, offset: int) -> tuple[list[int], int]:
        header, offset = _decode_varint(buffer, offset)
        kind = header & 3
        payload = header >> 2
        if kind == NodeKind.LEAF:
            return [payload], offset
        if kind == NodeKind.NOT:
            return self._ids(buffer, offset)
        collected: list[int] = []
        for _ in range(payload):
            ids, offset = self._ids(buffer, offset)
            collected.extend(ids)
        return collected, offset

    def encoded_size(self, tree: SubscriptionTree) -> int:
        """Size in bytes of the encoding."""
        return len(self.encode(tree))


TreeCodec = BasicTreeCodec | VarintTreeCodec

CODECS: dict[str, Callable[[], TreeCodec]] = {
    "basic": BasicTreeCodec,
    "varint": VarintTreeCodec,
}


class TreeArena:
    """A contiguous byte arena holding all encoded subscription trees.

    The engine's subscription location table maps ``id(s)`` to
    ``loc(s)`` — an ``(offset, width)`` pair into this arena.  The arena
    supports freeing (for unsubscription) by tracking dead bytes and
    compacting when fragmentation passes a threshold.
    """

    def __init__(self, *, compaction_threshold: float = 0.5) -> None:
        if not 0.0 < compaction_threshold <= 1.0:
            raise ValueError("compaction_threshold must be in (0, 1]")
        self._buffer = bytearray()
        self._dead_bytes = 0
        self._live: dict[int, int] = {}  # offset -> width
        self._compaction_threshold = compaction_threshold

    @property
    def buffer(self) -> bytearray:
        """The raw arena bytes (live and dead regions)."""
        return self._buffer

    @property
    def size(self) -> int:
        """Total arena size in bytes, including dead regions."""
        return len(self._buffer)

    @property
    def live_bytes(self) -> int:
        """Bytes occupied by live (not yet freed) trees."""
        return len(self._buffer) - self._dead_bytes

    @property
    def dead_bytes(self) -> int:
        """Bytes occupied by freed trees awaiting compaction."""
        return self._dead_bytes

    def add(self, encoded: bytes) -> tuple[int, int]:
        """Append an encoded tree; return its ``(offset, width)`` location."""
        if not encoded:
            raise ValueError("cannot store an empty encoding")
        offset = len(self._buffer)
        self._buffer += encoded
        self._live[offset] = len(encoded)
        return offset, len(encoded)

    def free(self, offset: int, width: int) -> None:
        """Mark the tree at ``(offset, width)`` as dead."""
        stored = self._live.get(offset)
        if stored is None or stored != width:
            raise KeyError(f"no live tree at offset {offset} width {width}")
        del self._live[offset]
        self._dead_bytes += width

    def needs_compaction(self) -> bool:
        """Whether dead space exceeds the configured fraction of the arena."""
        if not self._buffer:
            return False
        return self._dead_bytes / len(self._buffer) > self._compaction_threshold

    def compact(self) -> dict[int, int]:
        """Rewrite the arena without dead regions.

        Returns
        -------
        dict
            Mapping from old offset to new offset for every live tree;
            the caller (the engine) must rewrite its location table.
        """
        new_buffer = bytearray()
        relocations: dict[int, int] = {}
        for offset in sorted(self._live):
            width = self._live[offset]
            relocations[offset] = len(new_buffer)
            new_buffer += self._buffer[offset:offset + width]
        self._buffer = new_buffer
        self._live = {relocations[old]: w for old, w in
                      ((old, self._live[old]) for old in relocations)}
        self._dead_bytes = 0
        return relocations
