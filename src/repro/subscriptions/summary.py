"""Per-expression summaries: signatures, interval hulls, point anchors.

One derivation serves two consumers.  The covering index
(:mod:`repro.subscriptions.covering_index`) prefilters candidate
coverer/covered pairs with the required-attribute signature and the
interval hulls; the sharded runtime's routed partitioner
(:mod:`repro.core.sharded`) places subscriptions into event-space
regions with the same hulls plus the *point anchors* and prunes whole
shards per event.  Keeping both on one cached ``summarize`` means a
subscription that enters a broker's covering index and its sharded
engine derives its canonical DNF exactly once.

Summary fields and their soundness roles:

* ``required`` — attributes appearing in **every** DNF clause.  A
  necessary condition for *covering* (a coverer's required set is a
  subset of the covered one's), but **not** for event admission: a
  clause can require an attribute only through a *negative* literal,
  which an event satisfies by omitting the attribute entirely.
* ``hulls`` — per-attribute convex hull over all positive interval
  literals, present only when every clause has at least one (the
  *tight* attributes).  Tightness makes the hull a sound
  event-admission condition: an event can only match if it carries the
  attribute with a value inside the hull.
* ``anchors`` — per-attribute finite value set, present only when
  every satisfiable clause pins the attribute to a single point (the
  intersection of its positive interval literals is degenerate).  The
  strongest sound admission condition — ``e[attr] ∈ anchors[attr]`` —
  and the routed partitioner's region key for equality-keyed corpora.
* ``clause_hulls`` — covered-role hull of per-clause intersection
  intervals; only the covering prefilters consume it.

Expressions whose canonical DNF explodes past the clause cap summarize
to the universal summary (no signature, no hulls, no anchors): the
covering index never lets them cover anything, and the partitioner
never prunes an event away from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..predicates.operators import Operator
from . import normal_forms as _normal_forms
from .ast import BooleanExpression
from .covering import _bounds
from .normal_forms import (
    DisjunctiveNormalForm,
    DnfExplosionError,
    canonical_dnf,
)

#: Interval quadruple: (low, high, low_inclusive, high_inclusive) with
#: ``None`` bounds meaning unbounded — the representation
#: :func:`repro.subscriptions.covering._bounds` produces.
Interval = tuple


def _hull(first: Interval, second: Interval) -> Interval:
    """Smallest interval containing both (the convex hull).

    Raises ``TypeError`` on cross-domain bounds (string versus number);
    callers treat that as "no usable interval summary".
    """
    a_low, a_high, a_incl, a_inch = first
    b_low, b_high, b_incl, b_inch = second
    if a_low is None or b_low is None:
        low, incl = None, False
    elif a_low < b_low or (a_low == b_low and a_incl):
        low, incl = a_low, a_incl or (a_low == b_low and b_incl)
    else:
        low, incl = b_low, b_incl
    if a_high is None or b_high is None:
        high, inch = None, False
    elif a_high > b_high or (a_high == b_high and a_inch):
        high, inch = a_high, a_inch or (a_high == b_high and b_inch)
    else:
        high, inch = b_high, b_inch
    return (low, high, incl, inch)


def _intersect(first: Interval, second: Interval) -> Interval | None:
    """Interval intersection; ``None`` when empty.

    Raises ``TypeError`` on cross-domain bounds.
    """
    a_low, a_high, a_incl, a_inch = first
    b_low, b_high, b_incl, b_inch = second
    if a_low is None:
        low, incl = b_low, b_incl
    elif b_low is None or a_low > b_low:
        low, incl = a_low, a_incl
    elif a_low < b_low:
        low, incl = b_low, b_incl
    else:
        low, incl = a_low, a_incl and b_incl
    if a_high is None:
        high, inch = b_high, b_inch
    elif b_high is None or a_high < b_high:
        high, inch = a_high, a_inch
    elif a_high > b_high:
        high, inch = b_high, b_inch
    else:
        high, inch = a_high, a_inch and b_inch
    if low is not None and high is not None:
        if low > high or (low == high and not (incl and inch)):
            return None
    return (low, high, incl, inch)


def interval_admits(hull: Interval, value) -> bool:
    """Whether ``value`` lies inside ``hull`` (conservative on TypeError).

    The event-admission test behind hull-based pruning: cross-domain
    comparisons answer ``True`` ("cannot exclude"), never raise.
    """
    low, high, incl, inch = hull
    try:
        if low is not None and (value < low or (value == low and not incl)):
            return False
        if high is not None and (value > high or (value == high and not inch)):
            return False
    except TypeError:
        return True
    return True


def _pseudo_bounds(predicate) -> Interval | None:
    """A value-set bounding interval for prefilter purposes.

    Extends :func:`~repro.subscriptions.covering._bounds` with operators
    whose value set still fits an interval envelope: ``IN`` (hull of the
    alternatives) and boolean ``EQ`` (booleans order as 0/1).  Every
    interval produced is a *necessary* condition on the event value, so
    it is usable on the covered side of the covering prefilter and in
    the admission intersections below.
    """
    bounds = _bounds(predicate)
    if bounds is not None:
        return bounds
    operator = predicate.operator
    value = predicate.value
    if operator is Operator.IN:
        values = list(value)
        try:
            low, high = min(values), max(values)
        except TypeError:
            return None
        return (low, high, True, True)
    if operator is Operator.EQ and isinstance(value, bool):
        return (value, value, True, True)
    return None


@dataclass(frozen=True)
class ExpressionSummary:
    """Everything the prefilters and the router need, precomputed once.

    ``dnf`` is ``None`` when the canonical derivation exploded past the
    clause cap — such expressions are always maximal in the covering
    poset, never act as coverers, and are universal to the router (no
    event may be pruned away from them).
    """

    dnf: DisjunctiveNormalForm | None
    #: attributes appearing in every DNF clause
    required: frozenset
    #: coverer role: attribute -> hull over all positive interval
    #: literals, present only when *every* clause has at least one
    hulls: Mapping[str, Interval]
    #: covered role: attribute -> hull of per-clause intersection
    #: intervals (``None`` value = unusable, prefilter must pass)
    clause_hulls: Mapping[str, Interval | None]
    #: router role: attribute -> finite point-value set, present only
    #: when every satisfiable clause pins the attribute to one value
    anchors: Mapping[str, frozenset] = field(default_factory=dict)


#: (expression, max_clauses) -> summary, LRU order.  One subscription
#: propagating across a B-broker overlay enters B-1 covering indexes
#: and one routed partitioner per sharded engine; the summary (like the
#: DNF underneath it) is a pure function of the expression, so it is
#: computed once, not once per consumer.
_summary_cache: "dict[tuple[BooleanExpression, int], ExpressionSummary]" = {}
_SUMMARY_CACHE_LIMIT = 16_384

# summaries retain DNF objects: clear them whenever the DNF memo clears
_normal_forms._dependent_cache_clearers.append(_summary_cache.clear)


def summarize(
    expression: BooleanExpression, *, max_clauses: int
) -> ExpressionSummary:
    """Build (or recall) the summary of one expression."""
    key = (expression, max_clauses)
    cached = _summary_cache.get(key)
    if cached is not None:
        _summary_cache[key] = _summary_cache.pop(key)  # refresh LRU slot
        return cached
    summary = _summarize(expression, max_clauses=max_clauses)
    _summary_cache[key] = summary
    if len(_summary_cache) > _SUMMARY_CACHE_LIMIT:
        _summary_cache.pop(next(iter(_summary_cache)))
    return summary


def _summarize(
    expression: BooleanExpression, *, max_clauses: int
) -> ExpressionSummary:
    try:
        dnf = canonical_dnf(expression, max_clauses=max_clauses)
    except DnfExplosionError:
        return ExpressionSummary(None, frozenset(), {}, {}, {})
    attribute_sets = []
    for clause in dnf:
        attribute_sets.append(
            frozenset(literal.predicate.attribute for literal in clause)
        )
    required = frozenset.intersection(*attribute_sets)
    hulls: dict[str, Interval] = {}
    clause_hulls: dict[str, Interval | None] = {}
    anchors: dict[str, frozenset] = {}
    for attribute in required:
        coverer_hull: Interval | None = None
        covered_hull: Interval | None = None
        tight = True          # every clause has a positive interval literal
        usable = True         # no cross-domain TypeError anywhere
        anchored = True       # every satisfiable clause pins one value
        points: set = set()
        for clause in dnf:
            clause_interval: Interval | None = None
            clause_nonempty = True
            has_interval_literal = False
            for literal in clause:
                if literal.predicate.attribute != attribute:
                    continue
                if not literal.positive:
                    continue
                exact = _bounds(literal.predicate)
                if exact is not None:
                    has_interval_literal = True
                    if coverer_hull is None:
                        coverer_hull = exact
                    else:
                        try:
                            coverer_hull = _hull(coverer_hull, exact)
                        except TypeError:
                            usable = False
                            break
                pseudo = exact or _pseudo_bounds(literal.predicate)
                if pseudo is not None and clause_nonempty:
                    if clause_interval is None:
                        clause_interval = pseudo
                    else:
                        try:
                            clause_interval = _intersect(clause_interval, pseudo)
                        except TypeError:
                            usable = False
                            break
                        if clause_interval is None:
                            clause_nonempty = False
            if not usable:
                break
            if not has_interval_literal:
                tight = False
            # anchor bookkeeping: an unsatisfiable clause admits no
            # event and contributes no point; a satisfiable clause
            # anchors only when its intersection is a single value
            if clause_nonempty:
                if (
                    clause_interval is not None
                    and clause_interval[0] is not None
                    and clause_interval[0] == clause_interval[1]
                    and clause_interval[2]
                    and clause_interval[3]
                ):
                    points.add(clause_interval[0])
                else:
                    anchored = False
            if clause_nonempty and clause_interval is None:
                # no positive interval-able literal: the clause admits
                # any value, so the covered-role hull is unbounded
                clause_interval = (None, None, False, False)
            if clause_nonempty:
                if covered_hull is None:
                    covered_hull = clause_interval
                else:
                    try:
                        covered_hull = _hull(covered_hull, clause_interval)
                    except TypeError:
                        usable = False
                        break
        if not usable:
            clause_hulls[attribute] = None
            continue
        if tight and coverer_hull is not None:
            hulls[attribute] = coverer_hull
        if anchored:
            anchors[attribute] = frozenset(points)
        # covered_hull None here means every clause was empty on this
        # attribute (unsatisfiable): contained in anything
        clause_hulls[attribute] = covered_hull or "empty"
    return ExpressionSummary(dnf, required, hulls, clause_hulls, anchors)
