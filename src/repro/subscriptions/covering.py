"""Subscription covering: does one subscription subsume another?

Subscription ``s1`` *covers* ``s2`` when every event matching ``s2`` also
matches ``s1``.  Covering is the workhorse of routing-table compaction in
distributed pub/sub (Mühl & Fiege [14], which the paper cites): a broker
that already forwards events for ``s1`` need not register a covered
``s2`` on intermediate hops.

Deciding implication between arbitrary Boolean expressions is co-NP-hard
in general; this module implements the standard *sound but incomplete*
layered test:

1. **predicate level** — :func:`predicate_covers` decides implication
   between two attribute-operator-value predicates exactly (same
   attribute, comparable operator pairs);
2. **conjunction level** — a conjunction ``c1`` covers ``c2`` iff every
   predicate of ``c1`` is covered by some predicate of ``c2``;
3. **expression level** — :func:`covers` puts both expressions into DNF
   and requires every clause of the covered expression to be covered by
   some clause of the coverer.

A ``True`` answer is always correct; ``False`` may be a false negative
(the optimization is then merely skipped, never wrong).
"""

from __future__ import annotations

from ..predicates.operators import Operator
from ..predicates.predicate import Predicate
from .ast import BooleanExpression
from .normal_forms import (
    Clause,
    DisjunctiveNormalForm,
    DnfExplosionError,
    canonical_dnf,
)


def _bounds(predicate: Predicate):
    """Normalize a numeric predicate to an interval (low, high, incl, inch).

    Returns ``None`` for non-interval predicates.  Open endpoints are
    ``None``.
    """
    op, value = predicate.operator, predicate.value
    if op is Operator.LT:
        return (None, value, False, False)
    if op is Operator.LE:
        return (None, value, False, True)
    if op is Operator.GT:
        return (value, None, False, False)
    if op is Operator.GE:
        return (value, None, True, False)
    if op is Operator.EQ and not isinstance(value, bool):
        return (value, value, True, True)
    if op is Operator.BETWEEN:
        low, high = value
        return (low, high, True, True)
    return None


def _interval_contains(outer, inner) -> bool:
    """Whether the outer interval contains the inner one."""
    o_low, o_high, o_incl, o_inch = outer
    i_low, i_high, i_incl, i_inch = inner
    if o_low is not None:
        if i_low is None:
            return False
        if i_low < o_low:
            return False
        if i_low == o_low and i_incl and not o_incl:
            return False
    if o_high is not None:
        if i_high is None:
            return False
        if i_high > o_high:
            return False
        if i_high == o_high and i_inch and not o_inch:
            return False
    return True


def predicate_covers(coverer: Predicate, covered: Predicate) -> bool:
    """Exact implication between two predicates: ``covered ⇒ coverer``.

    Examples
    --------
    >>> predicate_covers(Predicate("a", Operator.GE, 5),
    ...                  Predicate("a", Operator.GT, 7))
    True
    >>> predicate_covers(Predicate("s", Operator.PREFIX, "ab"),
    ...                  Predicate("s", Operator.PREFIX, "abc"))
    True
    """
    if coverer == covered:
        return True
    if coverer.attribute != covered.attribute:
        return False
    c_op, c_val = coverer.operator, coverer.value
    d_op, d_val = covered.operator, covered.value
    # EXISTS covers anything on the same attribute (all predicates
    # require the attribute to be present)
    if c_op is Operator.EXISTS:
        return True
    # interval containment covers all comparison pairs
    outer, inner = _bounds(coverer), _bounds(covered)
    if outer is not None and inner is not None:
        try:
            return _interval_contains(outer, inner)
        except TypeError:
            return False
    if c_op is Operator.IN:
        if d_op is Operator.EQ:
            return d_val in c_val
        if d_op is Operator.IN:
            return d_val <= c_val
        return False
    if c_op is Operator.EQ and d_op is Operator.IN:
        return c_val == frozenset(d_val) or d_val == frozenset((c_val,))
    if c_op is Operator.NE:
        if d_op is Operator.NE:
            return c_val == d_val
        if d_op is Operator.EQ:
            # a = d implies a != c only within one equality domain
            # (bool and int are distinct domains in this system)
            same_domain = isinstance(c_val, bool) == isinstance(d_val, bool)
            return same_domain and c_val != d_val
        inner = _bounds(covered)
        if inner is not None:
            low, high, incl, inch = inner
            try:
                if low is not None and c_val < low:
                    return True
                if low is not None and c_val == low and not incl:
                    return True
                if high is not None and c_val > high:
                    return True
                if high is not None and c_val == high and not inch:
                    return True
            except TypeError:
                return False
        if d_op is Operator.IN:
            return c_val not in d_val
        return False
    if c_op is Operator.PREFIX:
        if d_op is Operator.PREFIX:
            return d_val.startswith(c_val)
        if d_op is Operator.EQ and isinstance(d_val, str):
            return d_val.startswith(c_val)
        return False
    if c_op is Operator.SUFFIX:
        if d_op is Operator.SUFFIX:
            return d_val.endswith(c_val)
        if d_op is Operator.EQ and isinstance(d_val, str):
            return d_val.endswith(c_val)
        return False
    if c_op is Operator.CONTAINS:
        if d_op in (Operator.CONTAINS, Operator.PREFIX, Operator.SUFFIX):
            return c_val in d_val
        if d_op is Operator.EQ and isinstance(d_val, str):
            return c_val in d_val
        return False
    return False


def clause_covers(coverer: Clause, covered: Clause) -> bool:
    """Conjunction implication: every coverer literal follows from some
    covered literal.  Negative literals must match exactly."""
    for literal in coverer.literals:
        satisfied = False
        for candidate in covered.literals:
            if literal.positive and candidate.positive:
                if predicate_covers(literal.predicate, candidate.predicate):
                    satisfied = True
                    break
            elif not literal.positive and not candidate.positive:
                # NOT p is implied by NOT q iff q is implied by p
                if predicate_covers(candidate.predicate, literal.predicate):
                    satisfied = True
                    break
        if not satisfied:
            return False
    return True


def covers(
    coverer: BooleanExpression,
    covered: BooleanExpression,
    *,
    max_clauses: int = 4_096,
) -> bool:
    """Sound (incomplete) covering test between Boolean expressions.

    Both expressions are put into DNF (memoized — see
    :func:`~repro.subscriptions.normal_forms.canonical_dnf`); ``coverer``
    covers ``covered`` when every clause of the covered DNF is covered
    by some clause of the coverer's DNF.  Expressions whose DNF exceeds
    ``max_clauses`` conservatively return ``False``.
    """
    try:
        coverer_dnf = canonical_dnf(coverer, max_clauses=max_clauses)
        covered_dnf = canonical_dnf(covered, max_clauses=max_clauses)
    except DnfExplosionError:
        return False
    return dnf_covers(coverer_dnf, covered_dnf)


def dnf_covers(
    coverer_dnf: DisjunctiveNormalForm,
    covered_dnf: DisjunctiveNormalForm,
) -> bool:
    """The DNF-level covering test behind :func:`covers`.

    Split out so callers that already hold both canonical DNFs (the
    covering index keeps them per subscription) pay only the clause
    comparison, never a re-derivation.
    """
    for covered_clause in covered_dnf:
        if not any(
            clause_covers(coverer_clause, covered_clause)
            for coverer_clause in coverer_dnf
        ):
            return False
    return True


def prune_covered(
    expressions: dict[int, BooleanExpression],
    *,
    max_clauses: int = 4_096,
) -> tuple[set[int], dict[int, int]]:
    """Split a subscription set into maximal and covered members.

    Returns
    -------
    (maximal_ids, covered_by)
        ``maximal_ids`` — ids whose expressions are not covered by any
        other member; ``covered_by`` — for each covered id, the id of
        one covering member (itself maximal).

    Routing tables keep only the maximal set; the mapping supports
    reinstating covered members when their coverer is removed.

    Implemented on the incremental
    :class:`~repro.subscriptions.covering_index.CoveringIndex` — ids are
    inserted in sorted order and the index's poset is the answer, so the
    batch and incremental paths cannot drift apart.
    """
    # local import: covering_index builds on this module's primitives
    from .covering_index import CoveringIndex

    index = CoveringIndex(max_clauses=max_clauses)
    for identifier in sorted(expressions):
        index.add(identifier, expressions[identifier])
    return set(index.maximal_ids()), dict(index.covered_mapping())
