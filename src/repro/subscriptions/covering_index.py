"""Incremental covering poset over a subscription population.

:class:`CoveringIndex` maintains, under ``add``/``remove`` churn, the
partition of a subscription set into **maximal** members (covered by no
other live member) and **covered** members (each mapped to one maximal
coverer).  Broker routing tables keep only the maximal set registered;
the mapping supports re-absorbing covered members when their coverer is
withdrawn (Mühl & Fiege routing-table compaction, which the paper cites
as [14]).

What makes it cheap:

* **cached canonical DNF** — each expression's DNF is derived once
  (:func:`~repro.subscriptions.normal_forms.canonical_dnf`) and kept in
  the per-id summary, so no :func:`~repro.subscriptions.covering.covers`
  call ever re-derives a normal form.  Summaries live in
  :mod:`repro.subscriptions.summary`, shared with the sharded runtime's
  routed partitioner — one derivation feeds covering *and* routing;
* **attribute-signature prefilter** — maximal ids are bucketed by their
  *required attribute set* (attributes appearing in every DNF clause).
  A coverer's required set is necessarily a subset of the covered
  expression's required set, so whole buckets are skipped with one
  frozenset comparison;
* **operator-interval prefilter** — per attribute, each expression
  carries an interval *hull* (coverer role) and per-clause intersection
  hulls (covered role); containment between them is a necessary
  condition of the layered covering test whenever the coverer
  constrains the attribute in every clause, so band-structured corpora
  (price bands, value ranges) resolve almost every candidate pair
  without an exact clause-level test.

Both prefilters are *necessary conditions* of the layered test in
:mod:`repro.subscriptions.covering` — they never prune a pair the exact
test would accept — so the index computes exactly the poset that
pairwise ``covers()`` calls would, in ``o(N²)`` exact tests on corpora
where the prefilters apply (the :attr:`CoveringIndex.covers_calls`
counter is asserted against in ``benchmarks/test_network_routing.py``).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from .covering import _interval_contains, dnf_covers
from .summary import (
    ExpressionSummary as _Summary,
    Interval,
    _hull,
    _intersect,
    _pseudo_bounds,
    summarize,
)

__all__ = [
    "AddOutcome",
    "CoveringIndex",
    "Interval",
    "RemoveOutcome",
    "summarize",
]


def _hull_fits(coverer: _Summary, covered: _Summary) -> bool:
    """Operator-interval prefilter: necessary containment per attribute."""
    for attribute, outer in coverer.hulls.items():
        inner = covered.clause_hulls.get(attribute)
        if inner is None:
            continue          # unusable summary on that attribute: pass
        if inner == "empty":
            continue          # vacuously contained
        try:
            if not _interval_contains(outer, inner):
                return False
        except TypeError:
            continue
    return True


@dataclass(frozen=True)
class AddOutcome:
    """What :meth:`CoveringIndex.add` changed.

    ``covered_by`` is set when the new id arrived already covered by a
    live maximal member.  ``newly_covered`` lists previously-maximal ids
    the new member absorbed (their covered subtrees re-root to the new
    id as well) — a routing table unregisters exactly these.
    """

    identifier: int
    covered_by: int | None = None
    newly_covered: tuple[int, ...] = ()


@dataclass(frozen=True)
class RemoveOutcome:
    """What :meth:`CoveringIndex.remove` changed.

    ``reabsorbed`` maps orphans that found another live coverer to that
    coverer (they stay suppressed); ``newly_exposed`` lists orphans
    promoted to maximal — a routing table reinstates exactly these.
    ``absorbed`` lists *pre-existing* maximal members a promoted orphan
    turned out to cover (the layered test can miss transitive relations
    at add time and see them on re-check) — a routing table unregisters
    exactly these.
    """

    identifier: int
    was_covered: bool
    coverer: int | None = None
    reabsorbed: Mapping[int, int] = field(default_factory=dict)
    newly_exposed: tuple[int, ...] = ()
    absorbed: tuple[int, ...] = ()


class CoveringIndex:
    """The covering partial order, maintained incrementally.

    Parameters
    ----------
    max_clauses:
        Clause cap forwarded to the canonical-DNF derivation; the same
        conservative-false semantics as
        :func:`~repro.subscriptions.covering.covers`.
    """

    def __init__(self, *, max_clauses: int = 4_096) -> None:
        self.max_clauses = max_clauses
        self._summaries: dict[int, _Summary] = {}
        self._covered_by: dict[int, int] = {}
        self._children: dict[int, set[int]] = {}
        self._maximal: set[int] = set()
        #: maximal ids with a usable DNF, bucketed by required-attribute
        #: signature — the unit the signature prefilter skips.  Each
        #: bucket is kept sorted (candidate scans are deterministic
        #: without re-sorting on every add/remove).
        self._buckets: dict[frozenset, list[int]] = {}
        #: exact clause-level covering tests performed (the o(N²) claim)
        self.covers_calls = 0
        #: candidate ids discarded by the signature prefilter
        self.signature_pruned = 0
        #: candidate ids discarded by the interval prefilter
        self.interval_pruned = 0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._summaries)

    def __contains__(self, identifier: int) -> bool:
        return identifier in self._summaries

    def maximal_ids(self) -> frozenset:
        """Ids covered by no other live member."""
        return frozenset(self._maximal)

    def covered_mapping(self) -> dict[int, int]:
        """Covered id -> its (maximal) coverer."""
        return dict(self._covered_by)

    def covered_count(self) -> int:
        """Number of covered ids (no mapping materialization)."""
        return len(self._covered_by)

    def coverer_of(self, identifier: int) -> int | None:
        """The id suppressing ``identifier``, or ``None`` if maximal."""
        return self._covered_by.get(identifier)

    def is_covered(self, identifier: int) -> bool:
        """Whether ``identifier`` is currently covered."""
        return identifier in self._covered_by

    def ids(self) -> Iterator[int]:
        """Every live id."""
        return iter(self._summaries)

    def prefilter_stats(self) -> dict[str, int]:
        """Work counters: exact tests performed versus candidates pruned."""
        return {
            "covers_calls": self.covers_calls,
            "signature_pruned": self.signature_pruned,
            "interval_pruned": self.interval_pruned,
        }

    # ------------------------------------------------------------------
    # the exact test (counted)
    # ------------------------------------------------------------------
    def _covers(self, coverer: _Summary, covered: _Summary) -> bool:
        if coverer.dnf is None or covered.dnf is None:
            return False
        self.covers_calls += 1
        return dnf_covers(coverer.dnf, covered.dnf)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, identifier: int, expression: BooleanExpression) -> AddOutcome:
        """Insert one member and restitch the poset around it.

        Never rescans the full set: candidate coverers come from the
        signature buckets, and only *maximal* ids are tested in either
        direction (covered ids already ride their coverer).
        """
        if identifier in self._summaries:
            raise ValueError(f"id {identifier} already present")
        summary = summarize(expression, max_clauses=self.max_clauses)
        self._summaries[identifier] = summary
        coverer = self._find_coverer(summary, exclude=identifier)
        if coverer is not None:
            self._covered_by[identifier] = coverer
            self._children.setdefault(coverer, set()).add(identifier)
            return AddOutcome(identifier, covered_by=coverer)
        # the new member is maximal: see whether it absorbs any current
        # maximal members (later-arriving wide subscriptions compact the
        # table retroactively)
        absorbed = tuple(
            sorted(self._find_covered(summary, exclude=identifier))
        )
        self._set_maximal(identifier, summary)
        for victim in absorbed:
            self._absorb(victim, into=identifier)
        return AddOutcome(identifier, newly_covered=absorbed)

    def _absorb(self, victim: int, *, into: int) -> None:
        """Demote a maximal ``victim`` under coverer ``into``, re-rooting
        its covered subtree (sound by transitivity of semantic covering:
        ``into`` ⊇ ``victim`` ⊇ each child)."""
        self._unset_maximal(victim, self._summaries[victim])
        self._covered_by[victim] = into
        children = self._children.pop(victim, set())
        subtree = self._children.setdefault(into, set())
        subtree.add(victim)
        for child in children:
            self._covered_by[child] = into
            subtree.add(child)

    def remove(self, identifier: int) -> RemoveOutcome:
        """Withdraw one member, re-absorbing its orphans where possible.

        Orphans of a removed maximal member first look for another live
        coverer (they stay covered, under new ownership); only those
        with none are promoted to maximal — and a promoted orphan can
        itself re-absorb later orphans of the same removal.
        """
        summary = self._summaries.pop(identifier, None)
        if summary is None:
            raise KeyError(f"id {identifier} not present")
        coverer = self._covered_by.pop(identifier, None)
        if coverer is not None:
            self._children[coverer].discard(identifier)
            return RemoveOutcome(identifier, was_covered=True, coverer=coverer)
        self._unset_maximal(identifier, summary)
        orphans = sorted(self._children.pop(identifier, ()))
        reabsorbed: dict[int, int] = {}
        newly_exposed: list[int] = []
        absorbed: list[int] = []
        for orphan in orphans:
            del self._covered_by[orphan]
            orphan_summary = self._summaries[orphan]
            new_coverer = self._find_coverer(orphan_summary, exclude=orphan)
            if new_coverer is not None:
                self._covered_by[orphan] = new_coverer
                self._children.setdefault(new_coverer, set()).add(orphan)
                reabsorbed[orphan] = new_coverer
                continue
            # promote — with the same absorb step add() performs, so a
            # wide orphan re-covers its earlier-promoted siblings (and
            # any maximal the layered test only now relates to it)
            victims = self._find_covered(orphan_summary, exclude=orphan)
            self._set_maximal(orphan, orphan_summary)
            for victim in victims:
                self._absorb(victim, into=orphan)
                if victim in newly_exposed:
                    newly_exposed.remove(victim)
                    reabsorbed[victim] = orphan
                else:
                    absorbed.append(victim)
            newly_exposed.append(orphan)
        return RemoveOutcome(
            identifier,
            was_covered=False,
            reabsorbed=reabsorbed,
            newly_exposed=tuple(newly_exposed),
            absorbed=tuple(absorbed),
        )

    # ------------------------------------------------------------------
    # poset bookkeeping
    # ------------------------------------------------------------------
    def _set_maximal(self, identifier: int, summary: _Summary) -> None:
        self._maximal.add(identifier)
        if summary.dnf is not None:
            bisect.insort(
                self._buckets.setdefault(summary.required, []), identifier
            )

    def _unset_maximal(self, identifier: int, summary: _Summary) -> None:
        self._maximal.discard(identifier)
        if summary.dnf is not None:
            bucket = self._buckets.get(summary.required)
            if bucket is not None:
                bucket.remove(identifier)
                if not bucket:
                    del self._buckets[summary.required]

    # ------------------------------------------------------------------
    # candidate search
    # ------------------------------------------------------------------
    def _find_coverer(self, covered: _Summary, *, exclude: int) -> int | None:
        """A live maximal id whose expression covers ``covered``."""
        if covered.dnf is None:
            return None
        for signature, bucket in self._buckets.items():
            # a coverer's required attributes are a subset of the
            # covered expression's (necessary for the layered test)
            if not signature <= covered.required:
                self.signature_pruned += len(bucket)
                continue
            for candidate in bucket:
                if candidate == exclude:
                    continue
                summary = self._summaries[candidate]
                if not _hull_fits(summary, covered):
                    self.interval_pruned += 1
                    continue
                if self._covers(summary, covered):
                    return candidate
        return None

    def _find_covered(self, coverer: _Summary, *, exclude: int) -> list[int]:
        """Live maximal ids that ``coverer`` covers."""
        if coverer.dnf is None:
            return []
        found: list[int] = []
        for signature, bucket in self._buckets.items():
            if not coverer.required <= signature:
                self.signature_pruned += len(bucket)
                continue
            for candidate in bucket:
                if candidate == exclude:
                    continue
                summary = self._summaries[candidate]
                if not _hull_fits(coverer, summary):
                    self.interval_pruned += 1
                    continue
                if self._covers(coverer, summary):
                    found.append(candidate)
        return found
