"""Incremental covering poset over a subscription population.

:class:`CoveringIndex` maintains, under ``add``/``remove`` churn, the
partition of a subscription set into **maximal** members (covered by no
other live member) and **covered** members (each mapped to one maximal
coverer).  Broker routing tables keep only the maximal set registered;
the mapping supports re-absorbing covered members when their coverer is
withdrawn (Mühl & Fiege routing-table compaction, which the paper cites
as [14]).

What makes it cheap:

* **cached canonical DNF** — each expression's DNF is derived once
  (:func:`~repro.subscriptions.normal_forms.canonical_dnf`) and kept in
  the per-id summary, so no :func:`~repro.subscriptions.covering.covers`
  call ever re-derives a normal form;
* **attribute-signature prefilter** — maximal ids are bucketed by their
  *required attribute set* (attributes appearing in every DNF clause).
  A coverer's required set is necessarily a subset of the covered
  expression's required set, so whole buckets are skipped with one
  frozenset comparison;
* **operator-interval prefilter** — per attribute, each expression
  carries an interval *hull* (coverer role) and per-clause intersection
  hulls (covered role); containment between them is a necessary
  condition of the layered covering test whenever the coverer
  constrains the attribute in every clause, so band-structured corpora
  (price bands, value ranges) resolve almost every candidate pair
  without an exact clause-level test.

Both prefilters are *necessary conditions* of the layered test in
:mod:`repro.subscriptions.covering` — they never prune a pair the exact
test would accept — so the index computes exactly the poset that
pairwise ``covers()`` calls would, in ``o(N²)`` exact tests on corpora
where the prefilters apply (the :attr:`CoveringIndex.covers_calls`
counter is asserted against in ``benchmarks/test_network_routing.py``).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from ..predicates.operators import Operator
from . import normal_forms as _normal_forms
from .ast import BooleanExpression
from .covering import _bounds, _interval_contains, dnf_covers
from .normal_forms import (
    DisjunctiveNormalForm,
    DnfExplosionError,
    canonical_dnf,
)

#: Interval quadruple: (low, high, low_inclusive, high_inclusive) with
#: ``None`` bounds meaning unbounded — the representation
#: :func:`repro.subscriptions.covering._bounds` produces.
Interval = tuple


def _hull(first: Interval, second: Interval) -> Interval:
    """Smallest interval containing both (the convex hull).

    Raises ``TypeError`` on cross-domain bounds (string versus number);
    callers treat that as "no usable interval summary".
    """
    a_low, a_high, a_incl, a_inch = first
    b_low, b_high, b_incl, b_inch = second
    if a_low is None or b_low is None:
        low, incl = None, False
    elif a_low < b_low or (a_low == b_low and a_incl):
        low, incl = a_low, a_incl or (a_low == b_low and b_incl)
    else:
        low, incl = b_low, b_incl
    if a_high is None or b_high is None:
        high, inch = None, False
    elif a_high > b_high or (a_high == b_high and a_inch):
        high, inch = a_high, a_inch or (a_high == b_high and b_inch)
    else:
        high, inch = b_high, b_inch
    return (low, high, incl, inch)


def _intersect(first: Interval, second: Interval) -> Interval | None:
    """Interval intersection; ``None`` when empty.

    Raises ``TypeError`` on cross-domain bounds.
    """
    a_low, a_high, a_incl, a_inch = first
    b_low, b_high, b_incl, b_inch = second
    if a_low is None:
        low, incl = b_low, b_incl
    elif b_low is None or a_low > b_low:
        low, incl = a_low, a_incl
    elif a_low < b_low:
        low, incl = b_low, b_incl
    else:
        low, incl = a_low, a_incl and b_incl
    if a_high is None:
        high, inch = b_high, b_inch
    elif b_high is None or a_high < b_high:
        high, inch = a_high, a_inch
    elif a_high > b_high:
        high, inch = b_high, b_inch
    else:
        high, inch = a_high, a_inch and b_inch
    if low is not None and high is not None:
        if low > high or (low == high and not (incl and inch)):
            return None
    return (low, high, incl, inch)


def _pseudo_bounds(predicate) -> Interval | None:
    """A value-set bounding interval for prefilter purposes.

    Extends :func:`~repro.subscriptions.covering._bounds` with operators
    whose value set still fits an interval envelope: ``IN`` (hull of the
    alternatives) and boolean ``EQ`` (booleans order as 0/1).  Used only
    on the *covered* side, where a tighter per-clause intersection makes
    the necessary condition weaker, never stronger.
    """
    bounds = _bounds(predicate)
    if bounds is not None:
        return bounds
    operator = predicate.operator
    value = predicate.value
    if operator is Operator.IN:
        values = list(value)
        try:
            low, high = min(values), max(values)
        except TypeError:
            return None
        return (low, high, True, True)
    if operator is Operator.EQ and isinstance(value, bool):
        return (value, value, True, True)
    return None


@dataclass(frozen=True)
class _Summary:
    """Everything the prefilters need about one expression, precomputed.

    ``dnf`` is ``None`` when the canonical derivation exploded past the
    clause cap — such ids are always maximal and never act as coverers
    (the exact test conservatively answers ``False`` for them).
    """

    dnf: DisjunctiveNormalForm | None
    #: attributes appearing in every DNF clause
    required: frozenset
    #: coverer role: attribute -> hull over all positive interval
    #: literals, present only when *every* clause has at least one
    hulls: Mapping[str, Interval]
    #: covered role: attribute -> hull of per-clause intersection
    #: intervals (``None`` value = unusable, prefilter must pass)
    clause_hulls: Mapping[str, Interval | None]


#: (expression, max_clauses) -> _Summary, LRU order.  One subscription
#: propagating across a B-broker overlay enters B-1 covering indexes;
#: the summary (like the DNF underneath it) is a pure function of the
#: expression, so it is computed once, not once per broker.
_summary_cache: "dict[tuple[BooleanExpression, int], _Summary]" = {}
_SUMMARY_CACHE_LIMIT = 16_384

# summaries retain DNF objects: clear them whenever the DNF memo clears
_normal_forms._dependent_cache_clearers.append(_summary_cache.clear)


def summarize(expression: BooleanExpression, *, max_clauses: int) -> _Summary:
    """Build (or recall) the prefilter summary of one expression."""
    key = (expression, max_clauses)
    cached = _summary_cache.get(key)
    if cached is not None:
        _summary_cache[key] = _summary_cache.pop(key)  # refresh LRU slot
        return cached
    summary = _summarize(expression, max_clauses=max_clauses)
    _summary_cache[key] = summary
    if len(_summary_cache) > _SUMMARY_CACHE_LIMIT:
        _summary_cache.pop(next(iter(_summary_cache)))
    return summary


def _summarize(expression: BooleanExpression, *, max_clauses: int) -> _Summary:
    try:
        dnf = canonical_dnf(expression, max_clauses=max_clauses)
    except DnfExplosionError:
        return _Summary(None, frozenset(), {}, {})
    attribute_sets = []
    for clause in dnf:
        attribute_sets.append(
            frozenset(literal.predicate.attribute for literal in clause)
        )
    required = frozenset.intersection(*attribute_sets)
    hulls: dict[str, Interval] = {}
    clause_hulls: dict[str, Interval | None] = {}
    for attribute in required:
        coverer_hull: Interval | None = None
        covered_hull: Interval | None = None
        tight = True          # every clause has a positive interval literal
        usable = True         # no cross-domain TypeError anywhere
        for clause in dnf:
            clause_interval: Interval | None = None
            clause_nonempty = True
            has_interval_literal = False
            for literal in clause:
                if literal.predicate.attribute != attribute:
                    continue
                if not literal.positive:
                    continue
                exact = _bounds(literal.predicate)
                if exact is not None:
                    has_interval_literal = True
                    if coverer_hull is None:
                        coverer_hull = exact
                    else:
                        try:
                            coverer_hull = _hull(coverer_hull, exact)
                        except TypeError:
                            usable = False
                            break
                pseudo = exact or _pseudo_bounds(literal.predicate)
                if pseudo is not None and clause_nonempty:
                    if clause_interval is None:
                        clause_interval = pseudo
                    else:
                        try:
                            clause_interval = _intersect(clause_interval, pseudo)
                        except TypeError:
                            usable = False
                            break
                        if clause_interval is None:
                            clause_nonempty = False
            if not usable:
                break
            if not has_interval_literal:
                tight = False
            if clause_nonempty and clause_interval is None:
                # no positive interval-able literal: the clause admits
                # any value, so the covered-role hull is unbounded
                clause_interval = (None, None, False, False)
            if clause_nonempty:
                if covered_hull is None:
                    covered_hull = clause_interval
                else:
                    try:
                        covered_hull = _hull(covered_hull, clause_interval)
                    except TypeError:
                        usable = False
                        break
        if not usable:
            clause_hulls[attribute] = None
            continue
        if tight and coverer_hull is not None:
            hulls[attribute] = coverer_hull
        # covered_hull None here means every clause was empty on this
        # attribute (unsatisfiable): contained in anything
        clause_hulls[attribute] = covered_hull or "empty"
    return _Summary(dnf, required, hulls, clause_hulls)


def _hull_fits(coverer: _Summary, covered: _Summary) -> bool:
    """Operator-interval prefilter: necessary containment per attribute."""
    for attribute, outer in coverer.hulls.items():
        inner = covered.clause_hulls.get(attribute)
        if inner is None:
            continue          # unusable summary on that attribute: pass
        if inner == "empty":
            continue          # vacuously contained
        try:
            if not _interval_contains(outer, inner):
                return False
        except TypeError:
            continue
    return True


@dataclass(frozen=True)
class AddOutcome:
    """What :meth:`CoveringIndex.add` changed.

    ``covered_by`` is set when the new id arrived already covered by a
    live maximal member.  ``newly_covered`` lists previously-maximal ids
    the new member absorbed (their covered subtrees re-root to the new
    id as well) — a routing table unregisters exactly these.
    """

    identifier: int
    covered_by: int | None = None
    newly_covered: tuple[int, ...] = ()


@dataclass(frozen=True)
class RemoveOutcome:
    """What :meth:`CoveringIndex.remove` changed.

    ``reabsorbed`` maps orphans that found another live coverer to that
    coverer (they stay suppressed); ``newly_exposed`` lists orphans
    promoted to maximal — a routing table reinstates exactly these.
    ``absorbed`` lists *pre-existing* maximal members a promoted orphan
    turned out to cover (the layered test can miss transitive relations
    at add time and see them on re-check) — a routing table unregisters
    exactly these.
    """

    identifier: int
    was_covered: bool
    coverer: int | None = None
    reabsorbed: Mapping[int, int] = field(default_factory=dict)
    newly_exposed: tuple[int, ...] = ()
    absorbed: tuple[int, ...] = ()


class CoveringIndex:
    """The covering partial order, maintained incrementally.

    Parameters
    ----------
    max_clauses:
        Clause cap forwarded to the canonical-DNF derivation; the same
        conservative-false semantics as
        :func:`~repro.subscriptions.covering.covers`.
    """

    def __init__(self, *, max_clauses: int = 4_096) -> None:
        self.max_clauses = max_clauses
        self._summaries: dict[int, _Summary] = {}
        self._covered_by: dict[int, int] = {}
        self._children: dict[int, set[int]] = {}
        self._maximal: set[int] = set()
        #: maximal ids with a usable DNF, bucketed by required-attribute
        #: signature — the unit the signature prefilter skips.  Each
        #: bucket is kept sorted (candidate scans are deterministic
        #: without re-sorting on every add/remove).
        self._buckets: dict[frozenset, list[int]] = {}
        #: exact clause-level covering tests performed (the o(N²) claim)
        self.covers_calls = 0
        #: candidate ids discarded by the signature prefilter
        self.signature_pruned = 0
        #: candidate ids discarded by the interval prefilter
        self.interval_pruned = 0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._summaries)

    def __contains__(self, identifier: int) -> bool:
        return identifier in self._summaries

    def maximal_ids(self) -> frozenset:
        """Ids covered by no other live member."""
        return frozenset(self._maximal)

    def covered_mapping(self) -> dict[int, int]:
        """Covered id -> its (maximal) coverer."""
        return dict(self._covered_by)

    def covered_count(self) -> int:
        """Number of covered ids (no mapping materialization)."""
        return len(self._covered_by)

    def coverer_of(self, identifier: int) -> int | None:
        """The id suppressing ``identifier``, or ``None`` if maximal."""
        return self._covered_by.get(identifier)

    def is_covered(self, identifier: int) -> bool:
        """Whether ``identifier`` is currently covered."""
        return identifier in self._covered_by

    def ids(self) -> Iterator[int]:
        """Every live id."""
        return iter(self._summaries)

    def prefilter_stats(self) -> dict[str, int]:
        """Work counters: exact tests performed versus candidates pruned."""
        return {
            "covers_calls": self.covers_calls,
            "signature_pruned": self.signature_pruned,
            "interval_pruned": self.interval_pruned,
        }

    # ------------------------------------------------------------------
    # the exact test (counted)
    # ------------------------------------------------------------------
    def _covers(self, coverer: _Summary, covered: _Summary) -> bool:
        if coverer.dnf is None or covered.dnf is None:
            return False
        self.covers_calls += 1
        return dnf_covers(coverer.dnf, covered.dnf)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, identifier: int, expression: BooleanExpression) -> AddOutcome:
        """Insert one member and restitch the poset around it.

        Never rescans the full set: candidate coverers come from the
        signature buckets, and only *maximal* ids are tested in either
        direction (covered ids already ride their coverer).
        """
        if identifier in self._summaries:
            raise ValueError(f"id {identifier} already present")
        summary = summarize(expression, max_clauses=self.max_clauses)
        self._summaries[identifier] = summary
        coverer = self._find_coverer(summary, exclude=identifier)
        if coverer is not None:
            self._covered_by[identifier] = coverer
            self._children.setdefault(coverer, set()).add(identifier)
            return AddOutcome(identifier, covered_by=coverer)
        # the new member is maximal: see whether it absorbs any current
        # maximal members (later-arriving wide subscriptions compact the
        # table retroactively)
        absorbed = tuple(
            sorted(self._find_covered(summary, exclude=identifier))
        )
        self._set_maximal(identifier, summary)
        for victim in absorbed:
            self._absorb(victim, into=identifier)
        return AddOutcome(identifier, newly_covered=absorbed)

    def _absorb(self, victim: int, *, into: int) -> None:
        """Demote a maximal ``victim`` under coverer ``into``, re-rooting
        its covered subtree (sound by transitivity of semantic covering:
        ``into`` ⊇ ``victim`` ⊇ each child)."""
        self._unset_maximal(victim, self._summaries[victim])
        self._covered_by[victim] = into
        children = self._children.pop(victim, set())
        subtree = self._children.setdefault(into, set())
        subtree.add(victim)
        for child in children:
            self._covered_by[child] = into
            subtree.add(child)

    def remove(self, identifier: int) -> RemoveOutcome:
        """Withdraw one member, re-absorbing its orphans where possible.

        Orphans of a removed maximal member first look for another live
        coverer (they stay covered, under new ownership); only those
        with none are promoted to maximal — and a promoted orphan can
        itself re-absorb later orphans of the same removal.
        """
        summary = self._summaries.pop(identifier, None)
        if summary is None:
            raise KeyError(f"id {identifier} not present")
        coverer = self._covered_by.pop(identifier, None)
        if coverer is not None:
            self._children[coverer].discard(identifier)
            return RemoveOutcome(identifier, was_covered=True, coverer=coverer)
        self._unset_maximal(identifier, summary)
        orphans = sorted(self._children.pop(identifier, ()))
        reabsorbed: dict[int, int] = {}
        newly_exposed: list[int] = []
        absorbed: list[int] = []
        for orphan in orphans:
            del self._covered_by[orphan]
            orphan_summary = self._summaries[orphan]
            new_coverer = self._find_coverer(orphan_summary, exclude=orphan)
            if new_coverer is not None:
                self._covered_by[orphan] = new_coverer
                self._children.setdefault(new_coverer, set()).add(orphan)
                reabsorbed[orphan] = new_coverer
                continue
            # promote — with the same absorb step add() performs, so a
            # wide orphan re-covers its earlier-promoted siblings (and
            # any maximal the layered test only now relates to it)
            victims = self._find_covered(orphan_summary, exclude=orphan)
            self._set_maximal(orphan, orphan_summary)
            for victim in victims:
                self._absorb(victim, into=orphan)
                if victim in newly_exposed:
                    newly_exposed.remove(victim)
                    reabsorbed[victim] = orphan
                else:
                    absorbed.append(victim)
            newly_exposed.append(orphan)
        return RemoveOutcome(
            identifier,
            was_covered=False,
            reabsorbed=reabsorbed,
            newly_exposed=tuple(newly_exposed),
            absorbed=tuple(absorbed),
        )

    # ------------------------------------------------------------------
    # poset bookkeeping
    # ------------------------------------------------------------------
    def _set_maximal(self, identifier: int, summary: _Summary) -> None:
        self._maximal.add(identifier)
        if summary.dnf is not None:
            bisect.insort(
                self._buckets.setdefault(summary.required, []), identifier
            )

    def _unset_maximal(self, identifier: int, summary: _Summary) -> None:
        self._maximal.discard(identifier)
        if summary.dnf is not None:
            bucket = self._buckets.get(summary.required)
            if bucket is not None:
                bucket.remove(identifier)
                if not bucket:
                    del self._buckets[summary.required]

    # ------------------------------------------------------------------
    # candidate search
    # ------------------------------------------------------------------
    def _find_coverer(self, covered: _Summary, *, exclude: int) -> int | None:
        """A live maximal id whose expression covers ``covered``."""
        if covered.dnf is None:
            return None
        for signature, bucket in self._buckets.items():
            # a coverer's required attributes are a subset of the
            # covered expression's (necessary for the layered test)
            if not signature <= covered.required:
                self.signature_pruned += len(bucket)
                continue
            for candidate in bucket:
                if candidate == exclude:
                    continue
                summary = self._summaries[candidate]
                if not _hull_fits(summary, covered):
                    self.interval_pruned += 1
                    continue
                if self._covers(summary, covered):
                    return candidate
        return None

    def _find_covered(self, coverer: _Summary, *, exclude: int) -> list[int]:
        """Live maximal ids that ``coverer`` covers."""
        if coverer.dnf is None:
            return []
        found: list[int] = []
        for signature, bucket in self._buckets.items():
            if not coverer.required <= signature:
                self.signature_pruned += len(bucket)
                continue
            for candidate in bucket:
                if candidate == exclude:
                    continue
                summary = self._summaries[candidate]
                if not _hull_fits(coverer, summary):
                    self.interval_pruned += 1
                    continue
                if self._covers(coverer, summary):
                    found.append(candidate)
        return found
