"""Boolean expression AST for subscriptions.

A subscription is an arbitrary Boolean expression over predicates using
AND, OR and NOT (paper §3.1).  This module defines the expression nodes,
evaluation (both against events and against sets of fulfilled predicate
ids), and the flattening step that turns binary operator chains into the
compacted n-ary form the subscription trees use.
"""

from __future__ import annotations

import abc
from typing import AbstractSet, Callable, Iterator, Sequence

from ..events.event import Event
from ..predicates.predicate import Predicate


class BooleanExpression(abc.ABC):
    """Base class of all subscription expression nodes.

    Expressions are immutable; transformation methods return new trees.
    """

    __slots__ = ()

    @abc.abstractmethod
    def evaluate(self, fulfilled: Callable[[Predicate], bool]) -> bool:
        """Evaluate with ``fulfilled`` deciding each predicate's truth."""

    @abc.abstractmethod
    def predicates(self) -> Iterator[Predicate]:
        """Yield every predicate occurrence (duplicates included)."""

    @abc.abstractmethod
    def children(self) -> Sequence["BooleanExpression"]:
        """Direct sub-expressions."""

    @abc.abstractmethod
    def flattened(self) -> "BooleanExpression":
        """Collapse nested same-operator nodes into n-ary nodes.

        ``(a AND (b AND c))`` becomes ``AND(a, b, c)``; this is the
        "binary operators are treated as n-ary ones due to compacting
        subscription trees" step of paper §3.1.
        """

    def matches(self, event: Event) -> bool:
        """Evaluate this expression directly against an event."""
        return self.evaluate(lambda p: p.matches(event))

    def evaluate_with_ids(
        self,
        fulfilled_ids: AbstractSet[int],
        identifier: Callable[[Predicate], int],
    ) -> bool:
        """Evaluate given the set of fulfilled predicate identifiers.

        This mirrors phase 2 of the paper's filtering process: predicate
        truth has already been established in phase 1 and is looked up,
        not recomputed.
        """
        return self.evaluate(lambda p: identifier(p) in fulfilled_ids)

    def unique_predicates(self) -> set[Predicate]:
        """The set of distinct predicates appearing in the expression."""
        return set(self.predicates())

    def size(self) -> int:
        """Total number of nodes (inner nodes + leaves)."""
        return 1 + sum(child.size() for child in self.children())

    def depth(self) -> int:
        """Height of the expression tree (a single leaf has depth 1)."""
        kids = self.children()
        if not kids:
            return 1
        return 1 + max(child.depth() for child in kids)

    def __and__(self, other: "BooleanExpression") -> "And":
        return And((self, other))

    def __or__(self, other: "BooleanExpression") -> "Or":
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)


class PredicateLeaf(BooleanExpression):
    """A leaf node wrapping a single predicate."""

    __slots__ = ("predicate",)

    def __init__(self, predicate: Predicate) -> None:
        if not isinstance(predicate, Predicate):
            raise TypeError(f"expected Predicate, got {predicate!r}")
        self.predicate = predicate

    def evaluate(self, fulfilled: Callable[[Predicate], bool]) -> bool:
        return fulfilled(self.predicate)

    def predicates(self) -> Iterator[Predicate]:
        yield self.predicate

    def children(self) -> Sequence[BooleanExpression]:
        return ()

    def flattened(self) -> BooleanExpression:
        return self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PredicateLeaf) and self.predicate == other.predicate

    def __hash__(self) -> int:
        return hash(("leaf", self.predicate))

    def __repr__(self) -> str:
        return f"PredicateLeaf({self.predicate})"

    def __str__(self) -> str:
        return str(self.predicate)


class Not(BooleanExpression):
    """Logical negation of a sub-expression."""

    __slots__ = ("child",)

    def __init__(self, child: BooleanExpression) -> None:
        _require_expression(child)
        self.child = child

    def evaluate(self, fulfilled: Callable[[Predicate], bool]) -> bool:
        return not self.child.evaluate(fulfilled)

    def predicates(self) -> Iterator[Predicate]:
        yield from self.child.predicates()

    def children(self) -> Sequence[BooleanExpression]:
        return (self.child,)

    def flattened(self) -> BooleanExpression:
        inner = self.child.flattened()
        if isinstance(inner, Not):  # double negation collapses structurally
            return inner.child
        return Not(inner)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and self.child == other.child

    def __hash__(self) -> int:
        return hash(("not", self.child))

    def __repr__(self) -> str:
        return f"Not({self.child!r})"

    def __str__(self) -> str:
        return f"not ({self.child})"


class _NaryOperator(BooleanExpression):
    """Shared implementation of the n-ary AND / OR nodes."""

    __slots__ = ("operands",)

    _NAME = ""
    _IDENTITY = True  # evaluation result of the empty operand list

    def __init__(self, operands: Sequence[BooleanExpression]) -> None:
        operands = tuple(operands)
        if len(operands) < 2:
            raise ValueError(
                f"{self._NAME} requires at least two operands, got {len(operands)}"
            )
        for operand in operands:
            _require_expression(operand)
        self.operands = operands

    def predicates(self) -> Iterator[Predicate]:
        for operand in self.operands:
            yield from operand.predicates()

    def children(self) -> Sequence[BooleanExpression]:
        return self.operands

    def flattened(self) -> BooleanExpression:
        merged: list[BooleanExpression] = []
        for operand in self.operands:
            flat = operand.flattened()
            if type(flat) is type(self):
                merged.extend(flat.operands)  # type: ignore[attr-defined]
            else:
                merged.append(flat)
        return type(self)(tuple(merged))

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and self.operands == other.operands

    def __hash__(self) -> int:
        return hash((self._NAME, self.operands))

    def __repr__(self) -> str:
        inner = ", ".join(repr(o) for o in self.operands)
        return f"{type(self).__name__}({inner})"

    def __str__(self) -> str:
        joiner = f" {self._NAME.lower()} "
        return "(" + joiner.join(str(o) for o in self.operands) + ")"


class And(_NaryOperator):
    """N-ary conjunction."""

    __slots__ = ()
    _NAME = "AND"

    def evaluate(self, fulfilled: Callable[[Predicate], bool]) -> bool:
        return all(operand.evaluate(fulfilled) for operand in self.operands)


class Or(_NaryOperator):
    """N-ary disjunction."""

    __slots__ = ()
    _NAME = "OR"

    def evaluate(self, fulfilled: Callable[[Predicate], bool]) -> bool:
        return any(operand.evaluate(fulfilled) for operand in self.operands)


def _require_expression(node: object) -> None:
    if not isinstance(node, BooleanExpression):
        raise TypeError(
            f"expected a BooleanExpression, got {type(node).__name__}: {node!r}"
        )


def leaf(predicate: Predicate) -> PredicateLeaf:
    """Convenience constructor for a predicate leaf."""
    return PredicateLeaf(predicate)


def conjunction(leaves: Sequence[BooleanExpression]) -> BooleanExpression:
    """Build an AND over ``leaves``; a single operand passes through."""
    if not leaves:
        raise ValueError("conjunction requires at least one operand")
    if len(leaves) == 1:
        return leaves[0]
    return And(tuple(leaves))


def disjunction(leaves: Sequence[BooleanExpression]) -> BooleanExpression:
    """Build an OR over ``leaves``; a single operand passes through."""
    if not leaves:
        raise ValueError("disjunction requires at least one operand")
    if len(leaves) == 1:
        return leaves[0]
    return Or(tuple(leaves))
