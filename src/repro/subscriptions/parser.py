"""Text parser for the subscription language.

Grammar (lowest to highest precedence; ``or`` binds weakest)::

    expression  := and_expr ( OR  and_expr )*
    and_expr    := unary    ( AND unary    )*
    unary       := NOT unary | '(' expression ')' | predicate
    predicate   := ident cmp_op value
                 | ident 'between' '[' value ',' value ']'
                 | ident 'in' '{' value ( ',' value )* '}'
                 | ident ('prefix'|'suffix'|'contains') string
                 | 'exists' '(' ident ')'
    cmp_op      := '=' | '==' | '!=' | '<>' | '<' | '<=' | '>' | '>='
    value       := number | string | 'true' | 'false'

Operator aliases: ``and``/``&``/``&&``, ``or``/``|``/``||``,
``not``/``!``.  Keywords are case-insensitive; attribute names are
case-sensitive identifiers (letters, digits, ``_``, ``.``, ``-`` after the
first character).

Example
-------
>>> parse("(a > 10 or a <= 5 or b = 1) and (c <= 20 or c = 30 or d = 5)")
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from ..predicates.operators import Operator
from ..predicates.predicate import Predicate
from .ast import And, BooleanExpression, Not, Or, PredicateLeaf


class SubscriptionSyntaxError(ValueError):
    """Raised on malformed subscription text, with position information."""

    def __init__(self, message: str, position: int, text: str) -> None:
        pointer = text[:position].count("\n")
        super().__init__(
            f"{message} (at offset {position}): "
            f"...{text[position:position + 20]!r}"
        )
        self.position = position
        self.line = pointer + 1


@dataclass(frozen=True)
class _Token:
    kind: str      # 'ident', 'number', 'string', 'symbol', 'keyword', 'eof'
    value: Any
    position: int


_KEYWORDS = {
    "and",
    "or",
    "not",
    "between",
    "in",
    "exists",
    "prefix",
    "suffix",
    "contains",
    "true",
    "false",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.\-]*)
  | (?P<symbol><=|>=|==|!=|<>|&&|\|\||[=<>()\[\]{},&|!])
    """,
    re.VERBOSE,
)

_SYMBOL_KEYWORDS = {"&": "and", "&&": "and", "|": "or", "||": "or", "!": "not"}


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise SubscriptionSyntaxError("unexpected character", position, text)
        position = match.end()
        if match.lastgroup == "ws":
            continue
        raw = match.group()
        if match.lastgroup == "number":
            value = float(raw) if "." in raw else int(raw)
            tokens.append(_Token("number", value, match.start()))
        elif match.lastgroup == "string":
            body = raw[1:-1]
            unescaped = re.sub(r"\\(.)", r"\1", body)
            tokens.append(_Token("string", unescaped, match.start()))
        elif match.lastgroup == "ident":
            lowered = raw.lower()
            if lowered in _KEYWORDS:
                tokens.append(_Token("keyword", lowered, match.start()))
            else:
                tokens.append(_Token("ident", raw, match.start()))
        else:
            symbol = _SYMBOL_KEYWORDS.get(raw)
            if symbol is not None:
                tokens.append(_Token("keyword", symbol, match.start()))
            else:
                tokens.append(_Token("symbol", raw, match.start()))
    tokens.append(_Token("eof", None, len(text)))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = _tokenize(text)
        self._index = 0

    # -- token helpers -----------------------------------------------------
    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str, value: Any = None) -> _Token:
        token = self._peek()
        if token.kind != kind or (value is not None and token.value != value):
            wanted = value if value is not None else kind
            raise SubscriptionSyntaxError(
                f"expected {wanted!r}, found {token.value!r}",
                token.position,
                self._text,
            )
        return self._advance()

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token.kind == "keyword" and token.value == word

    # -- grammar -----------------------------------------------------------
    def parse(self) -> BooleanExpression:
        expression = self._or_expr()
        trailing = self._peek()
        if trailing.kind != "eof":
            raise SubscriptionSyntaxError(
                f"unexpected trailing input {trailing.value!r}",
                trailing.position,
                self._text,
            )
        return expression

    def _or_expr(self) -> BooleanExpression:
        operands = [self._and_expr()]
        while self._at_keyword("or"):
            self._advance()
            operands.append(self._and_expr())
        return operands[0] if len(operands) == 1 else Or(tuple(operands))

    def _and_expr(self) -> BooleanExpression:
        operands = [self._unary()]
        while self._at_keyword("and"):
            self._advance()
            operands.append(self._unary())
        return operands[0] if len(operands) == 1 else And(tuple(operands))

    def _unary(self) -> BooleanExpression:
        if self._at_keyword("not"):
            self._advance()
            return Not(self._unary())
        token = self._peek()
        if token.kind == "symbol" and token.value == "(":
            self._advance()
            inner = self._or_expr()
            self._expect("symbol", ")")
            return inner
        if self._at_keyword("exists"):
            return self._exists_predicate()
        return self._predicate()

    def _exists_predicate(self) -> PredicateLeaf:
        self._expect("keyword", "exists")
        self._expect("symbol", "(")
        attribute = self._expect("ident").value
        self._expect("symbol", ")")
        return PredicateLeaf(Predicate(attribute, Operator.EXISTS))

    def _predicate(self) -> PredicateLeaf:
        attribute_token = self._peek()
        if attribute_token.kind != "ident":
            raise SubscriptionSyntaxError(
                f"expected an attribute name, found {attribute_token.value!r}",
                attribute_token.position,
                self._text,
            )
        attribute = self._advance().value
        token = self._peek()
        if token.kind == "keyword" and token.value == "between":
            self._advance()
            self._expect("symbol", "[")
            low = self._value()
            self._expect("symbol", ",")
            high = self._value()
            self._expect("symbol", "]")
            return PredicateLeaf(Predicate(attribute, Operator.BETWEEN, (low, high)))
        if token.kind == "keyword" and token.value == "in":
            self._advance()
            self._expect("symbol", "{")
            alternatives = [self._value()]
            while self._peek().kind == "symbol" and self._peek().value == ",":
                self._advance()
                alternatives.append(self._value())
            self._expect("symbol", "}")
            return PredicateLeaf(Predicate(attribute, Operator.IN, alternatives))
        if token.kind == "keyword" and token.value in ("prefix", "suffix", "contains"):
            self._advance()
            operand = self._expect("string").value
            operator = Operator(token.value)
            return PredicateLeaf(Predicate(attribute, operator, operand))
        if token.kind == "symbol" and token.value in (
            "=", "==", "!=", "<>", "<", "<=", ">", ">="
        ):
            self._advance()
            operator = Operator.from_symbol(token.value)
            return PredicateLeaf(Predicate(attribute, operator, self._value()))
        raise SubscriptionSyntaxError(
            f"expected a comparison operator after {attribute!r}",
            token.position,
            self._text,
        )

    def _value(self) -> Any:
        token = self._peek()
        if token.kind in ("number", "string"):
            return self._advance().value
        if token.kind == "keyword" and token.value in ("true", "false"):
            self._advance()
            return token.value == "true"
        raise SubscriptionSyntaxError(
            f"expected a value, found {token.value!r}", token.position, self._text
        )


def parse(text: str) -> BooleanExpression:
    """Parse subscription text into a :class:`BooleanExpression`.

    Raises
    ------
    SubscriptionSyntaxError
        On malformed input, with the offending offset.
    """
    if not isinstance(text, str) or not text.strip():
        raise SubscriptionSyntaxError("empty subscription", 0, text or "")
    return _Parser(text).parse()
