"""Structural simplification of subscription expressions.

The paper observes that pub/sub systems — unlike database query
optimizers — "do not optimise subscriptions" (§2.2).  This module
provides the cheap, semantics-preserving rewrites a broker can afford to
run at registration time:

* double-negation elimination: ``NOT NOT e`` → ``e``
* operator flattening: ``a AND (b AND c)`` → ``AND(a, b, c)``
* sibling deduplication (idempotence): ``a AND a`` → ``a``
* absorption: ``a AND (a OR b)`` → ``a``; ``a OR (a AND b)`` → ``a``
* single-operand collapse after the above

All rewrites preserve the evaluation result for every truth assignment
(checked by property-based tests).  Contradiction/tautology folding is
deliberately *not* performed: the AST has no constant nodes, mirroring
the engines, which simply evaluate such subscriptions at match time.
"""

from __future__ import annotations

from .ast import And, BooleanExpression, Not, Or, PredicateLeaf


def simplify(expression: BooleanExpression) -> BooleanExpression:
    """Apply all rewrite rules until a fixed point is reached."""
    current = expression
    for _ in range(expression.size() + 1):  # each pass strictly shrinks
        rewritten = _simplify_once(current)
        if rewritten == current:
            return rewritten
        current = rewritten
    return current


def _simplify_once(node: BooleanExpression) -> BooleanExpression:
    if isinstance(node, PredicateLeaf):
        return node
    if isinstance(node, Not):
        inner = _simplify_once(node.child)
        if isinstance(inner, Not):
            return inner.child
        return Not(inner)
    if isinstance(node, (And, Or)):
        return _simplify_nary(node)
    raise TypeError(f"unexpected expression node {node!r}")


def _simplify_nary(node: And | Or) -> BooleanExpression:
    flat = node.flattened()
    if isinstance(flat, PredicateLeaf) or isinstance(flat, Not):
        return _simplify_once(flat)
    assert isinstance(flat, (And, Or))
    simplified_children = [_simplify_once(child) for child in flat.operands]

    # Idempotence: keep the first occurrence of each distinct operand.
    deduped: list[BooleanExpression] = []
    seen: set[BooleanExpression] = set()
    for child in simplified_children:
        if child not in seen:
            seen.add(child)
            deduped.append(child)

    absorbed = _absorb(deduped, type(flat))
    if len(absorbed) == 1:
        return absorbed[0]
    result = type(flat)(tuple(absorbed))
    return result.flattened()


def _absorb(
    operands: list[BooleanExpression], operator: type
) -> list[BooleanExpression]:
    """Apply the absorption law among sibling operands.

    Under AND, an operand that is an OR containing another sibling as one
    of its alternatives is redundant (and vice versa under OR).
    """
    dual = Or if operator is And else And
    kept: list[BooleanExpression] = []
    operand_set = set(operands)
    for candidate in operands:
        if isinstance(candidate, dual):
            inner = set(candidate.operands)
            # a AND (a OR b): some *other* sibling appears inside the dual.
            if any(sibling in inner for sibling in operand_set if sibling != candidate):
                continue
        kept.append(candidate)
    return kept if kept else operands


def is_conjunctive(expression: BooleanExpression) -> bool:
    """Whether the expression is a plain conjunction of positive predicates.

    These are the only subscriptions classical engines accept natively
    (paper §1) — anything else requires the canonical transformation.
    """
    flat = expression.flattened()
    if isinstance(flat, PredicateLeaf):
        return True
    if isinstance(flat, And):
        return all(isinstance(child, PredicateLeaf) for child in flat.operands)
    return False


def is_dnf_shaped(expression: BooleanExpression) -> bool:
    """Whether the expression is already an OR of conjunctions of predicates."""
    flat = expression.flattened()
    if is_conjunctive(flat):
        return True
    if isinstance(flat, Or):
        return all(is_conjunctive(child) for child in flat.operands)
    return False
