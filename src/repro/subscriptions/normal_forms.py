"""Canonical (normal-form) transformations of Boolean subscriptions.

This module implements the *canonical pipeline* the paper argues against:
rewriting arbitrary Boolean subscriptions into disjunctive normal form
(DNF) so that each disjunct can be registered as a separate conjunctive
subscription with a counting-style engine.  It also provides CNF (for
completeness) and non-materializing blow-up accounting used by the
theoretical claims benchmarks.

The blow-up is worst-case exponential: the paper's workload — an AND of
``k`` binary ORs over ``|p| = 2k`` predicates — expands into ``2**k``
clauses of ``k`` predicates each (``2**(|p|/2)`` clauses of ``|p|/2``
predicates, exactly the figures in paper §4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from ..predicates.predicate import Predicate
from .ast import And, BooleanExpression, Not, Or, PredicateLeaf


class DnfExplosionError(RuntimeError):
    """Raised when materializing a normal form would exceed the clause cap."""


@dataclass(frozen=True)
class Literal:
    """A possibly negated predicate occurrence inside a normal form.

    Negative literals only survive for predicates whose operators have no
    single-predicate complement (``BETWEEN``, ``IN``, string operators);
    comparisons are negated by flipping the operator during the NNF step.
    """

    predicate: Predicate
    positive: bool = True

    def evaluate(self, fulfilled: Callable[[Predicate], bool]) -> bool:
        """Truth of the literal given each predicate's truth."""
        value = fulfilled(self.predicate)
        return value if self.positive else not value

    def complement(self) -> "Literal":
        """The literal with opposite polarity."""
        return Literal(self.predicate, not self.positive)

    def __str__(self) -> str:
        return str(self.predicate) if self.positive else f"not ({self.predicate})"


class Clause:
    """A set of literals combined conjunctively (DNF) or disjunctively (CNF)."""

    __slots__ = ("literals",)

    def __init__(self, literals: Iterable[Literal]) -> None:
        self.literals = frozenset(literals)
        if not self.literals:
            raise ValueError("a clause must contain at least one literal")

    @property
    def is_contradictory(self) -> bool:
        """Whether the clause contains a literal and its complement."""
        return any(lit.complement() in self.literals for lit in self.literals)

    def predicates(self) -> set[Predicate]:
        """Distinct predicates referenced by this clause."""
        return {lit.predicate for lit in self.literals}

    def positive_predicates(self) -> set[Predicate]:
        """Predicates occurring positively."""
        return {lit.predicate for lit in self.literals if lit.positive}

    def has_negative_literals(self) -> bool:
        """Whether any literal is negated (unsupported by counting engines)."""
        return any(not lit.positive for lit in self.literals)

    def evaluate_conjunctive(self, fulfilled: Callable[[Predicate], bool]) -> bool:
        """Evaluate the clause as a conjunction (DNF semantics)."""
        return all(lit.evaluate(fulfilled) for lit in self.literals)

    def evaluate_disjunctive(self, fulfilled: Callable[[Predicate], bool]) -> bool:
        """Evaluate the clause as a disjunction (CNF semantics)."""
        return any(lit.evaluate(fulfilled) for lit in self.literals)

    def __len__(self) -> int:
        return len(self.literals)

    def __iter__(self) -> Iterator[Literal]:
        return iter(self.literals)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Clause) and self.literals == other.literals

    def __hash__(self) -> int:
        return hash(self.literals)

    def __repr__(self) -> str:
        return f"Clause({{{', '.join(sorted(str(l) for l in self.literals))}}})"


class DisjunctiveNormalForm:
    """A materialized DNF: an OR of conjunctive :class:`Clause` objects.

    This is the shape canonical engines consume — "these algorithms treat
    disjunctions as several subscriptions" (paper §2).
    """

    def __init__(self, clauses: Sequence[Clause]) -> None:
        if not clauses:
            raise ValueError("a DNF must contain at least one clause")
        self.clauses = tuple(clauses)

    def evaluate(self, fulfilled: Callable[[Predicate], bool]) -> bool:
        """True when any conjunctive clause is fully satisfied."""
        return any(c.evaluate_conjunctive(fulfilled) for c in self.clauses)

    def predicates(self) -> set[Predicate]:
        """Distinct predicates across all clauses."""
        result: set[Predicate] = set()
        for clause in self.clauses:
            result |= clause.predicates()
        return result

    def total_literal_count(self) -> int:
        """Sum of clause sizes — the post-transformation problem size."""
        return sum(len(c) for c in self.clauses)

    def absorbed(self) -> "DisjunctiveNormalForm":
        """Minimize by absorption: drop clauses that are supersets of others.

        ``(a) OR (a AND b)`` collapses to ``(a)``.  The paper notes current
        matching approaches "do not optimise subscriptions"; this optional
        step exists to quantify how little absorption helps on the paper's
        workload (all clauses are incomparable there).
        """
        kept: list[Clause] = []
        clauses = sorted(set(self.clauses), key=len)
        for clause in clauses:
            if any(k.literals <= clause.literals for k in kept):
                continue
            kept.append(clause)
        return DisjunctiveNormalForm(kept)

    def without_contradictions(self) -> "DisjunctiveNormalForm":
        """Drop clauses containing a literal and its complement."""
        kept = [c for c in self.clauses if not c.is_contradictory]
        if not kept:
            # The whole expression is unsatisfiable; keep one contradictory
            # clause so the DNF still evaluates (to False) instead of
            # becoming an invalid empty disjunction.
            kept = [self.clauses[0]]
        return DisjunctiveNormalForm(kept)

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def __repr__(self) -> str:
        return f"DisjunctiveNormalForm({len(self.clauses)} clauses)"


def to_nnf(
    expression: BooleanExpression, *, complement_operators: bool = False
) -> BooleanExpression:
    """Rewrite into negation normal form.

    NOT nodes are pushed to the leaves with De Morgan's laws.  What
    happens *at* a negated leaf is semantically loaded:

    * ``complement_operators=False`` (default, sound): the leaf keeps an
      explicit ``Not`` wrapper — a *negative literal*.  This preserves
      the system's truth semantics exactly: a predicate over an absent
      event attribute is unfulfilled, so its negation is true.
    * ``complement_operators=True``: comparison leaves are rewritten by
      flipping the operator (``NOT a > 5`` → ``a <= 5``), the classical
      database-style rewrite.  **Only equivalent when the attribute is
      guaranteed present** (schema-required attributes): for an event
      without ``a``, ``NOT a > 5`` is true but ``a <= 5`` is false.
      Operators without a complement keep the ``Not`` wrapper either way.
    """
    return _nnf(expression, negate=False, complement=complement_operators)


def _nnf(
    node: BooleanExpression, negate: bool, complement: bool = False
) -> BooleanExpression:
    if isinstance(node, PredicateLeaf):
        if not negate:
            return node
        if complement:
            try:
                return PredicateLeaf(node.predicate.negated())
            except ValueError:
                return Not(node)
        return Not(node)
    if isinstance(node, Not):
        return _nnf(node.child, not negate, complement)
    if isinstance(node, And):
        mapped = tuple(_nnf(child, negate, complement) for child in node.operands)
        return Or(mapped) if negate else And(mapped)
    if isinstance(node, Or):
        mapped = tuple(_nnf(child, negate, complement) for child in node.operands)
        return And(mapped) if negate else Or(mapped)
    raise TypeError(f"unexpected expression node {node!r}")


def _leaf_literal(node: BooleanExpression) -> Literal | None:
    """Extract the literal from an NNF leaf (plain or negated), else None."""
    if isinstance(node, PredicateLeaf):
        return Literal(node.predicate, positive=True)
    if isinstance(node, Not) and isinstance(node.child, PredicateLeaf):
        return Literal(node.child.predicate, positive=False)
    return None


def to_dnf(
    expression: BooleanExpression,
    *,
    max_clauses: int = 1_000_000,
    drop_contradictions: bool = True,
    complement_operators: bool = False,
) -> DisjunctiveNormalForm:
    """Transform an arbitrary Boolean expression into DNF.

    Parameters
    ----------
    expression:
        The subscription expression.
    max_clauses:
        Safety cap; materialization raising past it aborts with
        :class:`DnfExplosionError` (the blow-up is worst-case exponential).
    drop_contradictions:
        Remove clauses containing ``p AND NOT p``.
    complement_operators:
        Forwarded to :func:`to_nnf` — rewrite negated comparisons by
        operator flipping instead of keeping negative literals (only
        sound for schema-required attributes).

    Returns
    -------
    DisjunctiveNormalForm
    """
    nnf = to_nnf(expression, complement_operators=complement_operators)
    clauses = _dnf_clauses(nnf, max_clauses)
    dnf = DisjunctiveNormalForm([Clause(c) for c in clauses])
    if drop_contradictions:
        dnf = dnf.without_contradictions()
    return dnf


def _dnf_clauses(
    node: BooleanExpression, max_clauses: int
) -> list[frozenset[Literal]]:
    literal = _leaf_literal(node)
    if literal is not None:
        return [frozenset((literal,))]
    if isinstance(node, Or):
        collected: list[frozenset[Literal]] = []
        for child in node.operands:
            collected.extend(_dnf_clauses(child, max_clauses))
            if len(collected) > max_clauses:
                raise DnfExplosionError(
                    f"DNF exceeds {max_clauses} clauses during OR collection"
                )
        return collected
    if isinstance(node, And):
        product: list[frozenset[Literal]] = [frozenset()]
        for child in node.operands:
            child_clauses = _dnf_clauses(child, max_clauses)
            product = [
                existing | addition
                for existing in product
                for addition in child_clauses
            ]
            if len(product) > max_clauses:
                raise DnfExplosionError(
                    f"DNF exceeds {max_clauses} clauses during AND distribution"
                )
        return product
    raise TypeError(f"expression is not in NNF: {node!r}")


def to_cnf(
    expression: BooleanExpression,
    *,
    max_clauses: int = 1_000_000,
    complement_operators: bool = False,
) -> list[Clause]:
    """Transform into conjunctive normal form (an AND of disjunctive clauses).

    Provided for completeness of the canonical pipeline; the paper's
    baselines consume DNF.
    """
    nnf = to_nnf(expression, complement_operators=complement_operators)
    negated_clauses = _dnf_clauses(
        _nnf(nnf, negate=True, complement=complement_operators), max_clauses
    )
    return [
        Clause(lit.complement() for lit in clause) for clause in negated_clauses
    ]


# ----------------------------------------------------------------------
# canonical-DNF cache
# ----------------------------------------------------------------------
#: Entries the memo keeps before evicting least-recently-used ones.
#: Sized for realistic subscription populations (every distinct
#: expression in a broker's routing table) while bounding worst-case
#: retention of abandoned expressions.
_DNF_CACHE_LIMIT = 16_384

#: (expression, complement_operators) -> DisjunctiveNormalForm, LRU order.
_dnf_cache: "dict[tuple[BooleanExpression, bool], DisjunctiveNormalForm]" = {}

#: (expression, complement_operators) -> largest clause cap at which the
#: derivation exploded; retrying below that cap is pointless.
_dnf_explosions: "dict[tuple[BooleanExpression, bool], int]" = {}

#: Running totals behind :func:`dnf_cache_stats` — the regression test
#: for "one derivation per expression" reads these.
_dnf_cache_counters = {"derivations": 0, "hits": 0}


def canonical_dnf(
    expression: BooleanExpression,
    *,
    max_clauses: int = 1_000_000,
    complement_operators: bool = False,
) -> DisjunctiveNormalForm:
    """Memoized :func:`to_dnf` — one derivation per distinct expression.

    Engines, the covering test, and the covering index all consume the
    canonical DNF of a subscription expression; before this cache each
    consumer re-derived it (the covering test re-derived *both* sides on
    every pairwise call).  The memo is keyed on the expression value (the
    AST hashes structurally) plus the ``complement_operators`` mode;
    ``drop_contradictions`` is always the default ``True`` here, which is
    what every production consumer uses.

    Semantics match :func:`to_dnf` with one deliberate softening: the
    clause cap is checked against the *materialized* clause count, so a
    cached DNF may be reused under a cap that the in-flight intermediate
    product of a fresh derivation would have tripped.  A cache answer is
    never larger than ``max_clauses``; expressions past the cap raise
    :class:`DnfExplosionError` exactly like the uncached path.
    """
    key = (expression, complement_operators)
    cached = _dnf_cache.get(key)
    if cached is not None:
        if len(cached) > max_clauses:
            raise DnfExplosionError(
                f"cached DNF has {len(cached)} clauses, over the "
                f"{max_clauses}-clause cap"
            )
        # refresh LRU position
        _dnf_cache[key] = _dnf_cache.pop(key)
        _dnf_cache_counters["hits"] += 1
        return cached
    exploded_at = _dnf_explosions.get(key)
    if exploded_at is not None and exploded_at >= max_clauses:
        raise DnfExplosionError(
            f"DNF exceeds {max_clauses} clauses (exploded at a cap of "
            f"{exploded_at})"
        )
    _dnf_cache_counters["derivations"] += 1
    try:
        dnf = to_dnf(
            expression,
            max_clauses=max_clauses,
            complement_operators=complement_operators,
        )
    except DnfExplosionError:
        _dnf_explosions.pop(key, None)  # re-insert in LRU position
        _dnf_explosions[key] = max(max_clauses, exploded_at or 0)
        if len(_dnf_explosions) > _DNF_CACHE_LIMIT:
            _dnf_explosions.pop(next(iter(_dnf_explosions)))
        raise
    _dnf_cache[key] = dnf
    if len(_dnf_cache) > _DNF_CACHE_LIMIT:
        _dnf_cache.pop(next(iter(_dnf_cache)))
    return dnf


def dnf_cache_stats() -> dict[str, int]:
    """Cache effectiveness counters: derivations, hits, and live size."""
    return {**_dnf_cache_counters, "size": len(_dnf_cache)}


#: Callables invoked by :func:`clear_dnf_cache` — downstream caches that
#: retain DNF objects (e.g. the covering-index summary memo) register
#: themselves here so one clear call resets the whole derivation chain.
_dependent_cache_clearers: list = []


def clear_dnf_cache() -> None:
    """Drop every memoized DNF and zero the counters (test isolation)."""
    _dnf_cache.clear()
    _dnf_explosions.clear()
    _dnf_cache_counters["derivations"] = 0
    _dnf_cache_counters["hits"] = 0
    for clear in _dependent_cache_clearers:
        clear()


def dnf_clause_count(expression: BooleanExpression) -> int:
    """Number of DNF clauses *without* materializing the transformation.

    Computed on the NNF: a leaf contributes 1 clause, OR sums and AND
    multiplies.  This slightly over-counts when contradictions or
    duplicate clauses would collapse, which matches the cost a canonical
    engine actually pays (they do not minimize — paper §2.2).
    """
    return _count(to_nnf(expression))


def _count(node: BooleanExpression) -> int:
    if _leaf_literal(node) is not None:
        return 1
    if isinstance(node, Or):
        return sum(_count(child) for child in node.operands)
    if isinstance(node, And):
        return math.prod(_count(child) for child in node.operands)
    raise TypeError(f"expression is not in NNF: {node!r}")


def dnf_literal_count(expression: BooleanExpression) -> int:
    """Total literal occurrences across all DNF clauses, without materializing.

    For a node with clause count ``c`` and literal total ``l``:
    a leaf is ``(1, 1)``; OR sums both; AND of children ``(c_i, l_i)``
    has ``c = prod(c_i)`` and ``l = sum_i (l_i * prod_{j != i} c_j)``.
    """
    __, literals = _count_pair(to_nnf(expression))
    return literals


def _count_pair(node: BooleanExpression) -> tuple[int, int]:
    if _leaf_literal(node) is not None:
        return (1, 1)
    if isinstance(node, Or):
        counts = [_count_pair(child) for child in node.operands]
        return (sum(c for c, _ in counts), sum(l for _, l in counts))
    if isinstance(node, And):
        counts = [_count_pair(child) for child in node.operands]
        total_clauses = math.prod(c for c, _ in counts)
        literals = 0
        for index, (c, l) in enumerate(counts):
            others = math.prod(
                counts[j][0] for j in range(len(counts)) if j != index
            )
            literals += l * others
        return (total_clauses, literals)
    raise TypeError(f"expression is not in NNF: {node!r}")


def transformation_blowup(expression: BooleanExpression) -> float:
    """Ratio of post-DNF literal occurrences to original predicate occurrences.

    The paper's core scalability argument: this ratio is ``2**(|p|/2 - 1)``
    on the evaluation workload and unbounded in general.
    """
    original = sum(1 for _ in expression.predicates())
    return dnf_literal_count(expression) / original
