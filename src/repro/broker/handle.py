"""Subscription handles: the object a ``subscribe()`` call hands back.

A :class:`SubscriptionHandle` owns one live subscription's lifecycle —
identity, delivery sink, pause/resume, withdrawal — replacing the raw
``int`` bookkeeping that used to be duplicated across ``Broker``,
``Subscriber``, and ``BrokerNetwork``.  Handles proxy the registered
:class:`~repro.subscriptions.subscription.Subscription`'s read-only
attributes (``subscription_id``, ``expression``, ``subscriber``), so
code written against the old return type keeps working.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from ..subscriptions.subscription import Subscription

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..subscriptions.ast import Node
    from .sinks import DeliverySink


class _HandleOwner(Protocol):
    """Anything that can withdraw a subscription by id (broker/network)."""

    def unsubscribe(self, subscription) -> None: ...


class SubscriptionHandle:
    """One live subscription at a broker (or across an overlay network).

    Handles are created by ``subscribe()`` — never directly.  A handle
    created through :meth:`BrokerNetwork.subscribe` withdraws
    network-wide; one created through :meth:`Broker.subscribe` withdraws
    at that broker.
    """

    __slots__ = ("subscription", "sink", "_owner", "_active", "_paused")

    def __init__(
        self,
        subscription: Subscription,
        *,
        sink: DeliverySink | None,
        owner: _HandleOwner,
    ) -> None:
        self.subscription = subscription
        #: where matched notifications go; ``None`` means match-only
        self.sink = sink
        self._owner = owner
        self._active = True
        self._paused = False

    # ------------------------------------------------------------------
    # identity (and legacy Subscription proxies)
    # ------------------------------------------------------------------
    @property
    def id(self) -> int:
        """The subscription's system-wide id."""
        return self.subscription.subscription_id

    @property
    def subscription_id(self) -> int:
        """Alias of :attr:`id` (legacy ``Subscription`` return type)."""
        return self.subscription.subscription_id

    @property
    def expression(self) -> Node:
        """The subscription's Boolean expression."""
        return self.subscription.expression

    @property
    def subscriber(self) -> str | None:
        """The subscribing client's name, if any."""
        return self.subscription.subscriber

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether the subscription is still registered."""
        return self._active

    @property
    def paused(self) -> bool:
        """Whether delivery is currently suppressed."""
        return self._paused

    def pause(self) -> None:
        """Suppress delivery; the subscription stays registered.

        While paused, matches for this subscription produce no
        notifications (no sink delivery, no per-event result entry).
        """
        self._paused = True

    def resume(self) -> None:
        """Re-enable delivery after :meth:`pause`."""
        self._paused = False

    def unsubscribe(self) -> bool:
        """Withdraw the subscription; idempotent.

        Returns ``True`` on the call that performed the withdrawal,
        ``False`` if the handle was already inactive.
        """
        if not self._active:
            return False
        self._owner.unsubscribe(self.id)
        self._active = False
        return True

    def _invalidate(self) -> None:
        """Mark withdrawn (called by the owner on any unsubscribe path)."""
        self._active = False

    def __repr__(self) -> str:
        state = "active" if self._active else "inactive"
        if self._active and self._paused:
            state = "paused"
        return (
            f"SubscriptionHandle(id={self.id}, "
            f"subscriber={self.subscriber!r}, {state})"
        )
